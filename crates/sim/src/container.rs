//! Simulated containers (the LXC analogue).

use crate::app::{AppClass, Application};

pub use stayaway_telemetry::ContainerId;

/// A container: one application plus its scheduling state.
#[derive(Debug)]
pub struct Container {
    id: ContainerId,
    class: AppClass,
    app: Box<dyn Application>,
    start_tick: u64,
    priority: u8,
    paused: bool,
    pause_count: u64,
}

impl Container {
    /// Creates a container. `start_tick` delays scheduling (the batch
    /// application of Figure 13 starts at tick 10, for example).
    pub fn new(
        id: ContainerId,
        class: AppClass,
        app: Box<dyn Application>,
        start_tick: u64,
    ) -> Self {
        Container::with_priority(id, class, app, start_tick, 0)
    }

    /// Creates a container with an explicit priority (lower number = more
    /// important; only meaningful for sensitive containers, §2.1's
    /// "multiple sensitive applications … with the notion of priorities").
    pub fn with_priority(
        id: ContainerId,
        class: AppClass,
        app: Box<dyn Application>,
        start_tick: u64,
        priority: u8,
    ) -> Self {
        Container {
            id,
            class,
            app,
            start_tick,
            priority,
            paused: false,
            pause_count: 0,
        }
    }

    /// Scheduling priority (lower = more important, default 0).
    pub fn priority(&self) -> u8 {
        self.priority
    }

    /// The container's id.
    pub fn id(&self) -> ContainerId {
        self.id
    }

    /// Sensitive or batch.
    pub fn class(&self) -> AppClass {
        self.class
    }

    /// The application's name.
    pub fn app_name(&self) -> &str {
        self.app.name()
    }

    /// Tick at which the container is first scheduled.
    pub fn start_tick(&self) -> u64 {
        self.start_tick
    }

    /// True while the container is SIGSTOP-ed.
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// Number of pause transitions so far.
    pub fn pause_count(&self) -> u64 {
        self.pause_count
    }

    /// True when the application completed all its work.
    pub fn is_finished(&self) -> bool {
        self.app.is_finished()
    }

    /// True when the container is scheduled, unfinished and not paused at
    /// `tick` — i.e. it will demand resources.
    pub fn is_active(&self, tick: u64) -> bool {
        tick >= self.start_tick && !self.paused && !self.app.is_finished()
    }

    /// True when the container is scheduled and unfinished (paused or not).
    pub fn is_scheduled(&self, tick: u64) -> bool {
        tick >= self.start_tick && !self.app.is_finished()
    }

    /// Pauses the container (SIGSTOP analogue). Idempotent.
    pub fn pause(&mut self) {
        if !self.paused {
            self.paused = true;
            self.pause_count += 1;
        }
    }

    /// Resumes the container (SIGCONT analogue). Idempotent.
    pub fn resume(&mut self) {
        self.paused = false;
    }

    /// Mutable access to the application (host-internal).
    pub(crate) fn app_mut(&mut self) -> &mut dyn Application {
        self.app.as_mut()
    }

    /// Shared access to the application.
    pub fn app(&self) -> &dyn Application {
        self.app.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{Phase, PhasedApp};
    use crate::resources::{ResourceKind, ResourceVector};

    fn container(start: u64) -> Container {
        let app = PhasedApp::builder("t")
            .phase(Phase::steady(
                ResourceVector::zero().with(ResourceKind::Cpu, 1.0),
                5.0,
            ))
            .build();
        Container::new(
            ContainerId::from_raw(0),
            AppClass::Batch,
            Box::new(app),
            start,
        )
    }

    #[test]
    fn activity_respects_start_tick() {
        let c = container(10);
        assert!(!c.is_active(9));
        assert!(c.is_active(10));
        assert!(!c.is_scheduled(9));
        assert!(c.is_scheduled(10));
    }

    #[test]
    fn pause_resume_cycle() {
        let mut c = container(0);
        assert!(c.is_active(0));
        c.pause();
        assert!(c.is_paused());
        assert!(!c.is_active(0));
        assert!(c.is_scheduled(0));
        c.pause(); // idempotent
        assert_eq!(c.pause_count(), 1);
        c.resume();
        assert!(c.is_active(0));
        c.pause();
        assert_eq!(c.pause_count(), 2);
    }

    #[test]
    fn finished_app_deactivates_container() {
        let mut c = container(0);
        for _ in 0..5 {
            c.app_mut().deliver(1.0);
        }
        assert!(c.is_finished());
        assert!(!c.is_active(100));
        assert!(!c.is_scheduled(100));
    }

    #[test]
    fn id_display() {
        assert_eq!(ContainerId::from_raw(3).to_string(), "c3");
        assert_eq!(ContainerId::from_raw(3).raw(), 3);
    }
}
