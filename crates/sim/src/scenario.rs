//! Pre-built experiment scenarios mirroring the paper's setups (§7.1).

use crate::app::AppClass;
use crate::apps;
use crate::apps::WebWorkload;
use crate::harness::Harness;
use crate::host::{Host, HostSpec};
use crate::qos::QosSpec;
use crate::workload::{DiurnalParams, Trace};
use crate::SimError;

/// Default tick at which batch applications are scheduled, giving the
/// controller a window of isolated sensitive execution first (as in the
/// Figure 5/13 lifecycles).
pub const DEFAULT_BATCH_START: u64 = 20;

/// The latency-sensitive application of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum SensitiveKind {
    /// VLC streaming driven by a workload trace.
    VlcStreaming {
        /// Client workload intensity.
        trace: Trace,
    },
    /// The webservice under one of its §7.1 workload types.
    Webservice {
        /// Workload type.
        workload: WebWorkload,
        /// Request intensity.
        trace: Trace,
    },
    /// VLC transcoding treated as the QoS-reporting application — the
    /// "contrived, yet representative" setup of Figure 6.
    VlcTranscode {
        /// Nominal transcode length in ticks.
        work: f64,
    },
    /// No sensitive application (batch-only runs).
    None,
}

/// A batch co-runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BatchKind {
    /// SPEC CPU 2006 soplex.
    Soplex,
    /// CloudSuite Twitter influence ranking.
    TwitterAnalysis,
    /// CPUBomb from the isolation benchmark suite.
    CpuBomb,
    /// The custom MemoryBomb.
    MemoryBomb,
    /// VLC batch transcoding.
    VlcTranscode,
}

impl BatchKind {
    /// All batch kinds, in the order used by the Figure 12/14–16 sweeps.
    pub const ALL: [BatchKind; 5] = [
        BatchKind::Soplex,
        BatchKind::TwitterAnalysis,
        BatchKind::CpuBomb,
        BatchKind::MemoryBomb,
        BatchKind::VlcTranscode,
    ];

    /// Table 1's Batch-1 combination: Twitter-Analysis + Soplex.
    pub const BATCH_1: [BatchKind; 2] = [BatchKind::TwitterAnalysis, BatchKind::Soplex];

    /// Table 1's Batch-2 combination: Twitter-Analysis + MemoryBomb.
    pub const BATCH_2: [BatchKind; 2] = [BatchKind::TwitterAnalysis, BatchKind::MemoryBomb];

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            BatchKind::Soplex => "soplex",
            BatchKind::TwitterAnalysis => "twitter-analysis",
            BatchKind::CpuBomb => "cpu-bomb",
            BatchKind::MemoryBomb => "memory-bomb",
            BatchKind::VlcTranscode => "vlc-transcode",
        }
    }

    fn build(&self, spec: &HostSpec) -> Box<dyn crate::app::Application> {
        match self {
            BatchKind::Soplex => Box::new(apps::soplex()),
            BatchKind::TwitterAnalysis => Box::new(apps::twitter_analysis()),
            BatchKind::CpuBomb => Box::new(apps::cpu_bomb(spec.cpu_cores)),
            BatchKind::MemoryBomb => Box::new(apps::memory_bomb(spec.ram_mb * 0.85)),
            BatchKind::VlcTranscode => Box::new(apps::vlc_transcode(400.0)),
        }
    }
}

impl std::fmt::Display for BatchKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A reproducible experiment setup: host, applications and seeds.
///
/// A scenario can build arbitrarily many identical [`Harness`]es, so the
/// same setup can be run under different policies (the with/without
/// Stay-Away comparisons of Figures 8–16).
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    name: String,
    host: HostSpec,
    qos_threshold: f64,
    noise_sd: f64,
    seed: u64,
    sensitive: SensitiveKind,
    /// Additional sensitive applications with §2.1 priorities (lower =
    /// more important; the primary sensitive application has priority 0).
    secondary_sensitive: Vec<(SensitiveKind, u8, u64)>,
    batches: Vec<(BatchKind, u64)>,
}

impl Scenario {
    /// Starts building a custom scenario.
    pub fn builder(name: impl Into<String>) -> ScenarioBuilder {
        ScenarioBuilder {
            scenario: Scenario {
                name: name.into(),
                host: HostSpec::default(),
                qos_threshold: 0.95,
                noise_sd: 0.01,
                seed: 0,
                sensitive: SensitiveKind::None,
                secondary_sensitive: Vec::new(),
                batches: Vec::new(),
            },
        }
    }

    /// VLC streaming (diurnal workload) co-located with CPUBomb — the
    /// Figure 8/10 setup.
    pub fn vlc_with_cpubomb(seed: u64) -> Scenario {
        Scenario::vlc_with(BatchKind::CpuBomb, seed, "vlc+cpu-bomb")
    }

    /// VLC streaming co-located with Twitter-Analysis — Figures 7, 9, 11.
    pub fn vlc_with_twitter(seed: u64) -> Scenario {
        Scenario::vlc_with(BatchKind::TwitterAnalysis, seed, "vlc+twitter-analysis")
    }

    /// VLC streaming co-located with soplex — Figures 5 and 18.
    pub fn vlc_with_soplex(seed: u64) -> Scenario {
        Scenario::vlc_with(BatchKind::Soplex, seed, "vlc+soplex")
    }

    fn vlc_with(batch: BatchKind, seed: u64, name: &str) -> Scenario {
        let trace = Trace::diurnal(DiurnalParams::default(), seed.wrapping_add(1));
        Scenario::builder(name)
            .seed(seed)
            .sensitive(SensitiveKind::VlcStreaming { trace })
            .batch(batch, DEFAULT_BATCH_START)
            .build()
    }

    /// VLC transcoding co-located with CPUBomb — the instantaneous-
    /// transition illustration of Figure 6.
    pub fn vlc_transcode_with_cpubomb(seed: u64) -> Scenario {
        Scenario::builder("vlc-transcode+cpu-bomb")
            .seed(seed)
            .sensitive(SensitiveKind::VlcTranscode { work: 400.0 })
            .batch(BatchKind::CpuBomb, 30)
            .build()
    }

    /// The webservice under `workload` co-located with one batch
    /// application — the Figure 12/14–16 sweeps.
    pub fn webservice_with(workload: WebWorkload, batch: BatchKind, seed: u64) -> Scenario {
        let trace = Trace::diurnal(DiurnalParams::default(), seed.wrapping_add(2));
        Scenario::builder(format!("webservice-{workload}+{batch}"))
            .seed(seed)
            .sensitive(SensitiveKind::Webservice { workload, trace })
            .batch(batch, DEFAULT_BATCH_START)
            .build()
    }

    /// The webservice co-located with a *combination* of batch
    /// applications (Table 1's Batch-1 / Batch-2).
    pub fn webservice_with_combo(
        workload: WebWorkload,
        combo: &[BatchKind],
        seed: u64,
    ) -> Scenario {
        let trace = Trace::diurnal(DiurnalParams::default(), seed.wrapping_add(2));
        let mut b = Scenario::builder(format!(
            "webservice-{workload}+{}",
            combo
                .iter()
                .map(BatchKind::name)
                .collect::<Vec<_>>()
                .join("+")
        ))
        .seed(seed)
        .sensitive(SensitiveKind::Webservice { workload, trace });
        for (i, kind) in combo.iter().enumerate() {
            b = b.batch(*kind, DEFAULT_BATCH_START + 5 * i as u64);
        }
        b.build()
    }

    /// The scripted workload-variation timeline of Figure 13: webservice
    /// under `workload` with Twitter-Analysis starting at tick 10.
    pub fn webservice_timeline(workload: WebWorkload, seed: u64) -> Result<Scenario, SimError> {
        // Intensity script: high load, a low-utilisation valley, rising
        // load at ~18, and (for Figure 13b) a phase-change window at 30–36.
        let trace = Trace::piecewise(&[
            (0.85, 10),
            (0.25, 8),
            (0.9, 12),
            (0.35, 6),
            (0.8, 14),
            (0.3, 10),
        ])?;
        Ok(Scenario::builder(format!("webservice-{workload}-timeline"))
            .seed(seed)
            .sensitive(SensitiveKind::Webservice { workload, trace })
            .batch(BatchKind::TwitterAnalysis, 10)
            .build())
    }

    /// Scenario name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Deterministic seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Host capacities.
    pub fn host_spec(&self) -> &HostSpec {
        &self.host
    }

    /// The configured batch co-runners and their start ticks.
    pub fn batches(&self) -> &[(BatchKind, u64)] {
        &self.batches
    }

    /// Builds a fresh harness for this scenario.
    ///
    /// # Errors
    ///
    /// Propagates host/QoS configuration failures.
    pub fn build_harness(&self) -> Result<Harness, SimError> {
        let mut host = Host::new(self.host)?;
        if let Some(app) = Self::build_sensitive(&self.sensitive) {
            host.add_container(AppClass::Sensitive, app, 0);
        }
        for (kind, priority, start) in &self.secondary_sensitive {
            if let Some(app) = Self::build_sensitive(kind) {
                host.add_container_with_priority(AppClass::Sensitive, app, *start, *priority);
            }
        }
        for (kind, start) in &self.batches {
            host.add_container(AppClass::Batch, kind.build(&self.host), *start);
        }
        Harness::new(
            host,
            QosSpec::new(self.qos_threshold)?,
            self.noise_sd,
            self.seed,
        )
    }

    fn build_sensitive(kind: &SensitiveKind) -> Option<Box<dyn crate::app::Application>> {
        match kind {
            SensitiveKind::VlcStreaming { trace } => {
                Some(Box::new(apps::vlc_streaming(trace.clone())))
            }
            SensitiveKind::Webservice { workload, trace } => {
                Some(Box::new(apps::webservice(*workload, trace.clone())))
            }
            SensitiveKind::VlcTranscode { work } => Some(Box::new(apps::vlc_transcode(*work))),
            SensitiveKind::None => None,
        }
    }

    /// Consumes the scenario and builds its harness.
    ///
    /// # Errors
    ///
    /// Propagates [`Scenario::build_harness`] failures.
    pub fn into_harness(self) -> Result<Harness, SimError> {
        self.build_harness()
    }
}

/// Builder for custom [`Scenario`]s.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    scenario: Scenario,
}

impl ScenarioBuilder {
    /// Sets the host capacities.
    pub fn host(mut self, spec: HostSpec) -> Self {
        self.scenario.host = spec;
        self
    }

    /// Sets the QoS violation threshold (default 0.95).
    pub fn qos_threshold(mut self, threshold: f64) -> Self {
        self.scenario.qos_threshold = threshold;
        self
    }

    /// Sets the monitoring-noise standard deviation (default 0.01).
    pub fn noise(mut self, sd: f64) -> Self {
        self.scenario.noise_sd = sd;
        self
    }

    /// Sets the deterministic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.scenario.seed = seed;
        self
    }

    /// Sets the sensitive application.
    pub fn sensitive(mut self, kind: SensitiveKind) -> Self {
        self.scenario.sensitive = kind;
        self
    }

    /// Adds a *secondary* sensitive application with a §2.1 priority
    /// (lower number = more important; the primary sensitive application
    /// has priority 0). Secondary sensitive applications with a worse
    /// priority than the best co-scheduled one may be throttled.
    pub fn secondary_sensitive(
        mut self,
        kind: SensitiveKind,
        priority: u8,
        start_tick: u64,
    ) -> Self {
        self.scenario
            .secondary_sensitive
            .push((kind, priority, start_tick));
        self
    }

    /// Adds a batch co-runner scheduled at `start_tick`.
    pub fn batch(mut self, kind: BatchKind, start_tick: u64) -> Self {
        self.scenario.batches.push((kind, start_tick));
        self
    }

    /// Finalises the scenario.
    pub fn build(self) -> Scenario {
        self.scenario
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::NullPolicy;

    #[test]
    fn presets_build_and_run() {
        for scenario in [
            Scenario::vlc_with_cpubomb(1),
            Scenario::vlc_with_twitter(1),
            Scenario::vlc_with_soplex(1),
            Scenario::vlc_transcode_with_cpubomb(1),
            Scenario::webservice_with(WebWorkload::Mix, BatchKind::Soplex, 1),
        ] {
            let mut h = scenario.build_harness().unwrap();
            let out = h.run(&mut NullPolicy::new(), 30);
            assert_eq!(out.timeline.len(), 30, "{}", scenario.name());
        }
    }

    #[test]
    fn vlc_cpubomb_without_prevention_violates_heavily() {
        let mut h = Scenario::vlc_with_cpubomb(3).build_harness().unwrap();
        let out = h.run(&mut NullPolicy::new(), 200);
        // Once the bomb starts (tick 20) nearly every tick violates.
        let after: Vec<_> = out.timeline.iter().filter(|r| r.tick >= 25).collect();
        let violated = after.iter().filter(|r| r.violated).count();
        assert!(
            violated as f64 > 0.8 * after.len() as f64,
            "only {violated}/{} violations",
            after.len()
        );
        // Before the bomb starts, QoS is clean.
        assert!(out.timeline.iter().take(19).all(|r| !r.violated));
    }

    #[test]
    fn vlc_twitter_violations_are_intermittent() {
        let mut h = Scenario::vlc_with_twitter(3).build_harness().unwrap();
        let out = h.run(&mut NullPolicy::new(), 300);
        let after: Vec<_> = out.timeline.iter().filter(|r| r.tick >= 25).collect();
        let violated = after.iter().filter(|r| r.violated).count();
        assert!(violated > 0, "twitter should cause some violations");
        assert!(
            (violated as f64) < 0.9 * after.len() as f64,
            "twitter violates almost always ({violated}/{}) — should be phase-dependent",
            after.len()
        );
    }

    #[test]
    fn webservice_mem_with_twitter_swaps_periodically() {
        let s = Scenario::webservice_with(WebWorkload::MemIntensive, BatchKind::TwitterAnalysis, 5);
        let mut h = s.build_harness().unwrap();
        let out = h.run(&mut NullPolicy::new(), 300);
        assert!(out.qos.violations > 0);
        assert!(out.qos.satisfaction() > 0.2); // only the memory phase hurts
    }

    #[test]
    fn combo_scenarios_schedule_all_batches() {
        let s = Scenario::webservice_with_combo(WebWorkload::Mix, &BatchKind::BATCH_1, 2);
        assert_eq!(s.batches().len(), 2);
        let h = s.build_harness().unwrap();
        assert_eq!(h.host().container_count(), 3);
    }

    #[test]
    fn timeline_scenario_starts_twitter_at_ten() {
        let s = Scenario::webservice_timeline(WebWorkload::CpuIntensive, 1).unwrap();
        assert_eq!(s.batches()[0].1, 10);
        let mut h = s.build_harness().unwrap();
        let out = h.run(&mut NullPolicy::new(), 60);
        assert_eq!(out.timeline.len(), 60);
    }

    #[test]
    fn scenario_rebuilds_identical_harnesses() {
        let s = Scenario::vlc_with_twitter(9);
        let mut h1 = s.build_harness().unwrap();
        let mut h2 = s.build_harness().unwrap();
        let o1 = h1.run(&mut NullPolicy::new(), 100);
        let o2 = h2.run(&mut NullPolicy::new(), 100);
        assert_eq!(o1, o2);
    }
}
