//! Workload-intensity traces.
//!
//! Figure 1 of the paper motivates Stay-Away with the diurnal read workload
//! of Wikipedia (periods of low intensity are co-location opportunities).
//! The original AWS-hosted trace is no longer published, so
//! [`Trace::diurnal`] synthesises a trace with the same qualitative shape:
//! a day/night sinusoid, a weekly modulation and multiplicative noise. A
//! CSV loader is provided for replaying real traces.

use crate::SimError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A workload-intensity time series with values in `[0, 1]`.
///
/// Index `t` is a simulator tick; reads past the end wrap around, so a
/// single day's trace drives arbitrarily long runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    samples: Vec<f64>,
}

/// Parameters of the synthetic diurnal generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalParams {
    /// Ticks per simulated day.
    pub ticks_per_day: usize,
    /// Number of days to generate.
    pub days: usize,
    /// Lowest night-time intensity.
    pub base: f64,
    /// Day/night swing added on top of `base`.
    pub amplitude: f64,
    /// Relative weekly modulation (weekends dip by this fraction).
    pub weekly_dip: f64,
    /// Multiplicative noise amplitude.
    pub noise: f64,
}

impl Default for DiurnalParams {
    fn default() -> Self {
        DiurnalParams {
            ticks_per_day: 96, // 15-minute buckets
            days: 4,
            base: 0.15,
            amplitude: 0.75,
            weekly_dip: 0.15,
            noise: 0.05,
        }
    }
}

impl Trace {
    /// Builds a trace from raw samples (clamped into `[0, 1]`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Trace`] for an empty or non-finite series.
    pub fn from_samples(samples: Vec<f64>) -> Result<Self, SimError> {
        if samples.is_empty() {
            return Err(SimError::Trace("empty trace".into()));
        }
        if samples.iter().any(|s| !s.is_finite()) {
            return Err(SimError::Trace("non-finite sample".into()));
        }
        Ok(Trace {
            samples: samples.into_iter().map(|s| s.clamp(0.0, 1.0)).collect(),
        })
    }

    /// A constant-intensity trace of `len` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn constant(intensity: f64, len: usize) -> Self {
        assert!(len > 0, "trace length must be positive");
        Trace {
            samples: vec![intensity.clamp(0.0, 1.0); len],
        }
    }

    /// A step trace: `low` for `low_len` ticks then `high` for `high_len`,
    /// repeating.
    ///
    /// # Panics
    ///
    /// Panics if both lengths are zero.
    pub fn square_wave(low: f64, low_len: usize, high: f64, high_len: usize) -> Self {
        assert!(low_len + high_len > 0, "wave period must be positive");
        let mut samples = vec![low.clamp(0.0, 1.0); low_len];
        samples.extend(vec![high.clamp(0.0, 1.0); high_len]);
        Trace { samples }
    }

    /// A piecewise-constant trace from `(intensity, duration)` segments —
    /// used to script the workload-variation timelines of Figure 13.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Trace`] when no segment has positive duration.
    pub fn piecewise(segments: &[(f64, usize)]) -> Result<Self, SimError> {
        let mut samples = Vec::new();
        for &(intensity, len) in segments {
            samples.extend(vec![intensity.clamp(0.0, 1.0); len]);
        }
        Trace::from_samples(samples)
    }

    /// Synthesises a Wikipedia-like diurnal trace (Figure 1's shape).
    pub fn diurnal(params: DiurnalParams, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = params.ticks_per_day * params.days;
        let mut samples = Vec::with_capacity(n.max(1));
        for t in 0..n {
            let day_phase = (t % params.ticks_per_day) as f64 / params.ticks_per_day as f64;
            // Peak in the afternoon (phase ~0.6), trough at night.
            let diurnal = 0.5 * (1.0 - (2.0 * std::f64::consts::PI * (day_phase - 0.1)).cos());
            let day = t / params.ticks_per_day;
            let weekly = if day % 7 >= 5 {
                1.0 - params.weekly_dip
            } else {
                1.0
            };
            let noise = 1.0 + params.noise * (rng.gen::<f64>() * 2.0 - 1.0);
            let v = (params.base + params.amplitude * diurnal) * weekly * noise;
            samples.push(v.clamp(0.0, 1.0));
        }
        if samples.is_empty() {
            samples.push(params.base.clamp(0.0, 1.0));
        }
        Trace { samples }
    }

    /// Loads a single-column (or `time,value` two-column) CSV of
    /// intensities; values are rescaled to `[0, 1]` by the column maximum.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Trace`] for malformed rows and
    /// [`SimError::Io`] for filesystem failures.
    pub fn from_csv(reader: impl std::io::BufRead) -> Result<Self, SimError> {
        let mut raw = Vec::new();
        for (lineno, line) in reader.lines().enumerate() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let field = line.split(',').next_back().unwrap_or(line).trim();
            let v: f64 = field.parse().map_err(|_| {
                SimError::Trace(format!("line {}: cannot parse `{field}`", lineno + 1))
            })?;
            if !v.is_finite() || v < 0.0 {
                return Err(SimError::Trace(format!(
                    "line {}: invalid intensity {v}",
                    lineno + 1
                )));
            }
            raw.push(v);
        }
        if raw.is_empty() {
            return Err(SimError::Trace("no samples in csv".into()));
        }
        let max = raw.iter().copied().fold(0.0, f64::max);
        let samples = if max > 0.0 {
            raw.into_iter().map(|v| v / max).collect()
        } else {
            raw
        };
        Trace::from_samples(samples)
    }

    /// Intensity at tick `t` (wrapping past the end).
    pub fn intensity(&self, t: u64) -> f64 {
        self.samples[(t as usize) % self.samples.len()]
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Always false: traces are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Borrow the raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Mean intensity.
    pub fn mean(&self) -> f64 {
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_trace() {
        let t = Trace::constant(0.4, 5);
        assert_eq!(t.len(), 5);
        assert_eq!(t.intensity(3), 0.4);
        assert_eq!(t.intensity(7), 0.4); // wraps
    }

    #[test]
    fn clamping_into_unit_interval() {
        let t = Trace::from_samples(vec![-0.5, 0.5, 1.5]).unwrap();
        assert_eq!(t.samples(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn rejects_bad_samples() {
        assert!(Trace::from_samples(vec![]).is_err());
        assert!(Trace::from_samples(vec![f64::NAN]).is_err());
    }

    #[test]
    fn square_wave_alternates() {
        let t = Trace::square_wave(0.1, 2, 0.9, 3);
        assert_eq!(t.intensity(0), 0.1);
        assert_eq!(t.intensity(1), 0.1);
        assert_eq!(t.intensity(2), 0.9);
        assert_eq!(t.intensity(4), 0.9);
        assert_eq!(t.intensity(5), 0.1); // wraps
    }

    #[test]
    fn piecewise_concatenates_segments() {
        let t = Trace::piecewise(&[(0.2, 3), (0.8, 2)]).unwrap();
        assert_eq!(t.len(), 5);
        assert_eq!(t.intensity(2), 0.2);
        assert_eq!(t.intensity(3), 0.8);
        assert!(Trace::piecewise(&[]).is_err());
    }

    #[test]
    fn diurnal_trace_has_day_night_swing() {
        let p = DiurnalParams::default();
        let t = Trace::diurnal(p, 42);
        assert_eq!(t.len(), p.ticks_per_day * p.days);
        let min = t.samples().iter().copied().fold(1.0, f64::min);
        let max = t.samples().iter().copied().fold(0.0, f64::max);
        assert!(min < 0.3, "night intensity too high: {min}");
        assert!(max > 0.7, "day intensity too low: {max}");
        // Deterministic per seed.
        assert_eq!(t, Trace::diurnal(p, 42));
        assert_ne!(t, Trace::diurnal(p, 43));
    }

    #[test]
    fn diurnal_trace_peaks_during_daytime() {
        let p = DiurnalParams {
            noise: 0.0,
            ..DiurnalParams::default()
        };
        let t = Trace::diurnal(p, 1);
        // The afternoon bucket outweighs the pre-dawn bucket.
        let afternoon = t.intensity((p.ticks_per_day as f64 * 0.6) as u64);
        let predawn = t.intensity((p.ticks_per_day as f64 * 0.1) as u64);
        assert!(afternoon > predawn + 0.3);
    }

    #[test]
    fn csv_loader_parses_and_normalises() {
        let csv = "# comment\n100\n200\n400\n";
        let t = Trace::from_csv(csv.as_bytes()).unwrap();
        assert_eq!(t.samples(), &[0.25, 0.5, 1.0]);

        let csv2 = "t0,10\nt1,20\n";
        let t2 = Trace::from_csv(csv2.as_bytes()).unwrap();
        assert_eq!(t2.samples(), &[0.5, 1.0]);
    }

    #[test]
    fn csv_loader_rejects_garbage() {
        assert!(Trace::from_csv("abc\n".as_bytes()).is_err());
        assert!(Trace::from_csv("".as_bytes()).is_err());
        assert!(Trace::from_csv("-5\n".as_bytes()).is_err());
    }

    #[test]
    fn mean_intensity() {
        let t = Trace::from_samples(vec![0.0, 1.0]).unwrap();
        assert_eq!(t.mean(), 0.5);
    }
}
