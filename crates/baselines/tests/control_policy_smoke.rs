//! Baselines driven through the [`ControlPolicy`] trait object behave
//! exactly as when driven directly as [`Policy`] values.
//!
//! The staged-controller refactor routed every policy — Stay-Away and
//! baselines alike — through `Box<dyn ControlPolicy>` in the fleet and
//! bench layers. These smoke tests pin the equivalence: for each baseline,
//! one run through the trait object and one through a plain `&mut` borrow
//! must produce identical [`RunOutcome`]s, and the default introspection
//! hooks must report "nothing tracked" rather than fabricate data.

use stayaway_baselines::{AlwaysThrottle, FaultInjector, ReactivePolicy, StaticThresholdPolicy};
use stayaway_core::{ControlPolicy, ControllerStats};
use stayaway_sim::scenario::Scenario;
use stayaway_sim::{NullPolicy, Policy, RunOutcome};

const TICKS: u64 = 160;

fn run_direct<P: Policy>(mut policy: P) -> RunOutcome {
    let scenario = Scenario::vlc_with_cpubomb(9);
    let mut harness = scenario.build_harness().expect("scenario builds");
    harness.run(&mut policy, TICKS)
}

fn run_boxed(mut policy: Box<dyn ControlPolicy>) -> RunOutcome {
    let scenario = Scenario::vlc_with_cpubomb(9);
    let mut harness = scenario.build_harness().expect("scenario builds");
    harness.run(policy.as_mut(), TICKS)
}

#[test]
fn reactive_outcome_is_identical_through_the_trait() {
    let direct = run_direct(ReactivePolicy::new(10));
    let boxed = run_boxed(Box::new(ReactivePolicy::new(10)));
    assert_eq!(direct, boxed);
}

#[test]
fn static_threshold_outcome_is_identical_through_the_trait() {
    let direct = run_direct(StaticThresholdPolicy::new(0.5, 4.0));
    let boxed = run_boxed(Box::new(StaticThresholdPolicy::new(0.5, 4.0)));
    assert_eq!(direct, boxed);
}

#[test]
fn always_throttle_outcome_is_identical_through_the_trait() {
    let direct = run_direct(AlwaysThrottle::new());
    let boxed = run_boxed(Box::new(AlwaysThrottle::new()));
    assert_eq!(direct, boxed);
}

#[test]
fn null_policy_outcome_is_identical_through_the_trait() {
    let direct = run_direct(NullPolicy::new());
    let boxed = run_boxed(Box::new(NullPolicy::new()));
    assert_eq!(direct, boxed);
}

#[test]
fn fault_injector_outcome_is_identical_through_the_trait() {
    let direct = run_direct(FaultInjector::new(ReactivePolicy::new(10), 0.2, 0.2, 7));
    let boxed = run_boxed(Box::new(FaultInjector::new(
        ReactivePolicy::new(10),
        0.2,
        0.2,
        7,
    )));
    assert_eq!(direct, boxed);
}

#[test]
fn baseline_introspection_hooks_default_to_empty() {
    let policy: Box<dyn ControlPolicy> = Box::new(ReactivePolicy::new(10));
    assert_eq!(policy.stats(), ControllerStats::default());
    assert!(policy.events().is_none());
    assert!(!policy.supports_templates());
    assert_eq!(policy.export_template("vlc").expect("export ok"), None);
}
