//! Static-profiling baseline: a fixed co-location rule decided "offline".

use stayaway_core::ControlPolicy;
use stayaway_sim::{Action, AppClass, ContainerId, Observation, Policy, ResourceKind};

/// Pauses the batch containers whenever the sensitive application's CPU
/// usage exceeds a fixed fraction of the machine, and resumes them when it
/// falls back below. This models the static a-priori approaches of §1
/// (Bubble-Up-style profiling): the rule is fixed before the run, knows
/// nothing about *which* resource actually contends, and cannot adapt —
/// so it both over-throttles (CPU spikes that would not have violated) and
/// under-throttles (memory/cache contention at low CPU).
#[derive(Debug, Clone)]
pub struct StaticThresholdPolicy {
    threshold_fraction: f64,
    cpu_capacity: f64,
    paused: Vec<ContainerId>,
}

impl StaticThresholdPolicy {
    /// Creates the policy: throttle while sensitive CPU usage exceeds
    /// `threshold_fraction` (in `(0, 1]`) of `cpu_capacity` cores.
    ///
    /// # Panics
    ///
    /// Panics when the fraction is outside `(0, 1]` or the capacity is not
    /// positive.
    pub fn new(threshold_fraction: f64, cpu_capacity: f64) -> Self {
        assert!(
            threshold_fraction > 0.0 && threshold_fraction <= 1.0,
            "threshold fraction must be in (0, 1]"
        );
        assert!(cpu_capacity > 0.0, "cpu capacity must be positive");
        StaticThresholdPolicy {
            threshold_fraction,
            cpu_capacity,
            paused: Vec::new(),
        }
    }

    /// The CPU-usage threshold in cores.
    pub fn threshold_cores(&self) -> f64 {
        self.threshold_fraction * self.cpu_capacity
    }
}

impl Policy for StaticThresholdPolicy {
    fn name(&self) -> &str {
        "static-threshold"
    }

    fn decide(&mut self, observation: &Observation) -> Vec<Action> {
        let sensitive_cpu: f64 = observation
            .containers
            .iter()
            .filter(|c| c.class == AppClass::Sensitive)
            .map(|c| c.usage.get(ResourceKind::Cpu))
            .sum();
        let hot = sensitive_cpu > self.threshold_cores();

        if hot && self.paused.is_empty() {
            let targets: Vec<ContainerId> = observation
                .batch()
                .filter(|c| c.active)
                .map(|c| c.id)
                .collect();
            self.paused = targets.clone();
            targets.into_iter().map(Action::Pause).collect()
        } else if !hot && !self.paused.is_empty() {
            self.paused.drain(..).map(Action::Resume).collect()
        } else {
            Vec::new()
        }
    }
}

/// Tracks no stats, keeps no log, supports no templates: pure defaults.
impl ControlPolicy for StaticThresholdPolicy {}

#[cfg(test)]
mod tests {
    use super::*;
    use stayaway_sim::scenario::Scenario;
    use stayaway_sim::NullPolicy;

    #[test]
    fn throttles_on_high_sensitive_load() {
        let scenario = Scenario::vlc_with_cpubomb(4);
        let mut h0 = scenario.build_harness().unwrap();
        let base = h0.run(&mut NullPolicy::new(), 250);
        let mut h1 = scenario.build_harness().unwrap();
        // Throttle while VLC uses more than 35% of the machine.
        let cap = h1.host().spec().cpu_cores;
        let out = h1.run(&mut StaticThresholdPolicy::new(0.35, cap), 250);
        assert!(out.qos.violations < base.qos.violations);
    }

    #[test]
    fn blind_to_memory_contention() {
        use stayaway_sim::apps::WebWorkload;
        use stayaway_sim::scenario::BatchKind;
        // Webservice memory workload + MemoryBomb: the violation channel is
        // RAM/swap, invisible to a CPU threshold → violations remain close
        // to no-prevention levels.
        let scenario =
            Scenario::webservice_with(WebWorkload::MemIntensive, BatchKind::MemoryBomb, 4);
        let mut h0 = scenario.build_harness().unwrap();
        let base = h0.run(&mut NullPolicy::new(), 250);
        let mut h1 = scenario.build_harness().unwrap();
        let cap = h1.host().spec().cpu_cores;
        let out = h1.run(&mut StaticThresholdPolicy::new(0.8, cap), 250);
        assert!(
            out.qos.violations * 2 >= base.qos.violations,
            "static threshold should not fix memory contention: {} vs {}",
            out.qos.violations,
            base.qos.violations
        );
    }

    #[test]
    fn threshold_accessor() {
        let p = StaticThresholdPolicy::new(0.5, 4.0);
        assert_eq!(p.threshold_cores(), 2.0);
        assert_eq!(p.name(), "static-threshold");
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn invalid_fraction_panics() {
        let _ = StaticThresholdPolicy::new(0.0, 4.0);
    }
}
