//! Reactive throttling: act only after the damage is observed.

use stayaway_core::ControlPolicy;
use stayaway_sim::{Action, ContainerId, Observation, Policy};

/// Pauses all active batch containers when the sensitive application
/// reports a QoS violation and resumes them after `cooldown` consecutive
/// violation-free ticks — the phase-in/phase-out shape of reactive runtimes
/// such as Bubble-Flux, minus any prediction. Compared to Stay-Away it (a)
/// always pays at least one violation per contention episode and (b) resumes
/// blindly, re-violating whenever the contention persists.
#[derive(Debug, Clone)]
pub struct ReactivePolicy {
    cooldown: u64,
    quiet_ticks: u64,
    paused: Vec<ContainerId>,
}

impl ReactivePolicy {
    /// Creates the policy; `cooldown` is the number of violation-free ticks
    /// before a resume (must be ≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `cooldown == 0`.
    pub fn new(cooldown: u64) -> Self {
        assert!(cooldown > 0, "cooldown must be positive");
        ReactivePolicy {
            cooldown,
            quiet_ticks: 0,
            paused: Vec::new(),
        }
    }

    /// The configured cooldown.
    pub fn cooldown(&self) -> u64 {
        self.cooldown
    }

    /// True while the policy holds batch containers paused.
    pub fn is_throttling(&self) -> bool {
        !self.paused.is_empty()
    }
}

impl Policy for ReactivePolicy {
    fn name(&self) -> &str {
        "reactive"
    }

    fn decide(&mut self, observation: &Observation) -> Vec<Action> {
        if observation.qos_violation {
            self.quiet_ticks = 0;
            if self.paused.is_empty() {
                let targets: Vec<ContainerId> = observation
                    .batch()
                    .filter(|c| c.active)
                    .map(|c| c.id)
                    .collect();
                self.paused = targets.clone();
                return targets.into_iter().map(Action::Pause).collect();
            }
            return Vec::new();
        }

        if !self.paused.is_empty() {
            self.quiet_ticks += 1;
            if self.quiet_ticks >= self.cooldown {
                self.quiet_ticks = 0;
                return self.paused.drain(..).map(Action::Resume).collect();
            }
        }
        Vec::new()
    }
}

/// Tracks no stats, keeps no log, supports no templates: pure defaults.
impl ControlPolicy for ReactivePolicy {}

#[cfg(test)]
mod tests {
    use super::*;
    use stayaway_sim::scenario::Scenario;
    use stayaway_sim::NullPolicy;

    #[test]
    fn reduces_violations_vs_no_prevention() {
        let scenario = Scenario::vlc_with_cpubomb(2);
        let mut h0 = scenario.build_harness().unwrap();
        let base = h0.run(&mut NullPolicy::new(), 200);
        let mut h1 = scenario.build_harness().unwrap();
        let out = h1.run(&mut ReactivePolicy::new(10), 200);
        assert!(
            out.qos.violations < base.qos.violations / 2,
            "reactive {} vs baseline {}",
            out.qos.violations,
            base.qos.violations
        );
    }

    #[test]
    fn pays_repeated_violations_under_persistent_contention() {
        // Against CPUBomb every resume re-violates: the reactive policy
        // keeps paying, roughly once per cooldown window.
        let mut h = Scenario::vlc_with_cpubomb(2).build_harness().unwrap();
        let out = h.run(&mut ReactivePolicy::new(10), 250);
        assert!(
            out.qos.violations >= 5,
            "expected periodic re-violations, got {}",
            out.qos.violations
        );
    }

    #[test]
    fn resumes_after_cooldown() {
        let mut h = Scenario::vlc_with_cpubomb(2).build_harness().unwrap();
        let mut p = ReactivePolicy::new(5);
        let out = h.run(&mut p, 60);
        // The batch container must have been resumed at least once after
        // the first pause (i.e. active again at some later tick).
        let first_pause = out
            .timeline
            .iter()
            .position(|r| r.batch_paused > 0)
            .expect("bomb must get paused");
        assert!(
            out.timeline[first_pause..]
                .iter()
                .any(|r| r.batch_active > 0),
            "batch never resumed"
        );
    }

    #[test]
    #[should_panic(expected = "cooldown")]
    fn zero_cooldown_panics() {
        let _ = ReactivePolicy::new(0);
    }
}
