//! Baseline throttling policies to compare Stay-Away against.
//!
//! * [`NoPrevention`] — co-location with no mitigation at all: the paper's
//!   "without Stay-Away" curves (upper utilisation band, worst QoS).
//! * [`AlwaysThrottle`] — batch applications never run: the isolated-run
//!   QoS bound (lower utilisation band, perfect QoS).
//! * [`ReactivePolicy`] — throttle *after* observing a violation, resume
//!   after a quiet cooldown: a Bubble-Flux-style phase-in/phase-out runtime
//!   without Stay-Away's prediction.
//! * [`StaticThresholdPolicy`] — an a-priori profiling rule ("only co-run
//!   while the sensitive application uses less than X% CPU"), representing
//!   the static approaches (§1) that cannot adapt to unknown workloads.
//!
//! [`FaultInjector`] additionally wraps any policy with sensor-dropout and
//! actuation-failure faults for robustness testing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod always;
pub mod faults;
pub mod reactive;
pub mod static_threshold;

pub use always::AlwaysThrottle;
pub use faults::FaultInjector;
pub use reactive::ReactivePolicy;
pub use static_threshold::StaticThresholdPolicy;

/// Co-location without any prevention (re-export of the simulator's
/// [`stayaway_sim::NullPolicy`]).
pub type NoPrevention = stayaway_sim::NullPolicy;
