//! The isolated-run bound: batch applications never execute.

use stayaway_core::ControlPolicy;
use stayaway_sim::{Action, Observation, Policy};

/// Pauses every batch container as soon as it is seen running. The
/// sensitive application effectively runs alone: perfect QoS, zero gained
/// utilisation — the over-provisioning status quo the paper's introduction
/// argues against.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysThrottle;

impl AlwaysThrottle {
    /// Creates the policy.
    pub fn new() -> Self {
        AlwaysThrottle
    }
}

impl Policy for AlwaysThrottle {
    fn name(&self) -> &str {
        "always-throttle"
    }

    fn decide(&mut self, observation: &Observation) -> Vec<Action> {
        observation
            .batch()
            .filter(|c| c.active)
            .map(|c| Action::Pause(c.id))
            .collect()
    }
}

/// Tracks no stats, keeps no log, supports no templates: pure defaults.
impl ControlPolicy for AlwaysThrottle {}

#[cfg(test)]
mod tests {
    use super::*;
    use stayaway_sim::scenario::Scenario;

    #[test]
    fn yields_perfect_qos_and_no_gain() {
        let mut h = Scenario::vlc_with_cpubomb(1).build_harness().unwrap();
        let out = h.run(&mut AlwaysThrottle::new(), 150);
        // Only the first co-located tick can violate (the pause lands after
        // the tick that observed the bomb).
        assert!(
            out.qos.violations <= 1,
            "violations = {}",
            out.qos.violations
        );
        let cap = h.host().spec().cpu_cores;
        assert!(out.mean_gained_utilization(cap) < 0.01);
    }

    #[test]
    fn repauses_after_external_resume() {
        let mut h = Scenario::vlc_with_cpubomb(1).build_harness().unwrap();
        let mut p = AlwaysThrottle::new();
        h.run(&mut p, 40);
        // Resume behind the policy's back; it must re-pause.
        let batch_id = h
            .host()
            .containers()
            .find(|c| c.class() == stayaway_sim::AppClass::Batch)
            .unwrap()
            .id();
        h.host_mut().resume(batch_id).unwrap();
        let out = h.run(&mut p, 5);
        assert!(out.timeline.last().unwrap().batch_paused > 0);
    }
}
