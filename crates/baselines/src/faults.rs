//! Fault injection for robustness testing.
//!
//! Real monitoring pipelines drop samples and real actuators occasionally
//! fail; a runtime controller must degrade gracefully. [`FaultInjector`]
//! wraps any [`Policy`] and, with configured probabilities, (a) blanks the
//! resource-usage observations of a tick (sensor dropout — the wrapped
//! policy sees zeros, as when a cgroup stats read fails) and (b) swallows
//! the policy's actions for a tick (actuation failure — the SIGSTOP/CONT
//! never reaches the container). The robustness integration tests drive
//! Stay-Away through this wrapper.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stayaway_core::{ControlPolicy, ControllerStats, CoreError, EventLog};
use stayaway_sim::{Action, Observation, Policy, ResourceVector};
use stayaway_statespace::Template;

/// Wraps a policy with seeded sensor-dropout and actuation-failure faults.
#[derive(Debug)]
pub struct FaultInjector<P> {
    inner: P,
    sensor_dropout: f64,
    action_failure: f64,
    rng: StdRng,
    dropped_observations: u64,
    dropped_actions: u64,
}

impl<P: Policy> FaultInjector<P> {
    /// Wraps `inner`. `sensor_dropout` and `action_failure` are per-tick
    /// probabilities in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn new(inner: P, sensor_dropout: f64, action_failure: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&sensor_dropout),
            "sensor dropout must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&action_failure),
            "action failure must be a probability"
        );
        FaultInjector {
            inner,
            sensor_dropout,
            action_failure,
            rng: StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15),
            dropped_observations: 0,
            dropped_actions: 0,
        }
    }

    /// Observations blanked so far.
    pub fn dropped_observations(&self) -> u64 {
        self.dropped_observations
    }

    /// Action batches swallowed so far.
    pub fn dropped_actions(&self) -> u64 {
        self.dropped_actions
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Consumes the wrapper, returning the wrapped policy.
    pub fn into_inner(self) -> P {
        self.inner
    }
}

impl<P: Policy> Policy for FaultInjector<P> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn decide(&mut self, observation: &Observation) -> Vec<Action> {
        let observation = if self.rng.gen_range(0.0..1.0) < self.sensor_dropout {
            self.dropped_observations += 1;
            // Sensor failure: the stats read returned nothing this period.
            let mut blanked = observation.clone();
            for c in &mut blanked.containers {
                c.usage = ResourceVector::zero();
                c.ipc = 0.0;
            }
            blanked
        } else {
            observation.clone()
        };
        let actions = self.inner.decide(&observation);
        if !actions.is_empty() && self.rng.gen_range(0.0..1.0) < self.action_failure {
            self.dropped_actions += 1;
            return Vec::new();
        }
        actions
    }
}

/// Faults touch only the decision loop; introspection passes through to the
/// wrapped policy undisturbed.
impl<P: ControlPolicy> ControlPolicy for FaultInjector<P> {
    fn stats(&self) -> ControllerStats {
        self.inner.stats()
    }

    fn events(&self) -> Option<&EventLog> {
        self.inner.events()
    }

    fn supports_templates(&self) -> bool {
        self.inner.supports_templates()
    }

    fn export_template(&self, sensitive_app: &str) -> Result<Option<Template>, CoreError> {
        self.inner.export_template(sensitive_app)
    }

    fn import_template(&mut self, template: &Template) -> Result<bool, CoreError> {
        self.inner.import_template(template)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AlwaysThrottle;
    use stayaway_sim::scenario::Scenario;

    #[test]
    fn zero_probabilities_are_transparent() {
        let scenario = Scenario::vlc_with_cpubomb(1);
        let ticks = 60;
        let mut plain = scenario.build_harness().unwrap();
        let direct = plain.run(&mut AlwaysThrottle::new(), ticks);
        let mut wrapped_h = scenario.build_harness().unwrap();
        let mut wrapped = FaultInjector::new(AlwaysThrottle::new(), 0.0, 0.0, 7);
        let faulty = wrapped_h.run(&mut wrapped, ticks);
        assert_eq!(direct, faulty);
        assert_eq!(wrapped.dropped_observations(), 0);
        assert_eq!(wrapped.dropped_actions(), 0);
    }

    /// Pauses and resumes the batch containers on alternating ticks, so
    /// every tick carries actions for the injector to swallow.
    struct ToggleBatch {
        tick: u64,
    }

    impl Policy for ToggleBatch {
        fn name(&self) -> &str {
            "toggle-batch"
        }

        fn decide(&mut self, observation: &Observation) -> Vec<Action> {
            self.tick += 1;
            let pause = self.tick.is_multiple_of(2);
            observation
                .batch()
                .map(|c| {
                    if pause {
                        Action::Pause(c.id)
                    } else {
                        Action::Resume(c.id)
                    }
                })
                .collect()
        }
    }

    #[test]
    fn faults_are_counted_and_deterministic() {
        let run = |seed: u64| {
            let scenario = Scenario::vlc_with_cpubomb(2);
            let mut h = scenario.build_harness().unwrap();
            let mut w = FaultInjector::new(ToggleBatch { tick: 0 }, 0.3, 0.3, seed);
            let out = h.run(&mut w, 100);
            (out, w.dropped_observations(), w.dropped_actions())
        };
        let (o1, d1, a1) = run(5);
        let (o2, d2, a2) = run(5);
        assert_eq!(o1, o2);
        assert_eq!((d1, a1), (d2, a2));
        assert!(d1 > 10, "expected ~30 dropped observations, got {d1}");
        assert!(a1 > 10, "expected ~30 dropped action batches, got {a1}");
        // Different seeds inject different faults.
        let (o3, _, _) = run(6);
        assert_ne!(o1, o3);
    }

    #[test]
    fn action_failures_delay_but_do_not_defeat_always_throttle() {
        let scenario = Scenario::vlc_with_cpubomb(3);
        let mut h = scenario.build_harness().unwrap();
        // Half the pause attempts fail, but the policy retries every tick.
        let mut w = FaultInjector::new(AlwaysThrottle::new(), 0.0, 0.5, 11);
        let out = h.run(&mut w, 150);
        // The bomb is down by the end.
        assert!(out.timeline.last().unwrap().batch_paused > 0);
        assert!(out.qos.violations < 20);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        let _ = FaultInjector::new(AlwaysThrottle::new(), 1.5, 0.0, 0);
    }
}
