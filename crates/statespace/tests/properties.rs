//! Property-based tests for the state-space invariants.

use proptest::prelude::*;
use stayaway_statespace::viz::MapRenderer;
use stayaway_statespace::{
    rayleigh_radius, ExecutionMode, Point2, StateKind, StateMap, Template, ViolationRange,
};

fn point_strategy() -> impl Strategy<Value = Point2> {
    (-10.0f64..10.0, -10.0f64..10.0).prop_map(|(x, y)| Point2::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The Rayleigh radius never reaches the nearest safe state (R < d for
    /// d > 0) and never goes negative.
    #[test]
    fn rayleigh_radius_is_bounded(d in 0.0f64..100.0, c in 0.001f64..100.0) {
        let r = rayleigh_radius(d, c);
        prop_assert!(r >= 0.0);
        if d > 0.0 {
            prop_assert!(r < d);
        }
        // Never exceeds the peak value c·e^{-1/2}.
        prop_assert!(r <= c * (-0.5f64).exp() + 1e-12);
    }

    /// Range containment is consistent with signed distance.
    #[test]
    fn range_containment_matches_signed_distance(
        center in point_strategy(),
        radius in 0.0f64..5.0,
        probe in point_strategy(),
    ) {
        let range = ViolationRange::new(center, radius);
        prop_assert_eq!(
            range.contains(probe),
            range.signed_distance(probe) <= 1e-12
        );
    }

    /// A map built from arbitrary visit/mark sequences keeps its
    /// bookkeeping consistent, and every violation-range excludes the
    /// nearest safe state.
    #[test]
    fn state_map_invariants(
        points in prop::collection::vec(point_strategy(), 1..30),
        violation_mask in prop::collection::vec(any::<bool>(), 1..30),
        scale in 0.01f64..10.0,
    ) {
        let mut map = StateMap::new();
        map.set_coordinate_scale(scale).unwrap();
        for (i, p) in points.iter().enumerate() {
            map.visit(i, *p, ExecutionMode::CoLocated, i as u64).unwrap();
        }
        for (i, &v) in violation_mask.iter().take(points.len()).enumerate() {
            if v {
                map.mark_violation(i).unwrap();
            }
        }
        prop_assert_eq!(map.len(), points.len());
        prop_assert_eq!(map.violation_count() + map.safe_count(), map.len());

        for i in 0..map.len() {
            let e = map.entry(i).unwrap();
            if e.kind() != StateKind::Violation {
                continue;
            }
            let range = map.violation_range(i).unwrap();
            if let Some((_, d)) = map.nearest_safe(e.point()) {
                prop_assert!(range.radius() < d + 1e-9,
                    "range swallows the nearest safe state");
            } else {
                prop_assert_eq!(range.radius(), 0.0);
            }
            // The violation state is always inside its own range.
            prop_assert!(range.contains(e.point()));
        }
    }

    /// in_violation_range agrees with an exhaustive scan of the ranges.
    #[test]
    fn range_query_matches_exhaustive_scan(
        points in prop::collection::vec(point_strategy(), 2..20),
        probe in point_strategy(),
    ) {
        let mut map = StateMap::new();
        map.set_coordinate_scale(1.0).unwrap();
        for (i, p) in points.iter().enumerate() {
            map.visit(i, *p, ExecutionMode::CoLocated, 0).unwrap();
        }
        // Mark every third state.
        for i in (0..points.len()).step_by(3) {
            map.mark_violation(i).unwrap();
        }
        let exhaustive = map
            .violation_ranges()
            .iter()
            .any(|r| r.contains(probe));
        prop_assert_eq!(map.in_violation_range(probe), exhaustive);
    }

    /// Templates round-trip arbitrary contents through JSON bit-exactly.
    #[test]
    fn template_json_roundtrip(
        vectors in prop::collection::vec(
            prop::collection::vec(0.0f64..1.0, 4..=4),
            1..20,
        ),
        flags in prop::collection::vec(any::<bool>(), 1..20),
    ) {
        let mut t = Template::new("prop", 4).unwrap();
        for (v, f) in vectors.iter().zip(&flags) {
            t.push(v.clone(), *f).unwrap();
        }
        let mut buf = Vec::new();
        t.save(&mut buf).unwrap();
        let back = Template::load(buf.as_slice()).unwrap();
        prop_assert_eq!(t, back);
    }

    /// The SVG renderer emits structurally sane documents for any map.
    #[test]
    fn svg_is_well_formed_for_any_map(
        points in prop::collection::vec(point_strategy(), 0..15),
        mark_first in any::<bool>(),
    ) {
        let mut map = StateMap::new();
        map.set_coordinate_scale(1.0).unwrap();
        for (i, p) in points.iter().enumerate() {
            map.visit(i, *p, ExecutionMode::Idle, 0).unwrap();
        }
        if mark_first && !points.is_empty() {
            map.mark_violation(0).unwrap();
        }
        let svg = MapRenderer::new(&map, 320, 240).render();
        prop_assert!(svg.starts_with("<svg"));
        prop_assert!(svg.trim_end().ends_with("</svg>"));
        prop_assert_eq!(svg.matches("<circle").count() >= points.len(), true);
    }
}
