//! State-space model for Stay-Away (§3.1–§3.2 of the paper).
//!
//! After the MDS mapping step, every deduplicated measurement vector owns a
//! point in the 2-D plane — a *mapped-state*. States observed during a QoS
//! violation are *violation-states*; all others are *safe-states*. Around
//! each violation-state lies a *violation-range*: the unexplored
//! neighbourhood presumed unsafe, whose radius follows the Rayleigh-scaled
//! distance to the nearest safe-state (§3.2.2):
//!
//! ```text
//! R = d · exp(−d² / (2c²))
//! ```
//!
//! with `d` the distance to the nearest safe-state and `c` the median
//! coordinate range of the mapped space.
//!
//! This crate provides:
//!
//! * [`point`] — the 2-D point type with distances and angles;
//! * [`mode`] — the four execution modes of §3.2.3;
//! * [`range`] — the Rayleigh violation-range radius;
//! * [`map`] — the mutable state map maintained by the controller;
//! * [`template`] — persistable violation templates (§6);
//! * [`viz`] — SVG rendering of the map, the paper's "visualise co-located
//!   execution" contribution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod map;
pub mod mode;
pub mod point;
pub mod range;
pub mod template;
pub mod viz;

mod error;

pub use error::StateSpaceError;
pub use map::{StateEntry, StateKind, StateMap};
pub use mode::ExecutionMode;
pub use point::Point2;
pub use range::{rayleigh_peak, rayleigh_radius, ViolationRange};
pub use template::Template;
