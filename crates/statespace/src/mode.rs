//! The four execution modes of §3.2.3.
//!
//! At any instant exactly one of these holds; the trajectory pattern of the
//! mapped state depends strongly on the current mode, which is why the
//! predictor keeps one trajectory model per mode instead of a single global
//! model.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which applications are currently executing on the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// No application is running.
    Idle,
    /// Only batch application(s) run.
    BatchOnly,
    /// Only the latency-sensitive application runs (also the mode entered
    /// while the batch application is throttled).
    SensitiveOnly,
    /// Both the sensitive and at least one batch application run.
    CoLocated,
}

impl ExecutionMode {
    /// All modes, in a fixed order (useful for per-mode tables).
    pub const ALL: [ExecutionMode; 4] = [
        ExecutionMode::Idle,
        ExecutionMode::BatchOnly,
        ExecutionMode::SensitiveOnly,
        ExecutionMode::CoLocated,
    ];

    /// Stable small index for array-backed per-mode storage.
    pub fn index(&self) -> usize {
        match self {
            ExecutionMode::Idle => 0,
            ExecutionMode::BatchOnly => 1,
            ExecutionMode::SensitiveOnly => 2,
            ExecutionMode::CoLocated => 3,
        }
    }

    /// Derives the mode from which application classes are active.
    ///
    /// "Active" means scheduled and not throttled: a paused batch
    /// application does not count as running (§3.3 — after throttling, the
    /// system moves to a different execution mode).
    pub fn from_activity(sensitive_running: bool, batch_running: bool) -> Self {
        match (sensitive_running, batch_running) {
            (false, false) => ExecutionMode::Idle,
            (false, true) => ExecutionMode::BatchOnly,
            (true, false) => ExecutionMode::SensitiveOnly,
            (true, true) => ExecutionMode::CoLocated,
        }
    }

    /// True when interference with the sensitive application is possible.
    /// Violations cannot occur outside co-located execution (§3.3).
    pub fn interference_possible(&self) -> bool {
        matches!(self, ExecutionMode::CoLocated)
    }
}

impl fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExecutionMode::Idle => "idle",
            ExecutionMode::BatchOnly => "batch-only",
            ExecutionMode::SensitiveOnly => "sensitive-only",
            ExecutionMode::CoLocated => "co-located",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_activity_covers_all_cases() {
        assert_eq!(
            ExecutionMode::from_activity(false, false),
            ExecutionMode::Idle
        );
        assert_eq!(
            ExecutionMode::from_activity(false, true),
            ExecutionMode::BatchOnly
        );
        assert_eq!(
            ExecutionMode::from_activity(true, false),
            ExecutionMode::SensitiveOnly
        );
        assert_eq!(
            ExecutionMode::from_activity(true, true),
            ExecutionMode::CoLocated
        );
    }

    #[test]
    fn indices_are_unique_and_dense() {
        let mut seen = [false; 4];
        for m in ExecutionMode::ALL {
            assert!(!seen[m.index()]);
            seen[m.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn only_colocated_can_interfere() {
        for m in ExecutionMode::ALL {
            assert_eq!(m.interference_possible(), m == ExecutionMode::CoLocated);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(ExecutionMode::CoLocated.to_string(), "co-located");
        assert_eq!(ExecutionMode::Idle.to_string(), "idle");
    }
}
