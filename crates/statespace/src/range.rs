//! The Rayleigh-scaled violation-range radius (§3.2.2).

use crate::point::Point2;
use serde::{Deserialize, Serialize};

/// Radius of the violation-range around a violation-state:
///
/// ```text
/// R(d) = d · exp(−d² / (2c²))
/// ```
///
/// where `d` is the distance between the violation-state and its nearest
/// safe-state and `c` is the median of the coordinate range of the mapped
/// space. The shape follows a Rayleigh distribution: for small `d` the
/// radius grows almost linearly (little room has been explored, so most of
/// the gap is presumed unsafe), peaks at `d = c`, and fades for large `d`
/// (a distant safe-state says little, and aggressive ranges would block
/// exploration).
///
/// Degenerate inputs (`d ≤ 0`, `c ≤ 0`, non-finite) yield a radius of 0.0,
/// which makes the range collapse to exact-overlap matching.
pub fn rayleigh_radius(d: f64, c: f64) -> f64 {
    if !d.is_finite() || !c.is_finite() || d <= 0.0 || c <= 0.0 {
        return 0.0;
    }
    d * (-d * d / (2.0 * c * c)).exp()
}

/// The distance at which [`rayleigh_radius`] peaks for a given `c` (namely
/// `d = c`), together with the peak value `c·e^{−1/2}`.
pub fn rayleigh_peak(c: f64) -> (f64, f64) {
    if !c.is_finite() || c <= 0.0 {
        return (0.0, 0.0);
    }
    (c, c * (-0.5f64).exp())
}

/// A circular presumed-unsafe neighbourhood around a violation-state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ViolationRange {
    center: Point2,
    radius: f64,
}

impl ViolationRange {
    /// Creates a range; a non-finite or negative radius collapses to 0.0.
    pub fn new(center: Point2, radius: f64) -> Self {
        let radius = if radius.is_finite() && radius > 0.0 {
            radius
        } else {
            0.0
        };
        ViolationRange { center, radius }
    }

    /// The violation-state at the centre.
    pub fn center(&self) -> Point2 {
        self.center
    }

    /// The radius.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// True when `point` lies inside the range (boundary inclusive).
    ///
    /// A zero-radius range contains only (numerically) the centre itself —
    /// the "exact overlap" regime discussed in §3.2.1.
    pub fn contains(&self, point: Point2) -> bool {
        self.center.distance(point) <= self.radius
    }

    /// Distance from `point` to the boundary (negative inside).
    pub fn signed_distance(&self, point: Point2) -> f64 {
        self.center.distance(point) - self.radius
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radius_is_zero_at_zero_distance() {
        assert_eq!(rayleigh_radius(0.0, 1.0), 0.0);
    }

    #[test]
    fn radius_peaks_at_c() {
        let c = 0.7;
        let (peak_d, peak_r) = rayleigh_peak(c);
        assert_eq!(peak_d, c);
        let r_at_peak = rayleigh_radius(c, c);
        assert!((r_at_peak - peak_r).abs() < 1e-12);
        // Strictly smaller on either side.
        assert!(rayleigh_radius(c * 0.8, c) < r_at_peak);
        assert!(rayleigh_radius(c * 1.2, c) < r_at_peak);
    }

    #[test]
    fn radius_never_exceeds_distance() {
        // R < d always, so the safe-state itself is never swallowed —
        // the paper's requirement that the entire gap is never the radius.
        for i in 1..200 {
            let d = i as f64 * 0.01;
            let r = rayleigh_radius(d, 0.5);
            assert!(r < d, "R({d}) = {r} >= d");
            assert!(r >= 0.0);
        }
    }

    #[test]
    fn radius_fades_for_large_distances() {
        let c = 0.5;
        assert!(rayleigh_radius(10.0 * c, c) < 1e-8);
    }

    #[test]
    fn degenerate_inputs_yield_zero() {
        assert_eq!(rayleigh_radius(-1.0, 1.0), 0.0);
        assert_eq!(rayleigh_radius(1.0, 0.0), 0.0);
        assert_eq!(rayleigh_radius(f64::NAN, 1.0), 0.0);
        assert_eq!(rayleigh_radius(1.0, f64::INFINITY), 0.0);
        assert_eq!(rayleigh_peak(-1.0), (0.0, 0.0));
    }

    #[test]
    fn range_containment() {
        let r = ViolationRange::new(Point2::new(0.0, 0.0), 1.0);
        assert!(r.contains(Point2::new(0.5, 0.5)));
        assert!(r.contains(Point2::new(1.0, 0.0))); // boundary inclusive
        assert!(!r.contains(Point2::new(1.01, 0.0)));
    }

    #[test]
    fn zero_radius_contains_only_center() {
        let c = Point2::new(0.3, 0.3);
        let r = ViolationRange::new(c, 0.0);
        assert!(r.contains(c));
        assert!(!r.contains(Point2::new(0.3 + 1e-9, 0.3)));
    }

    #[test]
    fn negative_radius_collapses() {
        let r = ViolationRange::new(Point2::origin(), -5.0);
        assert_eq!(r.radius(), 0.0);
        let r = ViolationRange::new(Point2::origin(), f64::NAN);
        assert_eq!(r.radius(), 0.0);
    }

    #[test]
    fn signed_distance_sign_convention() {
        let r = ViolationRange::new(Point2::origin(), 1.0);
        assert!(r.signed_distance(Point2::new(0.5, 0.0)) < 0.0);
        assert!(r.signed_distance(Point2::new(2.0, 0.0)) > 0.0);
        assert!(r.signed_distance(Point2::new(1.0, 0.0)).abs() < 1e-12);
    }
}
