//! The mutable state map maintained by the controller.
//!
//! Entries are keyed by the dense *representative index* assigned by the
//! deduplication stage (`stayaway_mds::dedup::ReprSet`): representative `i`
//! owns entry `i`. Every control period the embedding is refreshed, so the
//! 2-D positions of all entries are rewritten; labels (safe/violation) and
//! visit statistics persist across refreshes.

use crate::mode::ExecutionMode;
use crate::point::Point2;
use crate::range::{rayleigh_radius, ViolationRange};
use crate::StateSpaceError;
use serde::{Deserialize, Serialize};

/// Whether a mapped state has been associated with a QoS violation.
///
/// A state labelled [`StateKind::Violation`] stays a violation-state for the
/// rest of the execution (and beyond, via templates): the paper never
/// un-learns a violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StateKind {
    /// A mapped state never observed during a QoS violation.
    Safe,
    /// A mapped state observed during at least one QoS violation.
    Violation,
}

/// One entry of the state map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateEntry {
    point: Point2,
    kind: StateKind,
    visits: u64,
    last_tick: u64,
    first_mode: ExecutionMode,
}

impl StateEntry {
    /// Current 2-D position.
    pub fn point(&self) -> Point2 {
        self.point
    }

    /// Safe or violation.
    pub fn kind(&self) -> StateKind {
        self.kind
    }

    /// Number of raw samples that mapped to this state.
    pub fn visits(&self) -> u64 {
        self.visits
    }

    /// Tick of the most recent visit.
    pub fn last_tick(&self) -> u64 {
        self.last_tick
    }

    /// Execution mode at first observation.
    pub fn first_mode(&self) -> ExecutionMode {
        self.first_mode
    }
}

/// The 2-D state map: positions, labels and violation-range queries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StateMap {
    entries: Vec<StateEntry>,
    /// Median coordinate range of the mapped space — the `c` of §3.2.2.
    coordinate_scale: f64,
}

impl StateMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        StateMap {
            entries: Vec::new(),
            coordinate_scale: 0.0,
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map holds no states.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over entries in representative order.
    pub fn iter(&self) -> impl Iterator<Item = &StateEntry> + '_ {
        self.entries.iter()
    }

    /// Borrows entry `index`.
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::UnknownState`] for an out-of-range index.
    pub fn entry(&self, index: usize) -> Result<&StateEntry, StateSpaceError> {
        self.entries
            .get(index)
            .ok_or(StateSpaceError::UnknownState {
                index,
                len: self.entries.len(),
            })
    }

    /// The `c` constant used in the Rayleigh radius.
    pub fn coordinate_scale(&self) -> f64 {
        self.coordinate_scale
    }

    /// Updates `c` (the median coordinate range of the current embedding).
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::InvalidParameter`] for a negative or
    /// non-finite scale.
    pub fn set_coordinate_scale(&mut self, c: f64) -> Result<(), StateSpaceError> {
        if !c.is_finite() || c < 0.0 {
            return Err(StateSpaceError::InvalidParameter {
                name: "coordinate_scale",
            });
        }
        self.coordinate_scale = c;
        Ok(())
    }

    /// Records a visit to representative `index` at `point` during `mode`.
    ///
    /// Representative indices are dense: visiting index `n` when the map
    /// holds `n` entries appends a new entry; visiting a smaller index
    /// updates position and statistics of the existing entry.
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::UnknownState`] when `index` would leave a
    /// gap (i.e. `index > self.len()`).
    pub fn visit(
        &mut self,
        index: usize,
        point: Point2,
        mode: ExecutionMode,
        tick: u64,
    ) -> Result<(), StateSpaceError> {
        use std::cmp::Ordering;
        match index.cmp(&self.entries.len()) {
            Ordering::Less => {
                let e = &mut self.entries[index];
                e.point = point;
                e.visits += 1;
                e.last_tick = tick;
                Ok(())
            }
            Ordering::Equal => {
                self.entries.push(StateEntry {
                    point,
                    kind: StateKind::Safe,
                    visits: 1,
                    last_tick: tick,
                    first_mode: mode,
                });
                Ok(())
            }
            Ordering::Greater => Err(StateSpaceError::UnknownState {
                index,
                len: self.entries.len(),
            }),
        }
    }

    /// Rewrites the position of entry `index` (used after re-embedding).
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::UnknownState`] for an out-of-range index.
    pub fn set_position(&mut self, index: usize, point: Point2) -> Result<(), StateSpaceError> {
        let len = self.entries.len();
        let e = self
            .entries
            .get_mut(index)
            .ok_or(StateSpaceError::UnknownState { index, len })?;
        e.point = point;
        Ok(())
    }

    /// Labels entry `index` as a violation-state. Idempotent.
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::UnknownState`] for an out-of-range index.
    pub fn mark_violation(&mut self, index: usize) -> Result<(), StateSpaceError> {
        let len = self.entries.len();
        let e = self
            .entries
            .get_mut(index)
            .ok_or(StateSpaceError::UnknownState { index, len })?;
        e.kind = StateKind::Violation;
        Ok(())
    }

    /// Number of violation-states.
    pub fn violation_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.kind == StateKind::Violation)
            .count()
    }

    /// Number of safe-states.
    pub fn safe_count(&self) -> usize {
        self.entries.len() - self.violation_count()
    }

    /// Nearest safe-state to `point`: `(index, distance)`.
    pub fn nearest_safe(&self, point: Point2) -> Option<(usize, f64)> {
        self.nearest_of_kind(point, StateKind::Safe)
    }

    /// Nearest violation-state to `point`: `(index, distance)`.
    pub fn nearest_violation(&self, point: Point2) -> Option<(usize, f64)> {
        self.nearest_of_kind(point, StateKind::Violation)
    }

    fn nearest_of_kind(&self, point: Point2, kind: StateKind) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, e) in self.entries.iter().enumerate() {
            if e.kind != kind {
                continue;
            }
            let d = e.point.distance(point);
            // total_cmp: a NaN distance (degenerate query point) must not
            // capture and then forever hold the "nearest" slot.
            if best.is_none_or(|(_, bd)| d.total_cmp(&bd).is_lt()) {
                best = Some((i, d));
            }
        }
        best
    }

    /// The violation-range around violation-state `index`, using the
    /// Rayleigh radius against the nearest safe-state. When no safe-state
    /// exists the radius collapses to zero (exact-overlap matching).
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::UnknownState`] for an out-of-range index
    /// and [`StateSpaceError::InvalidParameter`] when the entry is not a
    /// violation-state.
    pub fn violation_range(&self, index: usize) -> Result<ViolationRange, StateSpaceError> {
        let e = self.entry(index)?;
        if e.kind != StateKind::Violation {
            return Err(StateSpaceError::InvalidParameter {
                name: "index (not a violation-state)",
            });
        }
        let d = self.nearest_safe(e.point).map(|(_, d)| d).unwrap_or(0.0);
        let r = rayleigh_radius(d, self.coordinate_scale);
        Ok(ViolationRange::new(e.point, r))
    }

    /// All violation-ranges.
    pub fn violation_ranges(&self) -> Vec<ViolationRange> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.kind == StateKind::Violation)
            .map(|(i, _)| {
                self.violation_range(i)
                    .expect("index enumerates violation entries")
            })
            .collect()
    }

    /// True when `point` falls inside any violation-range.
    pub fn in_violation_range(&self, point: Point2) -> bool {
        self.violation_range_containing(point).is_some()
    }

    /// The index of a violation-state whose range contains `point`, if any
    /// (the nearest-centred one when several overlap).
    pub fn violation_range_containing(&self, point: Point2) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, e) in self.entries.iter().enumerate() {
            if e.kind != StateKind::Violation {
                continue;
            }
            let range = self
                .violation_range(i)
                .expect("violation entry yields a range");
            if range.contains(point) {
                let d = e.point.distance(point);
                if best.is_none_or(|(_, bd)| d.total_cmp(&bd).is_lt()) {
                    best = Some((i, d));
                }
            }
        }
        best.map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_map() -> StateMap {
        let mut m = StateMap::new();
        m.set_coordinate_scale(1.0).unwrap();
        m.visit(0, Point2::new(0.0, 0.0), ExecutionMode::SensitiveOnly, 1)
            .unwrap();
        m.visit(1, Point2::new(1.0, 0.0), ExecutionMode::CoLocated, 2)
            .unwrap();
        m.visit(2, Point2::new(0.0, 1.0), ExecutionMode::CoLocated, 3)
            .unwrap();
        m
    }

    #[test]
    fn visit_appends_then_updates() {
        let mut m = mk_map();
        assert_eq!(m.len(), 3);
        m.visit(1, Point2::new(1.1, 0.1), ExecutionMode::CoLocated, 9)
            .unwrap();
        assert_eq!(m.len(), 3);
        let e = m.entry(1).unwrap();
        assert_eq!(e.visits(), 2);
        assert_eq!(e.last_tick(), 9);
        assert_eq!(e.point(), Point2::new(1.1, 0.1));
        assert_eq!(e.first_mode(), ExecutionMode::CoLocated);
    }

    #[test]
    fn visit_rejects_gaps() {
        let mut m = StateMap::new();
        assert!(m
            .visit(2, Point2::origin(), ExecutionMode::Idle, 0)
            .is_err());
    }

    #[test]
    fn mark_violation_is_sticky_and_idempotent() {
        let mut m = mk_map();
        m.mark_violation(1).unwrap();
        m.mark_violation(1).unwrap();
        assert_eq!(m.entry(1).unwrap().kind(), StateKind::Violation);
        assert_eq!(m.violation_count(), 1);
        assert_eq!(m.safe_count(), 2);
    }

    #[test]
    fn nearest_queries_respect_kind() {
        let mut m = mk_map();
        m.mark_violation(1).unwrap();
        let p = Point2::new(0.9, 0.0);
        let (vi, vd) = m.nearest_violation(p).unwrap();
        assert_eq!(vi, 1);
        assert!((vd - 0.1).abs() < 1e-12);
        let (si, _) = m.nearest_safe(p).unwrap();
        assert_eq!(si, 0);
    }

    #[test]
    fn nearest_queries_survive_nan_coordinates() {
        // A degenerate embedding can leave an entry at NaN; it must not
        // capture the "nearest" slot ahead of finite entries.
        let mut m = StateMap::new();
        m.set_coordinate_scale(1.0).unwrap();
        m.visit(0, Point2::new(f64::NAN, 0.0), ExecutionMode::CoLocated, 0)
            .unwrap();
        m.visit(1, Point2::new(1.0, 0.0), ExecutionMode::CoLocated, 1)
            .unwrap();
        let (i, d) = m.nearest_safe(Point2::origin()).unwrap();
        assert_eq!(i, 1);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn violation_range_uses_rayleigh_radius() {
        let mut m = mk_map();
        m.mark_violation(1).unwrap();
        // Nearest safe to (1,0) is (0,0): d = 1, c = 1 → R = e^{-1/2}.
        let r = m.violation_range(1).unwrap();
        assert!((r.radius() - (-0.5f64).exp()).abs() < 1e-12);
        assert_eq!(r.center(), Point2::new(1.0, 0.0));
    }

    #[test]
    fn violation_range_without_safe_states_collapses() {
        let mut m = StateMap::new();
        m.set_coordinate_scale(1.0).unwrap();
        m.visit(0, Point2::origin(), ExecutionMode::CoLocated, 0)
            .unwrap();
        m.mark_violation(0).unwrap();
        assert_eq!(m.violation_range(0).unwrap().radius(), 0.0);
    }

    #[test]
    fn violation_range_rejects_safe_entry() {
        let m = mk_map();
        assert!(m.violation_range(0).is_err());
    }

    #[test]
    fn in_violation_range_detects_membership() {
        let mut m = mk_map();
        m.mark_violation(1).unwrap();
        // R ≈ 0.6065 around (1,0).
        assert!(m.in_violation_range(Point2::new(1.2, 0.0)));
        assert!(!m.in_violation_range(Point2::new(0.2, 0.0)));
        assert_eq!(m.violation_range_containing(Point2::new(1.2, 0.0)), Some(1));
    }

    #[test]
    fn set_position_moves_entries() {
        let mut m = mk_map();
        m.set_position(0, Point2::new(5.0, 5.0)).unwrap();
        assert_eq!(m.entry(0).unwrap().point(), Point2::new(5.0, 5.0));
        assert!(m.set_position(9, Point2::origin()).is_err());
    }

    #[test]
    fn coordinate_scale_validation() {
        let mut m = StateMap::new();
        assert!(m.set_coordinate_scale(-1.0).is_err());
        assert!(m.set_coordinate_scale(f64::NAN).is_err());
        assert!(m.set_coordinate_scale(0.5).is_ok());
        assert_eq!(m.coordinate_scale(), 0.5);
    }

    #[test]
    fn violation_ranges_lists_all() {
        let mut m = mk_map();
        m.mark_violation(1).unwrap();
        m.mark_violation(2).unwrap();
        assert_eq!(m.violation_ranges().len(), 2);
    }

    #[test]
    fn serde_round_trip() {
        let mut m = mk_map();
        m.mark_violation(2).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let m2: StateMap = serde_json::from_str(&json).unwrap();
        assert_eq!(m2.len(), 3);
        assert_eq!(m2.violation_count(), 1);
        assert_eq!(m2.coordinate_scale(), 1.0);
    }
}
