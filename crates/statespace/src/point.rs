//! 2-D points in the mapped state space.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point in the 2-D mapped space.
///
/// This is a passive value type: both coordinates are public.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point2 {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point2 {
    /// Creates a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// The origin.
    pub fn origin() -> Self {
        Point2 { x: 0.0, y: 0.0 }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// The *absolute angle* (§3.2.3) of the step from `self` to `other`:
    /// the angle in `(-π, π]` between the positive x-axis and the step
    /// vector. Returns 0.0 for a zero-length step.
    pub fn angle_to(&self, other: Point2) -> f64 {
        let dy = other.y - self.y;
        let dx = other.x - self.x;
        if dx == 0.0 && dy == 0.0 {
            0.0
        } else {
            dy.atan2(dx)
        }
    }

    /// The point reached by stepping `length` at `angle` from `self`.
    pub fn step(&self, length: f64, angle: f64) -> Point2 {
        Point2 {
            x: self.x + length * angle.cos(),
            y: self.y + length * angle.sin(),
        }
    }

    /// True when both coordinates are finite.
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Midpoint between two points.
    pub fn midpoint(&self, other: Point2) -> Point2 {
        Point2 {
            x: 0.5 * (self.x + other.x),
            y: 0.5 * (self.y + other.y),
        }
    }
}

impl fmt::Display for Point2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point2 {
    fn from((x, y): (f64, f64)) -> Self {
        Point2 { x, y }
    }
}

impl From<Point2> for (f64, f64) {
    fn from(p: Point2) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn distance_is_euclidean() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(b.distance(a), 5.0);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn angle_covers_all_quadrants() {
        let o = Point2::origin();
        assert_eq!(o.angle_to(Point2::new(1.0, 0.0)), 0.0);
        assert!((o.angle_to(Point2::new(0.0, 1.0)) - FRAC_PI_2).abs() < 1e-12);
        assert!((o.angle_to(Point2::new(-1.0, 0.0)) - PI).abs() < 1e-12);
        assert!((o.angle_to(Point2::new(0.0, -1.0)) + FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn zero_step_angle_is_zero() {
        let p = Point2::new(1.0, 1.0);
        assert_eq!(p.angle_to(p), 0.0);
    }

    #[test]
    fn step_inverts_angle_and_distance() {
        let a = Point2::new(0.3, -0.7);
        let b = Point2::new(-1.1, 0.4);
        let reached = a.step(a.distance(b), a.angle_to(b));
        assert!(reached.distance(b) < 1e-12);
    }

    #[test]
    fn conversions_and_display() {
        let p: Point2 = (1.0, 2.0).into();
        let t: (f64, f64) = p.into();
        assert_eq!(t, (1.0, 2.0));
        assert_eq!(format!("{p}"), "(1.0000, 2.0000)");
    }

    #[test]
    fn midpoint_is_halfway() {
        let m = Point2::new(0.0, 0.0).midpoint(Point2::new(2.0, 4.0));
        assert_eq!(m, Point2::new(1.0, 2.0));
    }

    #[test]
    fn serde_round_trip() {
        let p = Point2::new(0.25, -3.5);
        let json = serde_json::to_string(&p).unwrap();
        let q: Point2 = serde_json::from_str(&json).unwrap();
        assert_eq!(p, q);
    }
}
