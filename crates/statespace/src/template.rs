//! Reusable violation templates (§6 of the paper).
//!
//! The violation-states captured while a repeatable sensitive application
//! ran with batch application *A* remain valid violation-states when the
//! same sensitive application later runs with batch application *B*: the
//! states describe load on the *resources*, not the identity of the
//! co-runner. A [`Template`] therefore stores the **normalised
//! high-dimensional measurement vectors** of labelled states — not their
//! 2-D coordinates, which are an artifact of one particular embedding — and
//! is replayed into a fresh controller, which re-embeds them in its own map.

use crate::StateSpaceError;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// One labelled measurement vector inside a template.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemplateState {
    /// Normalised measurement vector (each entry in `[0, 1]`).
    pub vector: Vec<f64>,
    /// True when this state was observed during a QoS violation.
    pub violation: bool,
}

/// A persistable map of labelled states for one sensitive application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Template {
    /// Name of the sensitive application this template describes.
    sensitive_app: String,
    /// Dimensionality of the stored vectors.
    dim: usize,
    states: Vec<TemplateState>,
}

impl Template {
    /// Creates an empty template for the named sensitive application with
    /// measurement vectors of length `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::InvalidParameter`] when `dim == 0`.
    pub fn new(sensitive_app: impl Into<String>, dim: usize) -> Result<Self, StateSpaceError> {
        if dim == 0 {
            return Err(StateSpaceError::InvalidParameter { name: "dim" });
        }
        Ok(Template {
            sensitive_app: sensitive_app.into(),
            dim,
            states: Vec::new(),
        })
    }

    /// Name of the sensitive application.
    pub fn sensitive_app(&self) -> &str {
        &self.sensitive_app
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when no states are stored.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Iterates over the stored states.
    pub fn iter(&self) -> impl Iterator<Item = &TemplateState> + '_ {
        self.states.iter()
    }

    /// Number of violation-labelled states.
    pub fn violation_count(&self) -> usize {
        self.states.iter().filter(|s| s.violation).count()
    }

    /// Adds a labelled state.
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::InvalidParameter`] for wrong-length or
    /// non-finite vectors.
    pub fn push(&mut self, vector: Vec<f64>, violation: bool) -> Result<(), StateSpaceError> {
        if vector.len() != self.dim {
            return Err(StateSpaceError::InvalidParameter { name: "vector.len" });
        }
        if vector.iter().any(|v| !v.is_finite()) {
            return Err(StateSpaceError::InvalidParameter { name: "vector" });
        }
        self.states.push(TemplateState { vector, violation });
        Ok(())
    }

    /// Merges the states of `other` into `self` (used to accumulate
    /// knowledge across several runs of the same sensitive application).
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::InvalidParameter`] when dimensions differ
    /// or the templates describe different sensitive applications.
    pub fn merge(&mut self, other: &Template) -> Result<(), StateSpaceError> {
        if other.dim != self.dim {
            return Err(StateSpaceError::InvalidParameter { name: "other.dim" });
        }
        if other.sensitive_app != self.sensitive_app {
            return Err(StateSpaceError::InvalidParameter {
                name: "other.sensitive_app",
            });
        }
        self.states.extend(other.states.iter().cloned());
        Ok(())
    }

    /// Serialises the template as JSON to a writer.
    ///
    /// A mutable reference can be passed as the writer.
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::Template`] on serialisation failure.
    pub fn save<W: Write>(&self, writer: W) -> Result<(), StateSpaceError> {
        serde_json::to_writer_pretty(writer, self)
            .map_err(|e| StateSpaceError::Template(e.to_string()))
    }

    /// Deserialises a template from a JSON reader.
    ///
    /// A mutable reference can be passed as the reader.
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::Template`] on malformed input or when the
    /// decoded template violates its own invariants.
    pub fn load<R: Read>(reader: R) -> Result<Self, StateSpaceError> {
        let t: Template = serde_json::from_reader(reader)
            .map_err(|e| StateSpaceError::Template(e.to_string()))?;
        if t.dim == 0 {
            return Err(StateSpaceError::Template("dim must be positive".into()));
        }
        for s in &t.states {
            if s.vector.len() != t.dim {
                return Err(StateSpaceError::Template(format!(
                    "state vector length {} != dim {}",
                    s.vector.len(),
                    t.dim
                )));
            }
            if s.vector.iter().any(|v| !v.is_finite()) {
                return Err(StateSpaceError::Template("non-finite coordinate".into()));
            }
        }
        Ok(t)
    }

    /// Saves to a filesystem path.
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialisation failures.
    pub fn save_to_path(&self, path: impl AsRef<std::path::Path>) -> Result<(), StateSpaceError> {
        let file = std::fs::File::create(path)?;
        self.save(file)
    }

    /// Loads from a filesystem path.
    ///
    /// # Errors
    ///
    /// Propagates I/O and deserialisation failures.
    pub fn load_from_path(path: impl AsRef<std::path::Path>) -> Result<Self, StateSpaceError> {
        let file = std::fs::File::open(path)?;
        Template::load(file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Template {
        let mut t = Template::new("vlc-streaming", 3).unwrap();
        t.push(vec![0.1, 0.2, 0.3], false).unwrap();
        t.push(vec![0.9, 0.9, 0.8], true).unwrap();
        t.push(vec![0.5, 0.4, 0.2], false).unwrap();
        t
    }

    #[test]
    fn push_and_count() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert_eq!(t.violation_count(), 1);
        assert_eq!(t.dim(), 3);
        assert_eq!(t.sensitive_app(), "vlc-streaming");
    }

    #[test]
    fn push_validates() {
        let mut t = Template::new("x", 2).unwrap();
        assert!(t.push(vec![0.1], false).is_err());
        assert!(t.push(vec![f64::NAN, 0.0], false).is_err());
        assert!(Template::new("x", 0).is_err());
    }

    #[test]
    fn json_round_trip() {
        let t = sample();
        let mut buf = Vec::new();
        t.save(&mut buf).unwrap();
        let t2 = Template::load(buf.as_slice()).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn load_rejects_corrupt_payloads() {
        assert!(Template::load(&b"not json"[..]).is_err());
        // Right shape, wrong invariant: vector length mismatch.
        let bad = r#"{"sensitive_app":"x","dim":2,"states":[{"vector":[0.1],"violation":false}]}"#;
        assert!(Template::load(bad.as_bytes()).is_err());
        let bad_dim = r#"{"sensitive_app":"x","dim":0,"states":[]}"#;
        assert!(Template::load(bad_dim.as_bytes()).is_err());
    }

    #[test]
    fn merge_accumulates_and_validates() {
        let mut a = sample();
        let b = sample();
        a.merge(&b).unwrap();
        assert_eq!(a.len(), 6);
        assert_eq!(a.violation_count(), 2);

        let other_dim = Template::new("vlc-streaming", 4).unwrap();
        assert!(a.merge(&other_dim).is_err());
        let other_app = Template::new("webservice", 3).unwrap();
        assert!(a.merge(&other_app).is_err());
    }

    #[test]
    fn file_round_trip() {
        let t = sample();
        let dir = std::env::temp_dir().join("stayaway-template-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.json");
        t.save_to_path(&path).unwrap();
        let t2 = Template::load_from_path(&path).unwrap();
        assert_eq!(t, t2);
        std::fs::remove_file(&path).ok();
    }
}
