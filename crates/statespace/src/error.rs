use std::fmt;

/// Error type for state-space operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum StateSpaceError {
    /// A state index was out of bounds.
    UnknownState {
        /// The offending index.
        index: usize,
        /// Number of states in the map.
        len: usize,
    },
    /// A numeric parameter was invalid (negative, NaN, …).
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
    },
    /// Template (de)serialisation failed.
    Template(String),
    /// Underlying I/O failure while reading/writing a template.
    Io(std::io::Error),
}

impl fmt::Display for StateSpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateSpaceError::UnknownState { index, len } => {
                write!(f, "unknown state index {index} (map holds {len} states)")
            }
            StateSpaceError::InvalidParameter { name } => {
                write!(f, "invalid parameter `{name}`")
            }
            StateSpaceError::Template(msg) => write!(f, "template error: {msg}"),
            StateSpaceError::Io(e) => write!(f, "template i/o error: {e}"),
        }
    }
}

impl std::error::Error for StateSpaceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StateSpaceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StateSpaceError {
    fn from(e: std::io::Error) -> Self {
        StateSpaceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StateSpaceError::UnknownState { index: 7, len: 3 };
        assert!(e.to_string().contains('7'));
        let e = StateSpaceError::InvalidParameter { name: "epsilon" };
        assert!(e.to_string().contains("epsilon"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        use std::error::Error;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e = StateSpaceError::from(io);
        assert!(e.source().is_some());
    }
}
