//! SVG rendering of the state space — the paper's visualisation claim.
//!
//! One of Stay-Away's stated contributions is that the state-space
//! representation "helps visualise co-located execution" (§1, §6): the
//! figures 5–7 and 17–18 of the paper are exactly such renderings. This
//! module produces them as self-contained SVG documents — safe states,
//! violation-states with their violation-ranges, and optional execution
//! trajectories — with no external dependencies.

use crate::map::{StateKind, StateMap};
use crate::point::Point2;
use std::fmt::Write as _;

/// Colours per element (any SVG colour string).
#[derive(Debug, Clone)]
pub struct Palette {
    /// Fill of safe states.
    pub safe: String,
    /// Fill of violation states.
    pub violation: String,
    /// Stroke of violation-range circles.
    pub range: String,
    /// Stroke of trajectory polylines (cycled per trajectory).
    pub trails: Vec<String>,
    /// Background colour.
    pub background: String,
}

impl Default for Palette {
    fn default() -> Self {
        Palette {
            safe: "#4c78a8".into(),
            violation: "#e45756".into(),
            range: "#e45756".into(),
            trails: vec![
                "#72b7b2".into(),
                "#eeca3b".into(),
                "#b279a2".into(),
                "#ff9da6".into(),
            ],
            background: "#ffffff".into(),
        }
    }
}

/// Builder for a state-space SVG.
#[derive(Debug)]
pub struct MapRenderer<'a> {
    map: &'a StateMap,
    width: u32,
    height: u32,
    palette: Palette,
    trails: Vec<(String, Vec<Point2>)>,
    draw_ranges: bool,
    title: Option<String>,
}

impl<'a> MapRenderer<'a> {
    /// Starts rendering `map` on a canvas of the given pixel size.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(map: &'a StateMap, width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "canvas must be non-empty");
        MapRenderer {
            map,
            width,
            height,
            palette: Palette::default(),
            trails: Vec::new(),
            draw_ranges: true,
            title: None,
        }
    }

    /// Overrides the palette.
    pub fn palette(mut self, palette: Palette) -> Self {
        self.palette = palette;
        self
    }

    /// Adds a labelled execution trajectory.
    pub fn trail(mut self, label: impl Into<String>, points: Vec<Point2>) -> Self {
        self.trails.push((label.into(), points));
        self
    }

    /// Enables/disables violation-range circles (default on).
    pub fn ranges(mut self, draw: bool) -> Self {
        self.draw_ranges = draw;
        self
    }

    /// Sets a title caption.
    pub fn title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Renders the SVG document.
    pub fn render(&self) -> String {
        // Data bounds over states, ranges and trails.
        let mut min = (f64::INFINITY, f64::INFINITY);
        let mut max = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        let mut extend = |p: Point2, pad: f64| {
            min.0 = min.0.min(p.x - pad);
            min.1 = min.1.min(p.y - pad);
            max.0 = max.0.max(p.x + pad);
            max.1 = max.1.max(p.y + pad);
        };
        for (i, e) in self.map.iter().enumerate() {
            let pad = if self.draw_ranges && e.kind() == StateKind::Violation {
                self.map
                    .violation_range(i)
                    .map(|r| r.radius())
                    .unwrap_or(0.0)
            } else {
                0.0
            };
            extend(e.point(), pad);
        }
        for (_, trail) in &self.trails {
            for &p in trail {
                extend(p, 0.0);
            }
        }
        if !min.0.is_finite() {
            min = (-1.0, -1.0);
            max = (1.0, 1.0);
        }
        // Symmetric padding and degenerate-span protection.
        let span_x = (max.0 - min.0).max(1e-6);
        let span_y = (max.1 - min.1).max(1e-6);
        let margin = 30.0;
        let sx = (f64::from(self.width) - 2.0 * margin) / span_x;
        let sy = (f64::from(self.height) - 2.0 * margin) / span_y;
        let scale = sx.min(sy);
        let to_px = |p: Point2| -> (f64, f64) {
            (
                margin + (p.x - min.0) * scale,
                // SVG y grows downward; flip so the map reads like a plot.
                f64::from(self.height) - margin - (p.y - min.1) * scale,
            )
        };

        let mut svg = String::new();
        let _ = writeln!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">"#,
            w = self.width,
            h = self.height
        );
        let _ = writeln!(
            svg,
            r#"<rect width="100%" height="100%" fill="{}"/>"#,
            self.palette.background
        );
        if let Some(title) = &self.title {
            let _ = writeln!(
                svg,
                r#"<text x="{}" y="20" font-family="sans-serif" font-size="14" text-anchor="middle">{}</text>"#,
                self.width / 2,
                xml_escape(title)
            );
        }

        // Violation ranges first (underneath everything).
        if self.draw_ranges {
            for (i, e) in self.map.iter().enumerate() {
                if e.kind() != StateKind::Violation {
                    continue;
                }
                if let Ok(range) = self.map.violation_range(i) {
                    if range.radius() > 0.0 {
                        let (cx, cy) = to_px(range.center());
                        let _ = writeln!(
                            svg,
                            r#"<circle cx="{cx:.1}" cy="{cy:.1}" r="{:.1}" fill="{color}" fill-opacity="0.08" stroke="{color}" stroke-opacity="0.4" stroke-dasharray="4 3"/>"#,
                            range.radius() * scale,
                            color = self.palette.range
                        );
                    }
                }
            }
        }

        // Trajectories.
        for (t, (label, trail)) in self.trails.iter().enumerate() {
            if trail.len() < 2 {
                continue;
            }
            let color = &self.palette.trails[t % self.palette.trails.len()];
            let mut path = String::new();
            for &p in trail {
                let (x, y) = to_px(p);
                let _ = write!(path, "{x:.1},{y:.1} ");
            }
            let _ = writeln!(
                svg,
                r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.2" stroke-opacity="0.7"><title>{}</title></polyline>"#,
                path.trim_end(),
                xml_escape(label)
            );
        }

        // States on top, sized by visit count.
        for (i, e) in self.map.iter().enumerate() {
            let (cx, cy) = to_px(e.point());
            let r = 3.0 + (e.visits() as f64).ln_1p();
            let color = match e.kind() {
                StateKind::Violation => &self.palette.violation,
                StateKind::Safe => &self.palette.safe,
            };
            let _ = writeln!(
                svg,
                r#"<circle cx="{cx:.1}" cy="{cy:.1}" r="{r:.1}" fill="{color}" fill-opacity="0.85"><title>S{i}: {} visits, {}</title></circle>"#,
                e.visits(),
                match e.kind() {
                    StateKind::Violation => "violation",
                    StateKind::Safe => "safe",
                }
            );
        }
        svg.push_str("</svg>\n");
        svg
    }

    /// Renders and writes the SVG to a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::ExecutionMode;

    fn sample_map() -> StateMap {
        let mut m = StateMap::new();
        m.set_coordinate_scale(1.0).unwrap();
        m.visit(0, Point2::new(0.0, 0.0), ExecutionMode::SensitiveOnly, 1)
            .unwrap();
        m.visit(1, Point2::new(1.0, 0.5), ExecutionMode::CoLocated, 2)
            .unwrap();
        m.visit(2, Point2::new(0.2, 0.9), ExecutionMode::CoLocated, 3)
            .unwrap();
        m.mark_violation(1).unwrap();
        m
    }

    #[test]
    fn renders_well_formed_svg() {
        let map = sample_map();
        let svg = MapRenderer::new(&map, 400, 300)
            .title("test map")
            .trail("run", vec![Point2::new(0.0, 0.0), Point2::new(1.0, 0.5)])
            .render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<circle").count(), 4); // 3 states + 1 range
        assert!(svg.contains("<polyline"));
        assert!(svg.contains("test map"));
        // Balanced tags.
        assert_eq!(svg.matches("<svg").count(), svg.matches("</svg>").count());
    }

    #[test]
    fn ranges_can_be_disabled() {
        let map = sample_map();
        let svg = MapRenderer::new(&map, 400, 300).ranges(false).render();
        assert_eq!(svg.matches("<circle").count(), 3); // states only
        assert!(!svg.contains("stroke-dasharray"));
    }

    #[test]
    fn empty_map_renders_without_panicking() {
        let map = StateMap::new();
        let svg = MapRenderer::new(&map, 100, 100).render();
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn coordinates_stay_inside_the_canvas() {
        let map = sample_map();
        let svg = MapRenderer::new(&map, 400, 300).render();
        for cap in ["cx=\"", "cy=\""] {
            for chunk in svg.split(cap).skip(1) {
                let v: f64 = chunk
                    .split('"')
                    .next()
                    .unwrap()
                    .parse()
                    .expect("numeric coordinate");
                assert!((-0.001..=400.001).contains(&v), "coordinate {v} escapes");
            }
        }
    }

    #[test]
    fn titles_are_escaped() {
        let map = sample_map();
        let svg = MapRenderer::new(&map, 100, 100).title("a < b & c").render();
        assert!(svg.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn save_writes_a_file() {
        let map = sample_map();
        let path = std::env::temp_dir().join("stayaway-viz-test.svg");
        MapRenderer::new(&map, 200, 200).save(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("<svg"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    #[should_panic(expected = "canvas")]
    fn zero_canvas_panics() {
        let map = StateMap::new();
        let _ = MapRenderer::new(&map, 0, 100);
    }
}
