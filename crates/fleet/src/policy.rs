//! Policy selection: which control plane a fleet cell (or a CLI run) uses.
//!
//! A [`PolicySpec`] is the declarative, clonable description of a control
//! plane; [`PolicySpec::build`] instantiates it against a concrete host as
//! a boxed [`ControlPolicy`]. Fleets round-robin a list of specs across
//! their cells, so one fleet can run mixed-policy populations (e.g. a
//! Stay-Away cohort against a reactive control group) in a single
//! deterministic run.

use crate::FleetError;
use stayaway_baselines::{AlwaysThrottle, ReactivePolicy, StaticThresholdPolicy};
use stayaway_core::{ControlPolicy, Controller, ControllerConfig, CoreError, Observability};
use stayaway_sim::{HostSpec, NullPolicy};

/// Default reactive cooldown (violation-free ticks before resume) used by
/// [`PolicySpec::parse`] and [`PolicySpec::Reactive`]'s shorthand.
pub const DEFAULT_REACTIVE_COOLDOWN: u64 = 10;

/// Default static CPU-threshold fraction used by [`PolicySpec::parse`].
pub const DEFAULT_STATIC_FRACTION: f64 = 0.5;

/// Declarative choice of control plane.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicySpec {
    /// The staged Stay-Away controller (mapping + prediction + action).
    StayAway,
    /// Reactive phase-in/phase-out baseline: throttle after an observed
    /// violation, resume after `cooldown` violation-free ticks.
    Reactive {
        /// Violation-free ticks before a resume (must be ≥ 1).
        cooldown: u64,
    },
    /// Static profiling rule: throttle while sensitive CPU exceeds
    /// `fraction` of the machine.
    StaticThreshold {
        /// CPU-usage fraction in `(0, 1]`.
        fraction: f64,
    },
    /// Batch applications never run (isolated-run QoS bound).
    AlwaysThrottle,
    /// No prevention at all (co-location without mitigation).
    Null,
}

impl PolicySpec {
    /// The canonical policy name, matching what the built policy reports
    /// via [`stayaway_sim::Policy::name`].
    pub fn name(&self) -> &'static str {
        match self {
            PolicySpec::StayAway => "stay-away",
            PolicySpec::Reactive { .. } => "reactive",
            PolicySpec::StaticThreshold { .. } => "static-threshold",
            PolicySpec::AlwaysThrottle => "always-throttle",
            PolicySpec::Null => "no-prevention",
        }
    }

    /// Parses a CLI policy token. Accepted (with aliases):
    /// `stayaway`/`stay-away`, `reactive`, `static`/`static-threshold`,
    /// `always`/`always-throttle`, `null`/`none`/`no-prevention`.
    /// Baseline parameters take their defaults
    /// ([`DEFAULT_REACTIVE_COOLDOWN`], [`DEFAULT_STATIC_FRACTION`]).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] for an unknown token.
    pub fn parse(token: &str) -> Result<Self, FleetError> {
        match token.trim().to_ascii_lowercase().as_str() {
            "stayaway" | "stay-away" => Ok(PolicySpec::StayAway),
            "reactive" => Ok(PolicySpec::Reactive {
                cooldown: DEFAULT_REACTIVE_COOLDOWN,
            }),
            "static" | "static-threshold" => Ok(PolicySpec::StaticThreshold {
                fraction: DEFAULT_STATIC_FRACTION,
            }),
            "always" | "always-throttle" => Ok(PolicySpec::AlwaysThrottle),
            "null" | "none" | "no-prevention" => Ok(PolicySpec::Null),
            other => Err(FleetError::InvalidConfig {
                reason: format!(
                    "unknown policy '{other}' (expected stayaway|reactive|static|always|null)"
                ),
            }),
        }
    }

    /// Parses a comma-separated list of policy tokens (for mixed fleets).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] for an empty list or any
    /// unknown token.
    pub fn parse_list(tokens: &str) -> Result<Vec<Self>, FleetError> {
        let specs: Vec<Self> = tokens
            .split(',')
            .filter(|t| !t.trim().is_empty())
            .map(Self::parse)
            .collect::<Result<_, _>>()?;
        if specs.is_empty() {
            return Err(FleetError::InvalidConfig {
                reason: "policy list must not be empty".into(),
            });
        }
        Ok(specs)
    }

    /// True when the policy can export/import state-map templates (§6);
    /// fleets only schedule template-sharing waves across such cells.
    pub fn supports_templates(&self) -> bool {
        matches!(self, PolicySpec::StayAway)
    }

    /// True when the policy runs a swappable prediction plane
    /// (DESIGN.md §15) — i.e. consults
    /// [`stayaway_core::ControllerConfig::predictor`]. Baselines do not;
    /// their cells report no predictor and join no predictor rollup.
    pub fn uses_predictor(&self) -> bool {
        matches!(self, PolicySpec::StayAway)
    }

    /// Validates the spec's parameters (so fleet configuration errors
    /// surface as errors, not as baseline constructor panics mid-run).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] describing the problem.
    pub fn validate(&self) -> Result<(), FleetError> {
        match self {
            PolicySpec::Reactive { cooldown } if *cooldown == 0 => Err(FleetError::InvalidConfig {
                reason: "reactive cooldown must be positive".into(),
            }),
            PolicySpec::StaticThreshold { fraction }
                if !(fraction.is_finite() && *fraction > 0.0 && *fraction <= 1.0) =>
            {
                Err(FleetError::InvalidConfig {
                    reason: format!("static threshold fraction must be in (0, 1], got {fraction}"),
                })
            }
            _ => Ok(()),
        }
    }

    /// Instantiates the control plane for a host. `config` is only
    /// consulted by [`PolicySpec::StayAway`]; baselines derive what they
    /// need (e.g. CPU capacity) from the host spec.
    ///
    /// # Errors
    ///
    /// Propagates controller construction failures.
    pub fn build(
        &self,
        config: &ControllerConfig,
        spec: &HostSpec,
    ) -> Result<Box<dyn ControlPolicy + Send>, CoreError> {
        self.build_observed(config, spec, Observability::disabled())
    }

    /// Like [`PolicySpec::build`], with the control plane's instruments
    /// registered into the given [`Observability`] bundle. Baselines
    /// register nothing; decisions are identical either way.
    ///
    /// # Errors
    ///
    /// Propagates controller construction failures.
    pub fn build_observed(
        &self,
        config: &ControllerConfig,
        spec: &HostSpec,
        obs: Observability,
    ) -> Result<Box<dyn ControlPolicy + Send>, CoreError> {
        Ok(match self {
            PolicySpec::StayAway => {
                Box::new(Controller::for_host_observed(config.clone(), spec, obs)?)
            }
            PolicySpec::Reactive { cooldown } => Box::new(ReactivePolicy::new(*cooldown)),
            PolicySpec::StaticThreshold { fraction } => {
                Box::new(StaticThresholdPolicy::new(*fraction, spec.cpu_cores))
            }
            PolicySpec::AlwaysThrottle => Box::new(AlwaysThrottle::new()),
            PolicySpec::Null => Box::new(NullPolicy::new()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_canonical_names_and_aliases() {
        assert_eq!(
            PolicySpec::parse("stay-away").unwrap(),
            PolicySpec::StayAway
        );
        assert_eq!(PolicySpec::parse("STAYAWAY").unwrap(), PolicySpec::StayAway);
        assert_eq!(
            PolicySpec::parse("reactive").unwrap(),
            PolicySpec::Reactive {
                cooldown: DEFAULT_REACTIVE_COOLDOWN
            }
        );
        assert_eq!(
            PolicySpec::parse("static").unwrap(),
            PolicySpec::StaticThreshold {
                fraction: DEFAULT_STATIC_FRACTION
            }
        );
        assert_eq!(
            PolicySpec::parse("always").unwrap(),
            PolicySpec::AlwaysThrottle
        );
        assert_eq!(PolicySpec::parse("none").unwrap(), PolicySpec::Null);
        assert!(PolicySpec::parse("bogus").is_err());
    }

    #[test]
    fn parse_list_splits_on_commas() {
        let specs = PolicySpec::parse_list("stayaway, reactive,null").unwrap();
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].name(), "stay-away");
        assert_eq!(specs[2].name(), "no-prevention");
        assert!(PolicySpec::parse_list("").is_err());
        assert!(PolicySpec::parse_list("stayaway,bogus").is_err());
    }

    #[test]
    fn only_stay_away_supports_templates() {
        assert!(PolicySpec::StayAway.supports_templates());
        for spec in [
            PolicySpec::Reactive { cooldown: 5 },
            PolicySpec::StaticThreshold { fraction: 0.5 },
            PolicySpec::AlwaysThrottle,
            PolicySpec::Null,
        ] {
            assert!(!spec.supports_templates(), "{}", spec.name());
        }
    }

    #[test]
    fn degenerate_parameters_are_rejected() {
        assert!(PolicySpec::Reactive { cooldown: 0 }.validate().is_err());
        assert!(PolicySpec::StaticThreshold { fraction: 0.0 }
            .validate()
            .is_err());
        assert!(PolicySpec::StaticThreshold { fraction: 1.5 }
            .validate()
            .is_err());
        assert!(PolicySpec::StaticThreshold { fraction: f64::NAN }
            .validate()
            .is_err());
        assert!(PolicySpec::Reactive { cooldown: 1 }.validate().is_ok());
    }

    #[test]
    fn build_produces_the_named_policy() {
        let spec = HostSpec::default();
        let config = ControllerConfig::default();
        for policy_spec in [
            PolicySpec::StayAway,
            PolicySpec::Reactive { cooldown: 10 },
            PolicySpec::StaticThreshold { fraction: 0.5 },
            PolicySpec::AlwaysThrottle,
            PolicySpec::Null,
        ] {
            let built = policy_spec.build(&config, &spec).unwrap();
            assert_eq!(built.name(), policy_spec.name());
        }
    }
}
