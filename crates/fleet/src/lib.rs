//! The fleet runtime: a sharded multi-host control plane.
//!
//! The paper's controller protects one sensitive application on one host.
//! At production scale the same mechanism runs on *many* hosts at once:
//! each **cell** is one independent co-location experiment — a
//! [`stayaway_sim::Harness`] closed loop driven by its own
//! [`stayaway_core::ControlPolicy`] (the staged Stay-Away controller or
//! any baseline, selected per cell via [`PolicySpec`]) — and the fleet
//! runtime executes N cells concurrently over a fixed worker pool. A fleet
//! can be homogeneous or round-robin several policies across its cells,
//! running a Stay-Away cohort against a control group in one experiment;
//! the rollup reports per-policy aggregates alongside the fleet totals.
//!
//! Three properties define the design:
//!
//! * **Determinism regardless of worker count.** Every cell derives its
//!   seed from `(fleet_seed, cell_idx)` via a splitmix64 mix ([`seed`]),
//!   cells never share mutable state while running, and aggregation folds
//!   cell results in cell-index order — so `workers = 1` and `workers = 8`
//!   produce bit-identical [`FleetOutcome`]s.
//! * **Cross-host template transfer.** The paper's §6 observation —
//!   specialized knowledge captured on one deployment warm-starts a fresh
//!   one — pays off at fleet scale: pioneer cells publish their learned
//!   [`stayaway_statespace::Template`]s into a shared [`TemplateRegistry`]
//!   and every later cell of the same sensitive workload imports the best
//!   match before its first tick, throttling proactively on first contact.
//!   Sharing is phased (pioneers → barrier → followers) precisely so the
//!   registry contents a cell observes do not depend on thread scheduling.
//! * **Constant-memory cells.** Controllers bound their decision logs
//!   ([`stayaway_core::EventLog`]), so week-long fleet runs do not grow
//!   without limit; evictions are surfaced in the fleet rollup.
//!
//! ```
//! use stayaway_fleet::{Fleet, FleetConfig};
//!
//! # fn main() -> Result<(), stayaway_fleet::FleetError> {
//! let mut config = FleetConfig::new(8, 2, 7);
//! config.ticks = 120;
//! config.share_templates = true;
//! let outcome = Fleet::new(config)?.run()?;
//! assert_eq!(outcome.per_cell.len(), 8);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod cell;
pub mod cluster;
pub mod config;
pub mod policy;
pub mod predictor;
pub mod registry;
pub mod runner;
pub mod seed;
pub mod source;
pub mod tournament;

mod error;

pub use aggregate::{CellSummary, FleetOutcome, PolicyRollup, PredictorRollup};
pub use cell::{CellOutcome, CellPlan};
pub use cluster::{
    cluster_by_name, cluster_library, cluster_names, derive_job_seed, Cluster, ClusterAction,
    ClusterConfig, ClusterOutcome, ClusterPolicy, ClusterPolicySpec, ClusterScenario, HostRollup,
    HostSnapshot, JobRollup, JobSpec, JobView,
};
pub use config::FleetConfig;
pub use error::FleetError;
pub use policy::PolicySpec;
pub use predictor::PredictorSpec;
pub use registry::{RegistryEntry, TemplateRegistry};
pub use runner::Fleet;
pub use seed::derive_cell_seed;
pub use source::SourceSpec;
pub use tournament::{
    run_tournament, MeanCi, ScenarioScore, Standing, TournamentConfig, TournamentOutcome,
};
