//! Fleet configuration: how many cells, how many workers, which scenarios.

use crate::policy::PolicySpec;
use crate::predictor::PredictorSpec;
use crate::source::SourceSpec;
use crate::FleetError;
use stayaway_core::ControllerConfig;
use stayaway_sim::apps::WebWorkload;
use stayaway_sim::scenario::{BatchKind, Scenario};

/// Configuration of one fleet run.
///
/// The fleet round-robins the `scenarios` prototypes across its cells:
/// cell `i` runs `scenarios[i % scenarios.len()]` reseeded with
/// [`crate::derive_cell_seed`]`(fleet_seed, i)`. A prototype's physics
/// (workload trace, batch start ticks) are shared by every cell built from
/// it — modelling a fleet of hosts serving the same service tier — while
/// the monitoring-noise and controller randomness diverge per cell.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of co-location cells to run.
    pub cells: usize,
    /// Worker threads executing cells. Results are independent of this
    /// value; it only bounds parallelism.
    pub workers: usize,
    /// Closed-loop ticks per cell.
    pub ticks: u64,
    /// Root seed; every cell seed derives from it.
    pub fleet_seed: u64,
    /// When true, pioneer cells publish learned templates into the shared
    /// [`crate::TemplateRegistry`] and later cells of the same sensitive
    /// workload import the best match before their first tick (§6 at
    /// fleet scale).
    pub share_templates: bool,
    /// When true, every cell records into its own metrics registry
    /// (DESIGN.md §11) and the fleet outcome carries the deterministic
    /// fixed-order rollup of those registries. Decision-inert: the run's
    /// actions and statistics are identical either way.
    pub collect_metrics: bool,
    /// When true, every cell records typed flight-recorder events
    /// (DESIGN.md §16) and the fleet outcome carries their canonical
    /// merged stream. Decision-inert and worker-count independent.
    pub collect_events: bool,
    /// Scenario prototypes round-robined across cells; must be non-empty.
    pub scenarios: Vec<Scenario>,
    /// Control planes round-robined across cells (cell `i` runs
    /// `policies[i % policies.len()]`); must be non-empty. A single-entry
    /// list gives a homogeneous fleet; several entries run a mixed-policy
    /// population in one deterministic experiment.
    pub policies: Vec<PolicySpec>,
    /// Prediction planes round-robined across Stay-Away cells (cell `i`
    /// runs `predictors[i % predictors.len()]`); must be non-empty.
    /// Baseline policies ignore the assignment. The default single-entry
    /// KDE list keeps every cell on the paper's design; several entries
    /// run a mixed-predictor population — the substrate of the predictor
    /// tournament ([`crate::tournament`]).
    pub predictors: Vec<PredictorSpec>,
    /// Observation substrates round-robined across cells (cell `i` senses
    /// through `sources[i % sources.len()]`); must be non-empty. The
    /// default single-entry `[SourceSpec::Sim]` list keeps every cell on
    /// the simulator; mixing in trace-replay cells lets one fleet compare
    /// live and recorded telemetry deterministically.
    pub sources: Vec<SourceSpec>,
    /// Controller tunables shared by every Stay-Away cell (the per-cell
    /// seed overrides [`ControllerConfig::seed`]); ignored by baseline
    /// policies.
    pub controller: ControllerConfig,
    /// Per-cell worker-thread budget of the mapping kernels; overrides
    /// [`ControllerConfig::mapping_workers`] for every cell. Defaults to 1
    /// — fleet parallelism is across cells, so each cell's mapping plane
    /// stays serial unless a mapping-bound deployment raises it. Mapping
    /// results are bit-for-bit identical for any value ≥ 1.
    pub mapping_workers: usize,
}

impl FleetConfig {
    /// A fleet of `cells` cells over `workers` threads running the
    /// [`FleetConfig::standard_mix`] for 384 ticks (the binary's default
    /// run length) without template sharing.
    pub fn new(cells: usize, workers: usize, fleet_seed: u64) -> Self {
        FleetConfig {
            cells,
            workers,
            ticks: 384,
            fleet_seed,
            share_templates: false,
            collect_metrics: false,
            collect_events: false,
            scenarios: Self::standard_mix(fleet_seed),
            policies: vec![PolicySpec::StayAway],
            predictors: vec![PredictorSpec::default()],
            sources: vec![SourceSpec::Sim],
            controller: ControllerConfig::default(),
            mapping_workers: 1,
        }
    }

    /// The default scenario mix: the paper's three VLC co-locations plus a
    /// mixed-workload webservice — four service tiers a production fleet
    /// would run side by side.
    pub fn standard_mix(seed: u64) -> Vec<Scenario> {
        vec![
            Scenario::vlc_with_cpubomb(seed),
            Scenario::vlc_with_twitter(seed),
            Scenario::vlc_with_soplex(seed),
            Scenario::webservice_with(WebWorkload::Mix, BatchKind::Soplex, seed),
        ]
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] describing the first problem
    /// found (zero cells/workers/ticks, an empty scenario list, or an
    /// invalid controller configuration).
    pub fn validate(&self) -> Result<(), FleetError> {
        if self.cells == 0 {
            return Err(FleetError::InvalidConfig {
                reason: "cells must be positive".into(),
            });
        }
        if self.workers == 0 {
            return Err(FleetError::InvalidConfig {
                reason: "workers must be positive".into(),
            });
        }
        if self.ticks == 0 {
            return Err(FleetError::InvalidConfig {
                reason: "ticks must be positive".into(),
            });
        }
        if self.scenarios.is_empty() {
            return Err(FleetError::InvalidConfig {
                reason: "scenario mix must not be empty".into(),
            });
        }
        if self.policies.is_empty() {
            return Err(FleetError::InvalidConfig {
                reason: "policy mix must not be empty".into(),
            });
        }
        for policy in &self.policies {
            policy.validate()?;
        }
        if self.predictors.is_empty() {
            return Err(FleetError::InvalidConfig {
                reason: "predictor mix must not be empty".into(),
            });
        }
        if self.sources.is_empty() {
            return Err(FleetError::InvalidConfig {
                reason: "source mix must not be empty".into(),
            });
        }
        for source in &self.sources {
            source.validate()?;
        }
        if self.mapping_workers == 0 {
            return Err(FleetError::InvalidConfig {
                reason: "mapping_workers must be positive".into(),
            });
        }
        self.controller.validate().map_err(FleetError::Core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_construction_is_valid() {
        let c = FleetConfig::new(16, 4, 7);
        c.validate().unwrap();
        assert_eq!(c.cells, 16);
        assert_eq!(c.workers, 4);
        assert_eq!(c.scenarios.len(), 4);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let base = FleetConfig::new(4, 2, 1);
        for broken in [
            FleetConfig {
                cells: 0,
                ..base.clone()
            },
            FleetConfig {
                workers: 0,
                ..base.clone()
            },
            FleetConfig {
                ticks: 0,
                ..base.clone()
            },
            FleetConfig {
                scenarios: Vec::new(),
                ..base.clone()
            },
            FleetConfig {
                policies: Vec::new(),
                ..base.clone()
            },
            FleetConfig {
                predictors: Vec::new(),
                ..base.clone()
            },
            FleetConfig {
                sources: Vec::new(),
                ..base.clone()
            },
            FleetConfig {
                sources: vec![SourceSpec::Trace {
                    path: String::new(),
                }],
                ..base.clone()
            },
            FleetConfig {
                policies: vec![PolicySpec::Reactive { cooldown: 0 }],
                ..base.clone()
            },
            FleetConfig {
                controller: ControllerConfig {
                    prediction_samples: 0,
                    ..ControllerConfig::default()
                },
                ..base.clone()
            },
        ] {
            assert!(broken.validate().is_err());
        }
    }
}
