//! Predictor selection: which prediction plane a Stay-Away cell runs.
//!
//! A [`PredictorSpec`] is the fleet-side, declarative description of one
//! prediction plane (DESIGN.md §15) — a thin wrapper over
//! [`stayaway_core::PredictorKind`] that parses CLI tokens into
//! [`FleetError`]s and applies itself onto a [`ControllerConfig`]. Fleets
//! round-robin a list of specs across their cells exactly like
//! [`crate::PolicySpec`], so one fleet can run a mixed-predictor
//! population — the substrate of the predictor tournament
//! ([`crate::tournament`]).

use crate::FleetError;
use stayaway_core::{ControllerConfig, PredictorKind};

/// Declarative choice of prediction plane for Stay-Away cells.
///
/// Baseline policies carry no predictor; their cells report the
/// [`PredictorSpec::NONE`] marker instead of a predictor name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PredictorSpec {
    kind: PredictorKind,
}

impl PredictorSpec {
    /// The marker non-predictive (baseline) cells report in place of a
    /// predictor name.
    pub const NONE: &'static str = "-";

    /// Wraps a concrete predictor kind.
    pub fn new(kind: PredictorKind) -> Self {
        PredictorSpec { kind }
    }

    /// Every selectable predictor, in canonical (tournament) order.
    pub fn all() -> Vec<Self> {
        PredictorKind::ALL.into_iter().map(Self::new).collect()
    }

    /// The wrapped kind.
    pub fn kind(self) -> PredictorKind {
        self.kind
    }

    /// The canonical CLI token (`kde`, `xapp`, `denoise`, `last-tick`).
    pub fn name(self) -> &'static str {
        self.kind.name()
    }

    /// Parses one CLI predictor token (see [`PredictorKind::parse`] for
    /// the accepted aliases).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] for an unknown token.
    pub fn parse(token: &str) -> Result<Self, FleetError> {
        PredictorKind::parse(token)
            .map(Self::new)
            .map_err(|e| FleetError::InvalidConfig {
                reason: e.to_string(),
            })
    }

    /// Parses a comma-separated list of predictor tokens (for
    /// mixed-predictor fleets and tournaments).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] for an empty list or any
    /// unknown token.
    pub fn parse_list(tokens: &str) -> Result<Vec<Self>, FleetError> {
        let specs: Vec<Self> = tokens
            .split(',')
            .filter(|t| !t.trim().is_empty())
            .map(Self::parse)
            .collect::<Result<_, _>>()?;
        if specs.is_empty() {
            return Err(FleetError::InvalidConfig {
                reason: "predictor list must not be empty".into(),
            });
        }
        Ok(specs)
    }

    /// Returns `config` with this predictor selected.
    pub fn apply(self, config: &ControllerConfig) -> ControllerConfig {
        ControllerConfig {
            predictor: self.kind,
            ..config.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_canonical_names_and_aliases() {
        for spec in PredictorSpec::all() {
            assert_eq!(PredictorSpec::parse(spec.name()).unwrap(), spec);
        }
        assert_eq!(
            PredictorSpec::parse("trajectory").unwrap().kind(),
            PredictorKind::Kde
        );
        assert_eq!(
            PredictorSpec::parse("alioth").unwrap().kind(),
            PredictorKind::Denoise
        );
        assert!(PredictorSpec::parse("bogus").is_err());
    }

    #[test]
    fn parse_list_splits_on_commas() {
        let specs = PredictorSpec::parse_list("kde, xapp,last-tick").unwrap();
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].name(), "kde");
        assert_eq!(specs[2].name(), "last-tick");
        assert!(PredictorSpec::parse_list("").is_err());
        assert!(PredictorSpec::parse_list("kde,bogus").is_err());
    }

    #[test]
    fn default_is_the_papers_kde_plane() {
        assert_eq!(PredictorSpec::default().kind(), PredictorKind::Kde);
    }

    #[test]
    fn apply_selects_the_predictor() {
        let base = ControllerConfig::default();
        let applied = PredictorSpec::parse("denoise").unwrap().apply(&base);
        assert_eq!(applied.predictor, PredictorKind::Denoise);
        assert_eq!(applied.seed, base.seed);
    }
}
