//! One fleet cell: a harness + controller closed loop on "one host".

use crate::seed::derive_cell_seed;
use crate::FleetError;
use stayaway_core::{Controller, ControllerConfig, ControllerEvent, ControllerStats};
use stayaway_sim::scenario::Scenario;
use stayaway_sim::RunOutcome;
use stayaway_statespace::Template;

/// The immutable plan for one cell, fixed before any worker starts.
#[derive(Debug, Clone)]
pub struct CellPlan {
    /// Fleet-wide cell index.
    pub idx: usize,
    /// Seed derived from `(fleet_seed, idx)`.
    pub seed: u64,
    /// Scenario prototype this cell runs.
    pub scenario: Scenario,
}

impl CellPlan {
    /// Builds the plan of cell `idx` under `fleet_seed`.
    pub fn new(idx: usize, fleet_seed: u64, scenario: Scenario) -> Self {
        CellPlan {
            idx,
            seed: derive_cell_seed(fleet_seed, idx as u64),
            scenario,
        }
    }

    /// The sensitive-workload key templates are registered under: the
    /// `<sensitive>` half of the scenario's `<sensitive>+<batch>` name.
    pub fn sensitive_key(&self) -> &str {
        let name = self.scenario.name();
        name.split('+').next().unwrap_or(name)
    }
}

/// Everything one finished cell reports back to the fleet.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Fleet-wide cell index.
    pub idx: usize,
    /// Scenario name the cell ran.
    pub scenario: String,
    /// Sensitive-workload registry key.
    pub sensitive: String,
    /// The cell's derived seed.
    pub seed: u64,
    /// Closed-loop run result.
    pub run: RunOutcome,
    /// Controller statistics at the end of the run.
    pub stats: ControllerStats,
    /// CPU capacity of the cell's host, for utilisation rollups.
    pub cpu_capacity: f64,
    /// True when the cell warm-started from a registry template.
    pub imported_template: bool,
    /// The template the cell learned (exported at end of run).
    pub template: Template,
    /// Tick of the controller's first throttle, or `u64::MAX` if it never
    /// throttled.
    pub first_throttle_tick: u64,
    /// True when the first throttle was proactive (prediction- or
    /// template-driven, not a reaction to an observed violation).
    pub first_throttle_proactive: bool,
}

/// Runs one cell to completion: build the harness from the scenario
/// prototype, inject the per-cell seed, optionally import a registry
/// template, drive the closed loop, and export the learned template.
///
/// # Errors
///
/// Propagates harness construction, controller construction and template
/// import/export failures.
pub fn run_cell(
    plan: &CellPlan,
    controller: &ControllerConfig,
    import: Option<&Template>,
    ticks: u64,
) -> Result<CellOutcome, FleetError> {
    let mut harness = plan.scenario.build_harness()?;
    harness.reseed(plan.seed);
    let config = ControllerConfig {
        seed: plan.seed,
        ..controller.clone()
    };
    let mut ctl = Controller::for_host(config, harness.host().spec())?;
    if let Some(template) = import {
        ctl.import_template(template)?;
    }
    let run = harness.run(&mut ctl, ticks);
    let template = ctl.export_template(plan.sensitive_key())?;
    let (first_throttle_tick, first_throttle_proactive) = ctl
        .events()
        .iter()
        .find_map(|e| match e {
            ControllerEvent::Throttled {
                tick, proactive, ..
            } => Some((*tick, *proactive)),
            _ => None,
        })
        .unwrap_or((u64::MAX, false));
    Ok(CellOutcome {
        idx: plan.idx,
        scenario: plan.scenario.name().to_string(),
        sensitive: plan.sensitive_key().to_string(),
        seed: plan.seed,
        stats: ctl.stats(),
        cpu_capacity: plan.scenario.host_spec().cpu_cores,
        imported_template: import.is_some(),
        template,
        first_throttle_tick,
        first_throttle_proactive,
        run,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensitive_key_is_the_name_prefix() {
        let plan = CellPlan::new(0, 7, Scenario::vlc_with_cpubomb(7));
        assert_eq!(plan.sensitive_key(), "vlc");
        assert_eq!(plan.seed, derive_cell_seed(7, 0));
    }

    #[test]
    fn run_cell_produces_a_template_and_stats() {
        let plan = CellPlan::new(3, 7, Scenario::vlc_with_cpubomb(7));
        let out = run_cell(&plan, &ControllerConfig::default(), None, 150).unwrap();
        assert_eq!(out.idx, 3);
        assert_eq!(out.scenario, "vlc+cpu-bomb");
        assert_eq!(out.run.timeline.len(), 150);
        assert!(out.stats.periods == 150);
        assert!(!out.template.is_empty());
        assert!(!out.imported_template);
        // CPUBomb forces throttles; the cold first throttle is reactive.
        assert!(out.first_throttle_tick < u64::MAX);
        assert!(!out.first_throttle_proactive);
    }

    #[test]
    fn identical_plans_give_identical_outcomes() {
        let plan = CellPlan::new(1, 9, Scenario::vlc_with_twitter(9));
        let a = run_cell(&plan, &ControllerConfig::default(), None, 120).unwrap();
        let b = run_cell(&plan, &ControllerConfig::default(), None, 120).unwrap();
        assert_eq!(a.run, b.run);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.template, b.template);
    }

    #[test]
    fn importing_a_template_enables_proactive_first_contact() {
        // Learn on one cell, warm-start another of the same sensitive app.
        let teacher = CellPlan::new(0, 11, Scenario::vlc_with_cpubomb(11));
        let learned = run_cell(&teacher, &ControllerConfig::default(), None, 250).unwrap();
        assert!(learned.template.violation_count() > 0);

        let student = CellPlan::new(1, 11, Scenario::vlc_with_soplex(11));
        let warm = run_cell(
            &student,
            &ControllerConfig::default(),
            Some(&learned.template),
            250,
        )
        .unwrap();
        assert!(warm.imported_template);
        assert!(
            warm.first_throttle_proactive,
            "warm cell should throttle proactively on first contact"
        );
    }
}
