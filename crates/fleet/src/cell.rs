//! One fleet cell: an observation source + control-policy closed loop on
//! "one host".

use crate::policy::PolicySpec;
use crate::predictor::PredictorSpec;
use crate::seed::derive_cell_seed;
use crate::source::SourceSpec;
use crate::FleetError;
use stayaway_core::{ControllerConfig, ControllerEvent, ControllerStats, Observability};
use stayaway_obs::{
    attr, EventKind, EventRecord, FlightRecorder, Layer, MetricsRegistry, MetricsSnapshot, Span,
};
use stayaway_sim::scenario::Scenario;
use stayaway_sim::RunOutcome;
use stayaway_statespace::Template;
use stayaway_telemetry::drive;

/// The immutable plan for one cell, fixed before any worker starts.
#[derive(Debug, Clone)]
pub struct CellPlan {
    /// Fleet-wide cell index.
    pub idx: usize,
    /// Seed derived from `(fleet_seed, idx)`.
    pub seed: u64,
    /// Scenario prototype this cell runs.
    pub scenario: Scenario,
    /// The control plane this cell runs.
    pub policy: PolicySpec,
    /// The prediction plane this cell's controller runs (ignored by
    /// baseline policies, which carry no predictor).
    pub predictor: PredictorSpec,
    /// The observation substrate this cell senses through.
    pub source: SourceSpec,
    /// When true, the cell records into its own [`MetricsRegistry`] and
    /// reports the snapshot in [`CellOutcome::metrics`]. Decision-inert.
    pub collect_metrics: bool,
    /// When true, the cell records typed flight-recorder events (scope =
    /// cell index) and reports them in [`CellOutcome::events`].
    /// Decision-inert.
    pub collect_events: bool,
}

impl CellPlan {
    /// Builds the plan of cell `idx` under `fleet_seed`, running `policy`
    /// against the simulator substrate.
    pub fn new(idx: usize, fleet_seed: u64, scenario: Scenario, policy: PolicySpec) -> Self {
        CellPlan {
            idx,
            seed: derive_cell_seed(fleet_seed, idx as u64),
            scenario,
            policy,
            predictor: PredictorSpec::default(),
            source: SourceSpec::Sim,
            collect_metrics: false,
            collect_events: false,
        }
    }

    /// Replaces the observation substrate (builder style).
    pub fn with_source(mut self, source: SourceSpec) -> Self {
        self.source = source;
        self
    }

    /// Replaces the prediction plane (builder style).
    pub fn with_predictor(mut self, predictor: PredictorSpec) -> Self {
        self.predictor = predictor;
        self
    }

    /// The predictor name this cell reports: the canonical token for
    /// predictive policies, [`PredictorSpec::NONE`] for baselines.
    pub fn predictor_label(&self) -> &'static str {
        if self.policy.uses_predictor() {
            self.predictor.name()
        } else {
            PredictorSpec::NONE
        }
    }

    /// Enables or disables per-cell metrics collection (builder style).
    pub fn with_metrics_collection(mut self, collect: bool) -> Self {
        self.collect_metrics = collect;
        self
    }

    /// Enables or disables per-cell flight-recorder event collection
    /// (builder style).
    pub fn with_event_collection(mut self, collect: bool) -> Self {
        self.collect_events = collect;
        self
    }

    /// The sensitive-workload key templates are registered under: the
    /// `<sensitive>` half of the scenario's `<sensitive>+<batch>` name.
    pub fn sensitive_key(&self) -> &str {
        let name = self.scenario.name();
        name.split('+').next().unwrap_or(name)
    }
}

/// Everything one finished cell reports back to the fleet.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Fleet-wide cell index.
    pub idx: usize,
    /// Scenario name the cell ran.
    pub scenario: String,
    /// Sensitive-workload registry key.
    pub sensitive: String,
    /// Canonical name of the policy the cell ran.
    pub policy: String,
    /// Predictor token the cell's controller ran (`kde`, `xapp`,
    /// `denoise`, `last-tick`), or `"-"` for baseline policies.
    pub predictor: String,
    /// Full source token the cell sensed through (`sim`, `trace:<path>`,
    /// `procfs` or `workload:<scenario>`).
    pub source: String,
    /// The cell's derived seed.
    pub seed: u64,
    /// Closed-loop run result.
    pub run: RunOutcome,
    /// Control-policy statistics at the end of the run (all-zero for
    /// baselines that track nothing).
    pub stats: ControllerStats,
    /// CPU capacity of the cell's host, for utilisation rollups.
    pub cpu_capacity: f64,
    /// True when the cell warm-started from a registry template.
    pub imported_template: bool,
    /// The template the cell learned (exported at end of run); `None` when
    /// the cell's policy has no template support.
    pub template: Option<Template>,
    /// Tick of the policy's first throttle, or `u64::MAX` if it never
    /// throttled (or keeps no decision log).
    pub first_throttle_tick: u64,
    /// True when the first throttle was proactive (prediction- or
    /// template-driven, not a reaction to an observed violation).
    pub first_throttle_proactive: bool,
    /// Snapshot of the cell's metrics registry (controller, mapping and
    /// substrate instruments plus the cell runtime span); `None` unless
    /// [`CellPlan::collect_metrics`] was set.
    pub metrics: Option<MetricsSnapshot>,
    /// The cell's flight-recorder event stream (scope = cell index,
    /// already in canonical order); `None` unless
    /// [`CellPlan::collect_events`] was set.
    pub events: Option<Vec<EventRecord>>,
}

/// Runs one cell to completion: build the observation source from the
/// cell's [`SourceSpec`] (the simulator substrate injects the per-cell
/// seed), instantiate the cell's control policy against the source's host
/// spec, optionally import a registry template, drive the closed loop,
/// and export the learned template (when the policy supports one).
///
/// # Errors
///
/// Propagates source construction, policy construction, telemetry and
/// template import/export failures.
pub fn run_cell(
    plan: &CellPlan,
    controller: &ControllerConfig,
    import: Option<&Template>,
    ticks: u64,
) -> Result<CellOutcome, FleetError> {
    let registry = plan.collect_metrics.then(MetricsRegistry::new);
    let recorder = plan
        .collect_events
        .then(|| FlightRecorder::for_scope(plan.idx as u32, format!("cell:{}", plan.idx)));
    let cell_runtime = registry.as_ref().map(|r| {
        Span::new("fleet.cell").with_histogram(r.latency_histogram(
            "stayaway_fleet_cell_runtime_nanos",
            "Wall time of one fleet cell's closed-loop run",
        ))
    });
    let mut source = plan.source.build_instrumented(
        &plan.scenario,
        plan.seed,
        registry.as_ref(),
        recorder.as_ref(),
    )?;
    // Trace cells take the controller's host spec from the trace header
    // (the capacities the recording was made against); cells without one
    // fall back to the scenario prototype's host.
    let host_spec = source
        .meta()
        .host
        .unwrap_or_else(|| *plan.scenario.host_spec());
    let config = ControllerConfig {
        seed: plan.seed,
        predictor: plan.predictor.kind(),
        ..controller.clone()
    };
    let mut obs = match &registry {
        Some(registry) => Observability::enabled(registry.clone()),
        None => Observability::disabled(),
    };
    if let Some(recorder) = &recorder {
        obs = obs.with_recorder(recorder.clone());
    }
    let mut policy = plan.policy.build_observed(&config, &host_spec, obs)?;
    let mut imported_template = false;
    if let Some(template) = import {
        imported_template = policy.import_template(template)?;
        if imported_template {
            if let Some(recorder) = &recorder {
                recorder.record(
                    0,
                    Layer::Fleet,
                    EventKind::TemplateImport,
                    None,
                    vec![
                        attr("states", template.len() as u64),
                        attr("violations", template.violation_count() as u64),
                    ],
                );
            }
        }
    }
    let run = {
        let _guard = cell_runtime.as_ref().map(|span| span.start(0));
        drive(source.as_mut(), policy.as_mut(), ticks)?
    };
    let template = policy.export_template(plan.sensitive_key())?;
    let (first_throttle_tick, first_throttle_proactive) = policy
        .events()
        .and_then(|events| {
            events.iter().find_map(|e| match e {
                ControllerEvent::Throttled {
                    tick, proactive, ..
                } => Some((*tick, *proactive)),
                _ => None,
            })
        })
        .unwrap_or((u64::MAX, false));
    Ok(CellOutcome {
        idx: plan.idx,
        scenario: plan.scenario.name().to_string(),
        sensitive: plan.sensitive_key().to_string(),
        policy: plan.policy.name().to_string(),
        predictor: plan.predictor_label().to_string(),
        source: plan.source.label(),
        seed: plan.seed,
        stats: policy.stats(),
        cpu_capacity: host_spec.cpu_cores,
        imported_template,
        template,
        first_throttle_tick,
        first_throttle_proactive,
        metrics: registry.map(|r| r.snapshot()),
        events: recorder.map(|r| r.events()),
        run,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stayaway_plan(idx: usize, seed: u64, scenario: Scenario) -> CellPlan {
        CellPlan::new(idx, seed, scenario, PolicySpec::StayAway)
    }

    #[test]
    fn sensitive_key_is_the_name_prefix() {
        let plan = stayaway_plan(0, 7, Scenario::vlc_with_cpubomb(7));
        assert_eq!(plan.sensitive_key(), "vlc");
        assert_eq!(plan.seed, derive_cell_seed(7, 0));
    }

    #[test]
    fn run_cell_produces_a_template_and_stats() {
        let plan = stayaway_plan(3, 7, Scenario::vlc_with_cpubomb(7));
        let out = run_cell(&plan, &ControllerConfig::default(), None, 150).unwrap();
        assert_eq!(out.idx, 3);
        assert_eq!(out.scenario, "vlc+cpu-bomb");
        assert_eq!(out.policy, "stay-away");
        assert_eq!(out.run.timeline.len(), 150);
        assert!(out.stats.periods == 150);
        assert!(!out.template.as_ref().unwrap().is_empty());
        assert!(!out.imported_template);
        // CPUBomb forces throttles; the cold first throttle is reactive.
        assert!(out.first_throttle_tick < u64::MAX);
        assert!(!out.first_throttle_proactive);
    }

    #[test]
    fn metrics_collection_reports_a_snapshot_without_changing_the_run() {
        let plan = stayaway_plan(0, 7, Scenario::vlc_with_cpubomb(7));
        let bare = run_cell(&plan, &ControllerConfig::default(), None, 150).unwrap();
        let observed_plan = plan.with_metrics_collection(true);
        let observed = run_cell(&observed_plan, &ControllerConfig::default(), None, 150).unwrap();
        assert!(bare.metrics.is_none());
        let metrics = observed.metrics.as_ref().expect("snapshot collected");
        assert!(!metrics.is_empty());
        assert!(metrics
            .histograms
            .iter()
            .any(|h| h.name == "stayaway_fleet_cell_runtime_nanos" && h.hist.count == 1));
        // Decision-inert: the instrumented run matches the bare run.
        assert_eq!(bare.run, observed.run);
        assert_eq!(bare.stats, observed.stats);
        assert_eq!(bare.template, observed.template);
    }

    #[test]
    fn identical_plans_give_identical_outcomes() {
        let plan = stayaway_plan(1, 9, Scenario::vlc_with_twitter(9));
        let a = run_cell(&plan, &ControllerConfig::default(), None, 120).unwrap();
        let b = run_cell(&plan, &ControllerConfig::default(), None, 120).unwrap();
        assert_eq!(a.run, b.run);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.template, b.template);
    }

    #[test]
    fn importing_a_template_enables_proactive_first_contact() {
        // Learn on one cell, warm-start another of the same sensitive app.
        let teacher = stayaway_plan(0, 11, Scenario::vlc_with_cpubomb(11));
        let learned = run_cell(&teacher, &ControllerConfig::default(), None, 250).unwrap();
        let template = learned.template.unwrap();
        assert!(template.violation_count() > 0);

        let student = stayaway_plan(1, 11, Scenario::vlc_with_soplex(11));
        let warm = run_cell(&student, &ControllerConfig::default(), Some(&template), 250).unwrap();
        assert!(warm.imported_template);
        assert!(
            warm.first_throttle_proactive,
            "warm cell should throttle proactively on first contact"
        );
    }

    #[test]
    fn baseline_cell_runs_without_templates_or_stats() {
        let plan = CellPlan::new(
            0,
            13,
            Scenario::vlc_with_cpubomb(13),
            PolicySpec::Reactive { cooldown: 10 },
        );
        let out = run_cell(&plan, &ControllerConfig::default(), None, 150).unwrap();
        assert_eq!(out.policy, "reactive");
        assert!(out.template.is_none());
        assert_eq!(out.stats, ControllerStats::default());
        // Keeps no decision log → no first-throttle telemetry.
        assert_eq!(out.first_throttle_tick, u64::MAX);
        // A template offered to a non-supporting policy is ignored.
        let teacher = stayaway_plan(1, 13, Scenario::vlc_with_cpubomb(13));
        let learned = run_cell(&teacher, &ControllerConfig::default(), None, 150).unwrap();
        let with_offer = run_cell(
            &plan,
            &ControllerConfig::default(),
            learned.template.as_ref(),
            150,
        )
        .unwrap();
        assert!(!with_offer.imported_template);
        assert_eq!(with_offer.run, out.run);
    }
}
