//! The sharded fleet executor.
//!
//! Cells are distributed over a fixed pool of worker threads via an atomic
//! work counter (work-stealing by index). Determinism is preserved by
//! construction:
//!
//! * cell plans (scenario, seed) are fixed before any worker starts;
//! * cells share nothing mutable while running;
//! * template sharing is **phased**: pioneer cells (the first cell of each
//!   distinct sensitive workload) run first, a barrier publishes their
//!   templates in cell-index order, and only then do follower cells run —
//!   each importing from a registry whose contents no longer change. The
//!   followers' own templates are published after the wave, again in
//!   cell-index order, using the registry's order-independent conflict
//!   resolution;
//! * aggregation folds cell outcomes in cell-index order.
//!
//! The result: [`FleetOutcome`] is a pure function of the configuration,
//! bit-identical for any worker count.

use crate::aggregate::FleetOutcome;
use crate::cell::{run_cell, CellOutcome, CellPlan};
use crate::config::FleetConfig;
use crate::registry::TemplateRegistry;
use crate::FleetError;
use stayaway_statespace::Template;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

/// A configured fleet, ready to run.
#[derive(Debug)]
pub struct Fleet {
    config: FleetConfig,
    registry: Arc<TemplateRegistry>,
}

impl Fleet {
    /// Validates the configuration and prepares a fleet with a fresh,
    /// empty template registry.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] for inconsistent
    /// configurations.
    pub fn new(config: FleetConfig) -> Result<Self, FleetError> {
        Self::with_registry(config, Arc::new(TemplateRegistry::new()))
    }

    /// Like [`Fleet::new`] but starting from an existing registry — e.g.
    /// one deserialised from a previous fleet's
    /// [`TemplateRegistry::to_json`] snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] for inconsistent
    /// configurations.
    pub fn with_registry(
        config: FleetConfig,
        registry: Arc<TemplateRegistry>,
    ) -> Result<Self, FleetError> {
        config.validate()?;
        let mut config = config;
        // The fleet-level budget is authoritative for every cell
        // (documented on `FleetConfig::mapping_workers`); results are
        // bit-identical for any value, so this is a concurrency knob only.
        config.controller.mapping_workers = config.mapping_workers;
        Ok(Fleet { config, registry })
    }

    /// The shared template registry.
    pub fn registry(&self) -> &Arc<TemplateRegistry> {
        &self.registry
    }

    /// The configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Builds the per-cell plans: scenario `i % mix`, policy
    /// `i % policies`, predictor `i % predictors` and source
    /// `i % sources`, reseeded with the derived cell seed.
    fn plans(&self) -> Vec<CellPlan> {
        (0..self.config.cells)
            .map(|idx| {
                let scenario = self.config.scenarios[idx % self.config.scenarios.len()].clone();
                let policy = self.config.policies[idx % self.config.policies.len()].clone();
                let predictor = self.config.predictors[idx % self.config.predictors.len()];
                let source = self.config.sources[idx % self.config.sources.len()].clone();
                CellPlan::new(idx, self.config.fleet_seed, scenario, policy)
                    .with_predictor(predictor)
                    .with_source(source)
                    .with_metrics_collection(self.config.collect_metrics)
                    .with_event_collection(self.config.collect_events)
            })
            .collect()
    }

    /// Runs every cell and aggregates the fleet outcome.
    ///
    /// # Errors
    ///
    /// Propagates the failure of the lowest-indexed failing cell (a
    /// deterministic choice), or [`FleetError::WorkerPanicked`] if a
    /// worker died.
    pub fn run(&self) -> Result<FleetOutcome, FleetError> {
        let plans = self.plans();
        let mut outcomes: Vec<CellOutcome>;
        if self.config.share_templates {
            // Pioneers: the first *template-supporting* cell of each
            // sensitive workload that the registry cannot already serve.
            // Cells whose policy has no template support (baselines) never
            // pioneer and never import; they run in the follower wave.
            let mut served: BTreeSet<String> = plans
                .iter()
                .map(|p| p.sensitive_key())
                .filter(|key| self.registry.contains(key))
                .map(str::to_string)
                .collect();
            let mut pioneer_jobs = Vec::new();
            let mut follower_plans = Vec::new();
            for plan in plans {
                if plan.policy.supports_templates()
                    && served.insert(plan.sensitive_key().to_string())
                {
                    pioneer_jobs.push((plan, None));
                } else {
                    follower_plans.push(plan);
                }
            }
            outcomes = self.run_wave(pioneer_jobs)?;
            // Barrier: publish pioneer knowledge in cell-index order, then
            // freeze the registry for the follower wave.
            for outcome in &outcomes {
                if let Some(template) = &outcome.template {
                    self.registry.publish(template.clone(), outcome.idx);
                }
            }
            let follower_jobs: Vec<(CellPlan, Option<Template>)> = follower_plans
                .into_iter()
                .map(|plan| {
                    let import = if plan.policy.supports_templates() {
                        self.registry
                            .lookup(plan.sensitive_key())
                            .map(|entry| entry.template)
                    } else {
                        None
                    };
                    (plan, import)
                })
                .collect();
            let followers = self.run_wave(follower_jobs)?;
            for outcome in &followers {
                if let Some(template) = &outcome.template {
                    self.registry.publish(template.clone(), outcome.idx);
                }
            }
            outcomes.extend(followers);
        } else {
            let jobs = plans.into_iter().map(|p| (p, None)).collect();
            outcomes = self.run_wave(jobs)?;
        }
        outcomes.sort_by_key(|o| o.idx);
        Ok(FleetOutcome::aggregate(&self.config, &outcomes))
    }

    /// Executes one wave of `(plan, optional import)` jobs over the worker
    /// pool and returns the outcomes sorted by cell index.
    fn run_wave(
        &self,
        jobs: Vec<(CellPlan, Option<Template>)>,
    ) -> Result<Vec<CellOutcome>, FleetError> {
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        let workers = self.config.workers.min(jobs.len());
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Result<CellOutcome, FleetError>)>();
        let controller = &self.config.controller;
        let ticks = self.config.ticks;
        let jobs = &jobs;
        let next = &next;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some((plan, import)) = jobs.get(i) else {
                        break;
                    };
                    let result = run_cell(plan, controller, import.as_ref(), ticks);
                    if tx.send((i, result)).is_err() {
                        break;
                    }
                });
            }
        });
        drop(tx);
        let mut slots: Vec<Option<Result<CellOutcome, FleetError>>> =
            (0..jobs.len()).map(|_| None).collect();
        for (i, result) in rx {
            slots[i] = Some(result);
        }
        // Resolve deterministically: report the lowest-indexed failure.
        let mut outcomes = Vec::with_capacity(jobs.len());
        for (i, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(Ok(outcome)) => outcomes.push(outcome),
                Some(Err(e)) => return Err(e),
                None => {
                    return Err(FleetError::WorkerPanicked {
                        cell: jobs[i].0.idx,
                    })
                }
            }
        }
        outcomes.sort_by_key(|o| o.idx);
        Ok(outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicySpec;

    fn small_config(workers: usize, share: bool) -> FleetConfig {
        let mut config = FleetConfig::new(6, workers, 21);
        config.ticks = 90;
        config.share_templates = share;
        config
    }

    #[test]
    fn plans_round_robin_scenarios_and_derive_seeds() {
        let fleet = Fleet::new(small_config(2, false)).unwrap();
        let plans = fleet.plans();
        assert_eq!(plans.len(), 6);
        assert_eq!(plans[0].scenario.name(), plans[4].scenario.name());
        assert_ne!(plans[0].seed, plans[4].seed);
        assert_eq!(plans[1].idx, 1);
    }

    #[test]
    fn run_covers_every_cell() {
        let outcome = Fleet::new(small_config(3, false)).unwrap().run().unwrap();
        assert_eq!(outcome.per_cell.len(), 6);
        for (i, cell) in outcome.per_cell.iter().enumerate() {
            assert_eq!(cell.cell, i);
        }
        assert_eq!(outcome.cells_imported, 0);
    }

    #[test]
    fn sharing_populates_registry_and_warm_starts_followers() {
        let fleet = Fleet::new(small_config(2, true)).unwrap();
        let outcome = fleet.run().unwrap();
        // 4 distinct sensitive keys... vlc appears 3×, webservice-mix 1×:
        // 2 pioneers (vlc, webservice-mix), so 4 of 6 cells import.
        assert_eq!(fleet.registry().len(), 2);
        assert_eq!(outcome.cells_imported, 4);
        let imported = outcome
            .per_cell
            .iter()
            .filter(|c| c.imported_template)
            .count();
        assert_eq!(imported, 4);
    }

    #[test]
    fn pre_seeded_registry_means_no_pioneers() {
        // Run one sharing fleet, snapshot its registry, and feed it to a
        // second fleet: now every cell can import.
        let first = Fleet::new(small_config(2, true)).unwrap();
        first.run().unwrap();
        let json = first.registry().to_json().unwrap();
        let registry = Arc::new(TemplateRegistry::from_json(&json).unwrap());
        let second = Fleet::with_registry(small_config(2, true), registry).unwrap();
        let outcome = second.run().unwrap();
        assert_eq!(outcome.cells_imported, 6);
    }

    #[test]
    fn invalid_config_is_rejected_at_construction() {
        let mut config = small_config(1, false);
        config.cells = 0;
        assert!(Fleet::new(config).is_err());
    }

    #[test]
    fn mixed_policy_fleet_is_deterministic_and_rolls_up_per_policy() {
        let run = |workers| {
            let mut config = small_config(workers, true);
            config.policies = vec![PolicySpec::StayAway, PolicySpec::Reactive { cooldown: 10 }];
            Fleet::new(config).unwrap().run().unwrap()
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a, b);
        assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());
        // Cells alternate policies; both appear in the per-cell summaries
        // and the per-policy rollups cover every cell exactly once.
        assert_eq!(a.per_cell[0].policy, "stay-away");
        assert_eq!(a.per_cell[1].policy, "reactive");
        assert_eq!(a.per_policy.len(), 2);
        assert_eq!(a.per_policy.iter().map(|r| r.cells).sum::<usize>(), 6);
        // Baselines never predict; only the stay-away rollup has checks.
        let reactive = a
            .per_policy
            .iter()
            .find(|r| r.policy == "reactive")
            .unwrap();
        assert_eq!(reactive.prediction_checks, 0);
        assert_eq!(reactive.prediction_accuracy(), None);
    }

    #[test]
    fn metrics_rollup_is_byte_identical_across_worker_counts() {
        let run = |workers| {
            let mut config = small_config(workers, false);
            config.collect_metrics = true;
            Fleet::new(config).unwrap().run().unwrap()
        };
        let a = run(1);
        let b = run(4);
        let metrics = a.metrics.as_ref().expect("metrics collected");
        // The rollup carries controller counters summed across cells...
        let periods = metrics
            .counters
            .iter()
            .find(|c| c.name == "stayaway_controller_periods_total")
            .expect("periods counter in rollup");
        assert_eq!(periods.value, 6 * 90);
        // ...and the per-stage latency histograms reduced to counts.
        let sense = metrics
            .histograms
            .iter()
            .find(|h| h.name == "stayaway_controller_sense_latency_nanos")
            .expect("sense latency in rollup");
        assert_eq!(sense.hist.count, 6 * 90);
        assert_eq!(sense.hist.sum, 0, "stable view strips recorded nanos");
        assert_eq!(a, b);
        assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());
    }

    #[test]
    fn collecting_metrics_is_decision_inert() {
        let run = |collect| {
            let mut config = small_config(2, true);
            config.collect_metrics = collect;
            Fleet::new(config).unwrap().run().unwrap()
        };
        let bare = run(false);
        let observed = run(true);
        assert!(bare.metrics.is_none());
        assert!(observed.metrics.is_some());
        // Everything except the metrics rollup is bit-for-bit identical.
        let stripped = FleetOutcome {
            metrics: None,
            ..observed
        };
        assert_eq!(bare, stripped);
    }

    #[test]
    fn baseline_cells_never_pioneer_or_import() {
        let mut config = small_config(2, true);
        config.policies = vec![PolicySpec::Reactive { cooldown: 10 }];
        let fleet = Fleet::new(config).unwrap();
        let outcome = fleet.run().unwrap();
        assert_eq!(fleet.registry().len(), 0);
        assert_eq!(outcome.cells_imported, 0);
    }
}
