//! Observation-source selection: which telemetry substrate a fleet cell
//! (or a CLI run) senses through.
//!
//! A [`SourceSpec`] is the declarative, clonable description of an
//! observation substrate; [`SourceSpec::build`] instantiates it as a boxed
//! [`ObservationSource`]. It mirrors [`crate::PolicySpec`]: fleets
//! round-robin a list of specs across their cells, so one fleet can mix
//! live simulation cells with trace-replay cells in a single deterministic
//! run.

use crate::FleetError;
use stayaway_obs::{FlightRecorder, MetricsRegistry};
use stayaway_sim::scenario::Scenario;
use stayaway_sim::SimSource;
use stayaway_telemetry::{ObservationSource, ProcfsSource, TraceSource};

/// Declarative choice of observation substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceSpec {
    /// The deterministic simulator ([`SimSource`] over the cell's
    /// scenario) — the default, and the only substrate that actuates
    /// pause/resume actions.
    Sim,
    /// Replay of a recorded JSONL trace ([`TraceSource`]); actions are
    /// accepted but have no effect, exactly as during recording.
    Trace {
        /// Path to the `stayaway-trace` JSONL file.
        path: String,
    },
    /// Best-effort live sampling of the local `/proc` and cgroup-v2 files
    /// ([`ProcfsSource`]); only available on hosts that expose them.
    Procfs,
    /// The request-driven multi-tenant workload engine
    /// ([`stayaway_workload::WorkloadSource`]) running a named scenario
    /// from the workload library; actuates pause/resume as tenant
    /// freezes.
    Workload {
        /// Name of a scenario in [`stayaway_workload::library`].
        scenario: String,
    },
}

impl SourceSpec {
    /// The canonical source name, matching
    /// [`stayaway_telemetry::SourceKind`]'s display form.
    pub fn name(&self) -> &'static str {
        match self {
            SourceSpec::Sim => "sim",
            SourceSpec::Trace { .. } => "trace",
            SourceSpec::Procfs => "procfs",
            SourceSpec::Workload { .. } => "workload",
        }
    }

    /// The full CLI token, including any argument — `sim`,
    /// `trace:<path>`, `procfs` or `workload:<scenario>`.
    pub fn label(&self) -> String {
        match self {
            SourceSpec::Trace { path } => format!("trace:{path}"),
            SourceSpec::Workload { scenario } => format!("workload:{scenario}"),
            other => other.name().to_string(),
        }
    }

    /// Parses a CLI source token: `sim`, `trace:<path>` or `procfs`.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] for an unknown token or a
    /// `trace:` token with an empty path.
    pub fn parse(token: &str) -> Result<Self, FleetError> {
        let token = token.trim();
        if let Some(path) = token.strip_prefix("trace:") {
            let spec = SourceSpec::Trace {
                path: path.trim().to_string(),
            };
            spec.validate()?;
            return Ok(spec);
        }
        if let Some(scenario) = token.strip_prefix("workload:") {
            let spec = SourceSpec::Workload {
                scenario: scenario.trim().to_string(),
            };
            spec.validate()?;
            return Ok(spec);
        }
        match token.to_ascii_lowercase().as_str() {
            "sim" => Ok(SourceSpec::Sim),
            "procfs" => Ok(SourceSpec::Procfs),
            other => Err(FleetError::InvalidConfig {
                reason: format!(
                    "unknown source '{other}' (expected sim|trace:<path>|procfs|workload:<scenario>)"
                ),
            }),
        }
    }

    /// Parses a comma-separated list of source tokens (for mixed fleets).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] for an empty list or any
    /// unknown token.
    pub fn parse_list(tokens: &str) -> Result<Vec<Self>, FleetError> {
        let specs: Vec<Self> = tokens
            .split(',')
            .filter(|t| !t.trim().is_empty())
            .map(Self::parse)
            .collect::<Result<_, _>>()?;
        if specs.is_empty() {
            return Err(FleetError::InvalidConfig {
                reason: "source list must not be empty".into(),
            });
        }
        Ok(specs)
    }

    /// Validates the spec's parameters (so fleet configuration errors
    /// surface before any cell starts).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] describing the problem.
    pub fn validate(&self) -> Result<(), FleetError> {
        match self {
            SourceSpec::Trace { path } if path.trim().is_empty() => {
                Err(FleetError::InvalidConfig {
                    reason: "trace source requires a non-empty path (trace:<path>)".into(),
                })
            }
            SourceSpec::Workload { scenario } => {
                stayaway_workload::by_name(scenario).map_err(|e| FleetError::InvalidConfig {
                    reason: e.to_string(),
                })?;
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Instantiates the observation substrate for one cell. `scenario`
    /// and `seed` are only consulted by [`SourceSpec::Sim`] (the harness
    /// is built from the scenario prototype and reseeded per cell); a
    /// trace replays exactly what was recorded and procfs samples the
    /// live host.
    ///
    /// # Errors
    ///
    /// Propagates harness construction, trace-open and procfs-probe
    /// failures.
    pub fn build(
        &self,
        scenario: &Scenario,
        seed: u64,
    ) -> Result<Box<dyn ObservationSource>, FleetError> {
        self.build_observed(scenario, seed, None)
    }

    /// Like [`SourceSpec::build`], additionally registering the
    /// substrate's error counters (trace decode errors, procfs probe
    /// failures) into `registry` when one is given. The simulator has no
    /// failure modes to count and registers nothing.
    ///
    /// # Errors
    ///
    /// Propagates harness construction, trace-open and procfs-probe
    /// failures.
    pub fn build_observed(
        &self,
        scenario: &Scenario,
        seed: u64,
        registry: Option<&MetricsRegistry>,
    ) -> Result<Box<dyn ObservationSource>, FleetError> {
        self.build_instrumented(scenario, seed, registry, None)
    }

    /// Like [`SourceSpec::build_observed`], additionally attaching a
    /// [`FlightRecorder`] to substrates that emit workload-layer events
    /// (currently the workload engine's SLO violations). Substrates
    /// without an event surface ignore the recorder.
    ///
    /// # Errors
    ///
    /// Propagates harness construction, trace-open and procfs-probe
    /// failures.
    pub fn build_instrumented(
        &self,
        scenario: &Scenario,
        seed: u64,
        registry: Option<&MetricsRegistry>,
        recorder: Option<&FlightRecorder>,
    ) -> Result<Box<dyn ObservationSource>, FleetError> {
        Ok(match self {
            SourceSpec::Sim => {
                let mut harness = scenario.build_harness()?;
                harness.reseed(seed);
                Box::new(SimSource::new(harness))
            }
            SourceSpec::Trace { path } => {
                let source = TraceSource::open(path)?;
                Box::new(match registry {
                    Some(registry) => source.with_metrics(registry),
                    None => source,
                })
            }
            SourceSpec::Procfs => {
                let source = ProcfsSource::probe().ok_or_else(|| FleetError::InvalidConfig {
                    reason: "procfs source unavailable: this host exposes no /proc/stat".into(),
                })?;
                Box::new(match registry {
                    Some(registry) => source.with_metrics(registry),
                    None => source,
                })
            }
            SourceSpec::Workload { scenario } => {
                let spec = stayaway_workload::by_name(scenario).map_err(|e| {
                    FleetError::InvalidConfig {
                        reason: e.to_string(),
                    }
                })?;
                let mut source =
                    stayaway_workload::WorkloadSource::new(spec, seed).map_err(|e| {
                        FleetError::InvalidConfig {
                            reason: e.to_string(),
                        }
                    })?;
                if let Some(registry) = registry {
                    source = source.with_metrics(registry);
                }
                if let Some(recorder) = recorder {
                    source = source.with_recorder(recorder.clone());
                }
                Box::new(source)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stayaway_telemetry::SourceKind;

    #[test]
    fn parse_accepts_the_three_substrates() {
        assert_eq!(SourceSpec::parse("sim").unwrap(), SourceSpec::Sim);
        assert_eq!(SourceSpec::parse("SIM").unwrap(), SourceSpec::Sim);
        assert_eq!(SourceSpec::parse("procfs").unwrap(), SourceSpec::Procfs);
        assert_eq!(
            SourceSpec::parse("trace:/tmp/t.jsonl").unwrap(),
            SourceSpec::Trace {
                path: "/tmp/t.jsonl".into()
            }
        );
        assert!(SourceSpec::parse("trace:").is_err());
        assert!(SourceSpec::parse("bogus").is_err());
    }

    #[test]
    fn parse_list_splits_on_commas() {
        let specs = SourceSpec::parse_list("sim, trace:/tmp/t.jsonl").unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].name(), "sim");
        assert_eq!(specs[1].name(), "trace");
        assert!(SourceSpec::parse_list("").is_err());
        assert!(SourceSpec::parse_list("sim,bogus").is_err());
    }

    #[test]
    fn build_sim_produces_a_driveable_source() {
        let scenario = Scenario::vlc_with_cpubomb(5);
        let mut source = SourceSpec::Sim.build(&scenario, 5).unwrap();
        let meta = source.meta();
        assert_eq!(meta.kind, SourceKind::Sim);
        assert!(meta.host.is_some());
        assert!(source.next_observation().unwrap().is_some());
    }

    #[test]
    fn build_missing_trace_fails() {
        let scenario = Scenario::vlc_with_cpubomb(5);
        let spec = SourceSpec::Trace {
            path: "/nonexistent/trace.jsonl".into(),
        };
        assert!(spec.build(&scenario, 5).is_err());
    }

    #[test]
    fn validate_rejects_empty_trace_path() {
        assert!(SourceSpec::Trace { path: "  ".into() }.validate().is_err());
        assert!(SourceSpec::Sim.validate().is_ok());
        assert!(SourceSpec::Procfs.validate().is_ok());
    }

    #[test]
    fn parse_accepts_workload_scenarios() {
        let spec = SourceSpec::parse("workload:cpu-bomb").unwrap();
        assert_eq!(
            spec,
            SourceSpec::Workload {
                scenario: "cpu-bomb".into()
            }
        );
        assert_eq!(spec.name(), "workload");
        assert_eq!(spec.label(), "workload:cpu-bomb");
        // Unknown scenarios are rejected at parse time, not at cell start.
        assert!(SourceSpec::parse("workload:warp-core").is_err());
        assert!(SourceSpec::parse("workload:").is_err());
    }

    #[test]
    fn build_workload_produces_a_driveable_source() {
        let scenario = Scenario::vlc_with_cpubomb(5);
        let spec = SourceSpec::Workload {
            scenario: "memcached-like".into(),
        };
        let mut source = spec.build(&scenario, 5).unwrap();
        let meta = source.meta();
        assert_eq!(meta.kind, SourceKind::Workload);
        assert!(meta.host.is_some());
        assert!(source.next_observation().unwrap().is_some());
    }
}
