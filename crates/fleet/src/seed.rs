//! Deterministic per-cell seed derivation.
//!
//! Every cell's randomness — the harness's monitoring noise and the
//! controller's prediction sampling / optimistic resumes — must be (a)
//! decorrelated across cells, and (b) a pure function of
//! `(fleet_seed, cell_idx)` so results are bit-identical no matter which
//! worker runs which cell, or in what order.

/// One round of the splitmix64 output mix (Steele, Lea & Flood 2014) —
/// a bijective avalanche over `u64`.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the seed of cell `cell_idx` from the fleet seed.
///
/// Two mixing rounds with the index folded in between keep nearby fleet
/// seeds and nearby cell indices statistically unrelated: cell 0 of fleet 1
/// shares nothing with cell 1 of fleet 0.
pub fn derive_cell_seed(fleet_seed: u64, cell_idx: u64) -> u64 {
    splitmix64(splitmix64(fleet_seed) ^ cell_idx.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn derivation_is_a_pure_function() {
        assert_eq!(derive_cell_seed(7, 3), derive_cell_seed(7, 3));
        assert_ne!(derive_cell_seed(7, 3), derive_cell_seed(7, 4));
        assert_ne!(derive_cell_seed(7, 3), derive_cell_seed(8, 3));
    }

    #[test]
    fn seeds_are_distinct_across_a_large_fleet() {
        let seeds: BTreeSet<u64> = (0..4096).map(|i| derive_cell_seed(42, i)).collect();
        assert_eq!(seeds.len(), 4096);
    }

    #[test]
    fn diagonal_collisions_are_avoided() {
        // (fleet_seed + 1, cell_idx) must not collide with
        // (fleet_seed, cell_idx + 1) — the classic additive-derivation bug.
        let a: BTreeSet<u64> = (0..512).map(|i| derive_cell_seed(1, i)).collect();
        let b: BTreeSet<u64> = (0..512).map(|i| derive_cell_seed(0, i + 1)).collect();
        assert!(a.intersection(&b).next().is_none());
    }
}
