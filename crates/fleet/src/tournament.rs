//! The fleet-wide predictor tournament (DESIGN.md §15).
//!
//! A tournament sweeps every configured prediction plane over every named
//! workload scenario — the full predictor × scenario cross-product, with
//! `cells_per_combo` independently seeded cells per combination — inside
//! **one** deterministic fleet run, then ranks the predictors on the
//! fleet's per-cell summaries:
//!
//! 1. sensitive QoS satisfaction (higher is better),
//! 2. tick-level SLO-violation rate (lower is better),
//! 3. batch progress (higher is better),
//! 4. predictor name (a total, deterministic tie-break).
//!
//! Each ranking metric carries a percentile-bootstrap confidence interval
//! resampled from the per-cell values with a seeded RNG, so the intervals
//! — like everything else in [`TournamentOutcome::to_json`] — are
//! byte-identical for any worker count. Decision latency is measured by a
//! separate per-predictor calibration micro-run and reported **outside**
//! the JSON (wall-clock time is not deterministic); it informs, but never
//! decides, the ranking.

use crate::aggregate::{CellSummary, PredictorRollup};
use crate::config::FleetConfig;
use crate::predictor::PredictorSpec;
use crate::runner::Fleet;
use crate::seed::derive_cell_seed;
use crate::source::SourceSpec;
use crate::FleetError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use serde_json::Value;
use stayaway_core::{Controller, ControllerConfig, Observability};
use stayaway_obs::{MetricsRegistry, MetricsSnapshot};
use stayaway_sim::scenario::Scenario;

/// Seed-space tag separating tournament bootstrap streams from every
/// other derived seed in the fleet (cells, jobs).
const BOOTSTRAP_STREAM_TAG: u64 = 0xb001_57a9;

/// Ticks of the per-predictor decision-latency calibration micro-run.
const CALIBRATION_TICKS: u64 = 96;

/// Configuration of one predictor tournament.
#[derive(Debug, Clone)]
pub struct TournamentConfig {
    /// Prediction planes entering the tournament; must be non-empty.
    pub predictors: Vec<PredictorSpec>,
    /// Named workload scenarios (see [`stayaway_workload::library`]) the
    /// predictors are swept over; must be non-empty.
    pub scenarios: Vec<String>,
    /// Independently seeded cells per predictor × scenario combination.
    pub cells_per_combo: usize,
    /// Closed-loop ticks per cell.
    pub ticks: u64,
    /// Root seed of the tournament (cell seeds and bootstrap resampling
    /// streams all derive from it).
    pub seed: u64,
    /// Worker threads executing cells. Results are independent of this
    /// value; it only bounds parallelism.
    pub workers: usize,
    /// Bootstrap resamples behind each confidence interval.
    pub bootstrap_resamples: usize,
    /// When true, a per-predictor calibration micro-run measures mean
    /// forecast latency (reported text-only; never serialised, never
    /// ranked on). Off by default in tests, on in the CLI.
    pub calibrate_latency: bool,
    /// When true, every underlying fleet cell records into its own
    /// metrics registry and the outcome carries the deterministic
    /// fixed-order rollup (DESIGN.md §11). Decision-inert: standings are
    /// identical either way.
    pub collect_metrics: bool,
    /// Controller tunables shared by every cell (per-cell seed and
    /// predictor are overridden by the plan).
    pub controller: ControllerConfig,
}

impl TournamentConfig {
    /// The default tournament: all four predictors over the cpu-bomb,
    /// memory-bomb and flash-crowd workloads, three cells per
    /// combination, 256 ticks, without latency calibration.
    pub fn new(seed: u64) -> Self {
        TournamentConfig {
            predictors: PredictorSpec::all(),
            scenarios: vec![
                "cpu-bomb".into(),
                "memory-bomb".into(),
                "flash-crowd".into(),
            ],
            cells_per_combo: 3,
            ticks: 256,
            seed,
            workers: 4,
            bootstrap_resamples: 1000,
            calibrate_latency: false,
            collect_metrics: false,
            controller: ControllerConfig::default(),
        }
    }

    /// Total cells the tournament runs.
    pub fn cells(&self) -> usize {
        self.predictors.len() * self.scenarios.len() * self.cells_per_combo
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] describing the first problem
    /// found.
    pub fn validate(&self) -> Result<(), FleetError> {
        if self.predictors.is_empty() {
            return Err(FleetError::InvalidConfig {
                reason: "tournament needs at least one predictor".into(),
            });
        }
        if self.scenarios.is_empty() {
            return Err(FleetError::InvalidConfig {
                reason: "tournament needs at least one workload scenario".into(),
            });
        }
        for scenario in &self.scenarios {
            SourceSpec::Workload {
                scenario: scenario.clone(),
            }
            .validate()?;
        }
        if self.cells_per_combo == 0 {
            return Err(FleetError::InvalidConfig {
                reason: "cells_per_combo must be positive".into(),
            });
        }
        if self.ticks == 0 {
            return Err(FleetError::InvalidConfig {
                reason: "ticks must be positive".into(),
            });
        }
        if self.workers == 0 {
            return Err(FleetError::InvalidConfig {
                reason: "workers must be positive".into(),
            });
        }
        self.controller.validate().map_err(FleetError::Core)
    }

    /// Lowers the tournament onto a fleet configuration realising the
    /// full predictor × scenario cross-product under the fleet's
    /// unchanged round-robin: with `S` scenario sources, the predictor
    /// list is expanded to length `P·S` where entry `i` is
    /// `predictors[(i / S) % P]` — so over `P·S·R` cells every
    /// combination receives exactly `R` cells, each with its own derived
    /// seed.
    fn fleet_config(&self) -> FleetConfig {
        let s = self.scenarios.len();
        let p = self.predictors.len();
        let expanded: Vec<PredictorSpec> =
            (0..p * s).map(|i| self.predictors[(i / s) % p]).collect();
        let sources: Vec<SourceSpec> = self
            .scenarios
            .iter()
            .map(|scenario| SourceSpec::Workload {
                scenario: scenario.clone(),
            })
            .collect();
        let mut config = FleetConfig::new(self.cells(), self.workers, self.seed);
        config.ticks = self.ticks;
        // The workload sources carry the physics; the scenario prototype
        // only labels cells and is never built.
        config.scenarios = vec![Scenario::vlc_with_cpubomb(self.seed)];
        config.predictors = expanded;
        config.sources = sources;
        config.controller = self.controller.clone();
        config.collect_metrics = self.collect_metrics;
        config
    }
}

/// A mean with its percentile-bootstrap 95% confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeanCi {
    /// Fixed-order sample mean.
    pub mean: f64,
    /// 2.5th percentile of the bootstrap resample means.
    pub lo: f64,
    /// 97.5th percentile of the bootstrap resample means.
    pub hi: f64,
}

impl MeanCi {
    /// Bootstraps the mean of `values` with `resamples` draws from the
    /// given seeded RNG. Degenerate inputs (fewer than two values, zero
    /// resamples) collapse the interval onto the mean.
    pub fn bootstrap(values: &[f64], resamples: usize, rng: &mut StdRng) -> Self {
        if values.is_empty() {
            return MeanCi {
                mean: 0.0,
                lo: 0.0,
                hi: 0.0,
            };
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        if n < 2 || resamples == 0 {
            return MeanCi {
                mean,
                lo: mean,
                hi: mean,
            };
        }
        let mut means = Vec::with_capacity(resamples);
        for _ in 0..resamples {
            let mut sum = 0.0;
            for _ in 0..n {
                sum += values[rng.gen_range(0..n)];
            }
            means.push(sum / n as f64);
        }
        means.sort_by(f64::total_cmp);
        let pick = |q: f64| means[((means.len() - 1) as f64 * q).round() as usize];
        MeanCi {
            mean,
            lo: pick(0.025),
            hi: pick(0.975),
        }
    }
}

/// One predictor's mean performance on one workload scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioScore {
    /// Workload scenario name.
    pub scenario: String,
    /// Cells of this predictor × scenario combination.
    pub cells: usize,
    /// Mean per-cell QoS satisfaction.
    pub satisfaction: f64,
    /// Mean per-cell tick-level SLO-violation rate.
    pub slo_violation_rate: f64,
    /// Mean per-cell nominal batch work.
    pub batch_work: f64,
}

/// One predictor's final tournament standing.
#[derive(Debug, Clone, PartialEq)]
pub struct Standing {
    /// 1-based rank (1 = winner).
    pub rank: usize,
    /// Canonical predictor token.
    pub predictor: String,
    /// Cells this predictor ran across all scenarios.
    pub cells: usize,
    /// Per-cell QoS satisfaction, bootstrapped.
    pub satisfaction: MeanCi,
    /// Per-cell tick-level SLO-violation rate, bootstrapped.
    pub slo_violation_rate: MeanCi,
    /// Per-cell nominal batch work, bootstrapped.
    pub batch_work: MeanCi,
    /// Pooled prediction accuracy; `None` when no verdict was checked.
    pub prediction_accuracy: Option<f64>,
    /// Observation samples sanitised across this predictor's cells.
    pub samples_rejected: u64,
    /// Per-scenario breakdown, in configured scenario order.
    pub per_scenario: Vec<ScenarioScore>,
    /// Mean forecast wall-latency in nanoseconds from the calibration
    /// micro-run; `None` unless calibration ran and forecasts happened.
    /// Informational only: wall-clock time is non-deterministic, so this
    /// never enters [`TournamentOutcome::to_json`] and never ranks.
    pub decide_nanos: Option<f64>,
}

/// The ranked result of one predictor tournament.
#[derive(Debug, Clone, PartialEq)]
pub struct TournamentOutcome {
    /// Predictor tokens entered, in configured order.
    pub predictors: Vec<String>,
    /// Workload scenarios swept, in configured order.
    pub scenarios: Vec<String>,
    /// Cells per predictor × scenario combination.
    pub cells_per_combo: usize,
    /// Total cells run.
    pub cells: usize,
    /// Ticks per cell.
    pub ticks: u64,
    /// The tournament seed.
    pub seed: u64,
    /// Bootstrap resamples behind each confidence interval.
    pub bootstrap_resamples: usize,
    /// Standings, best first.
    pub standings: Vec<Standing>,
    /// The underlying fleet's per-predictor rollups, in order of first
    /// appearance across cells.
    pub per_predictor: Vec<PredictorRollup>,
    /// Tournament-wide metrics rollup: the per-cell registries merged in
    /// cell-index order and reduced to the stable view (latency
    /// histograms — the only wall-clock content — stripped); `None`
    /// unless [`TournamentConfig::collect_metrics`] was set.
    pub metrics: Option<MetricsSnapshot>,
    /// Same-name histograms skipped during the metrics rollup because
    /// their units disagreed; always zero for identically-registered
    /// cells.
    pub metric_unit_mismatches: u64,
}

impl TournamentOutcome {
    /// Renders the outcome as pretty JSON. Deterministic and
    /// byte-identical for any worker count: the projection carries no
    /// worker count and no wall-clock measurement (decision latency is
    /// deliberately excluded).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Registry`] on serialisation failure.
    pub fn to_json(&self) -> Result<String, FleetError> {
        let standings: Vec<Value> = self
            .standings
            .iter()
            .map(|s| {
                serde_json::json!({
                    "rank": s.rank,
                    "predictor": s.predictor,
                    "cells": s.cells,
                    "satisfaction": serde_json::to_value(&s.satisfaction),
                    "slo_violation_rate": serde_json::to_value(&s.slo_violation_rate),
                    "batch_work": serde_json::to_value(&s.batch_work),
                    "prediction_accuracy": s.prediction_accuracy,
                    "samples_rejected": s.samples_rejected,
                    "per_scenario": serde_json::to_value(&s.per_scenario),
                })
            })
            .collect();
        let doc = serde_json::json!({
            "predictors": self.predictors,
            "scenarios": self.scenarios,
            "cells_per_combo": self.cells_per_combo,
            "cells": self.cells,
            "ticks": self.ticks,
            "seed": self.seed,
            "bootstrap_resamples": self.bootstrap_resamples,
            "standings": standings,
            "per_predictor": serde_json::to_value(&self.per_predictor),
            "metrics": serde_json::to_value(&self.metrics),
            "metric_unit_mismatches": self.metric_unit_mismatches,
        });
        serde_json::to_string_pretty(&doc).map_err(|e| FleetError::Registry(e.to_string()))
    }
}

/// Runs the tournament: one deterministic fleet over the full predictor ×
/// scenario cross-product, then ranking with bootstrap confidence
/// intervals (and, when configured, per-predictor latency calibration).
///
/// # Errors
///
/// Returns [`FleetError::InvalidConfig`] for inconsistent configurations
/// and propagates fleet execution failures.
pub fn run_tournament(config: &TournamentConfig) -> Result<TournamentOutcome, FleetError> {
    config.validate()?;
    let fleet_outcome = Fleet::new(config.fleet_config())?.run()?;
    let mut standings: Vec<Standing> = config
        .predictors
        .iter()
        .enumerate()
        .map(|(idx, spec)| {
            let name = spec.name();
            // Per-cell metric vectors in cell-index order — a fixed-order
            // basis for the bootstrap regardless of scheduling.
            let cells: Vec<&CellSummary> = fleet_outcome
                .per_cell
                .iter()
                .filter(|c| c.predictor == name)
                .collect();
            let satisfaction: Vec<f64> = cells.iter().map(|c| c.satisfaction).collect();
            let slo: Vec<f64> = cells
                .iter()
                .map(|c| {
                    if c.active_ticks == 0 {
                        0.0
                    } else {
                        c.violations as f64 / c.active_ticks as f64
                    }
                })
                .collect();
            let batch: Vec<f64> = cells.iter().map(|c| c.batch_work).collect();
            // One seeded stream per predictor, disjoint from cell seeds;
            // the three intervals consume it in fixed order.
            let mut rng = StdRng::seed_from_u64(derive_cell_seed(
                config.seed ^ BOOTSTRAP_STREAM_TAG,
                idx as u64,
            ));
            let rollup = fleet_outcome
                .per_predictor
                .iter()
                .find(|r| r.predictor == name);
            let per_scenario = config
                .scenarios
                .iter()
                .map(|scenario| {
                    let label = format!("workload:{scenario}");
                    let combo: Vec<&&CellSummary> =
                        cells.iter().filter(|c| c.source == label).collect();
                    let n = combo.len().max(1) as f64;
                    ScenarioScore {
                        scenario: scenario.clone(),
                        cells: combo.len(),
                        satisfaction: combo.iter().map(|c| c.satisfaction).sum::<f64>() / n,
                        slo_violation_rate: combo
                            .iter()
                            .map(|c| {
                                if c.active_ticks == 0 {
                                    0.0
                                } else {
                                    c.violations as f64 / c.active_ticks as f64
                                }
                            })
                            .sum::<f64>()
                            / n,
                        batch_work: combo.iter().map(|c| c.batch_work).sum::<f64>() / n,
                    }
                })
                .collect();
            Standing {
                rank: 0, // assigned after sorting
                predictor: name.to_string(),
                cells: cells.len(),
                satisfaction: MeanCi::bootstrap(
                    &satisfaction,
                    config.bootstrap_resamples,
                    &mut rng,
                ),
                slo_violation_rate: MeanCi::bootstrap(&slo, config.bootstrap_resamples, &mut rng),
                batch_work: MeanCi::bootstrap(&batch, config.bootstrap_resamples, &mut rng),
                prediction_accuracy: rollup.and_then(PredictorRollup::prediction_accuracy),
                samples_rejected: rollup.map_or(0, |r| r.samples_rejected),
                per_scenario,
                decide_nanos: config
                    .calibrate_latency
                    .then(|| calibrate_decide_latency(config, *spec))
                    .flatten(),
            }
        })
        .collect();
    standings.sort_by(|a, b| {
        b.satisfaction
            .mean
            .total_cmp(&a.satisfaction.mean)
            .then(
                a.slo_violation_rate
                    .mean
                    .total_cmp(&b.slo_violation_rate.mean),
            )
            .then(b.batch_work.mean.total_cmp(&a.batch_work.mean))
            .then(a.predictor.cmp(&b.predictor))
    });
    for (i, standing) in standings.iter_mut().enumerate() {
        standing.rank = i + 1;
    }
    Ok(TournamentOutcome {
        predictors: config
            .predictors
            .iter()
            .map(|p| p.name().to_string())
            .collect(),
        scenarios: config.scenarios.clone(),
        cells_per_combo: config.cells_per_combo,
        cells: config.cells(),
        ticks: config.ticks,
        seed: config.seed,
        bootstrap_resamples: config.bootstrap_resamples,
        standings,
        per_predictor: fleet_outcome.per_predictor,
        metrics: fleet_outcome.metrics,
        metric_unit_mismatches: fleet_outcome.metric_unit_mismatches,
    })
}

/// Measures one predictor's mean forecast wall-latency with a short
/// instrumented controller run (the `stayaway_predict_forecast_latency_nanos`
/// histogram). Wall-clock and therefore non-deterministic — the result is
/// reported text-only and never serialised.
fn calibrate_decide_latency(config: &TournamentConfig, spec: PredictorSpec) -> Option<f64> {
    let scenario = Scenario::vlc_with_twitter(config.seed);
    let mut harness = scenario.build_harness().ok()?;
    let registry = MetricsRegistry::new();
    let controller_config = ControllerConfig {
        seed: config.seed,
        ..spec.apply(&config.controller)
    };
    let mut controller = Controller::for_host_observed(
        controller_config,
        harness.host().spec(),
        Observability::enabled(registry.clone()).with_deep(false),
    )
    .ok()?;
    harness.run(&mut controller, CALIBRATION_TICKS);
    let snapshot = registry.snapshot();
    let hist = snapshot
        .histograms
        .iter()
        .find(|h| h.name == "stayaway_predict_forecast_latency_nanos")?;
    if hist.hist.count == 0 {
        return None;
    }
    Some(hist.hist.sum as f64 / hist.hist.count as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> TournamentConfig {
        let mut config = TournamentConfig::new(11);
        config.scenarios = vec!["cpu-bomb".into(), "memcached-like".into()];
        config.cells_per_combo = 1;
        config.ticks = 48;
        config.bootstrap_resamples = 64;
        config
    }

    #[test]
    fn default_config_is_valid_and_covers_the_cross_product() {
        let config = TournamentConfig::new(7);
        config.validate().unwrap();
        assert_eq!(config.cells(), 4 * 3 * 3);
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        for broken in [
            TournamentConfig {
                predictors: Vec::new(),
                ..TournamentConfig::new(1)
            },
            TournamentConfig {
                scenarios: Vec::new(),
                ..TournamentConfig::new(1)
            },
            TournamentConfig {
                scenarios: vec!["warp-core".into()],
                ..TournamentConfig::new(1)
            },
            TournamentConfig {
                cells_per_combo: 0,
                ..TournamentConfig::new(1)
            },
            TournamentConfig {
                ticks: 0,
                ..TournamentConfig::new(1)
            },
            TournamentConfig {
                workers: 0,
                ..TournamentConfig::new(1)
            },
        ] {
            assert!(broken.validate().is_err());
        }
    }

    #[test]
    fn cross_product_assigns_every_combo_the_same_cell_count() {
        let config = tiny_config();
        let outcome = run_tournament(&config).unwrap();
        assert_eq!(outcome.standings.len(), 4);
        for standing in &outcome.standings {
            assert_eq!(standing.cells, config.scenarios.len());
            assert_eq!(standing.per_scenario.len(), 2);
            for score in &standing.per_scenario {
                assert_eq!(score.cells, 1, "{}", standing.predictor);
            }
        }
    }

    #[test]
    fn ranks_are_dense_and_ordered_by_the_ranking_key() {
        let outcome = run_tournament(&tiny_config()).unwrap();
        for (i, s) in outcome.standings.iter().enumerate() {
            assert_eq!(s.rank, i + 1);
            assert!(s.satisfaction.lo <= s.satisfaction.mean + 1e-12);
            assert!(s.satisfaction.hi >= s.satisfaction.mean - 1e-12);
        }
        for pair in outcome.standings.windows(2) {
            assert!(
                pair[0].satisfaction.mean >= pair[1].satisfaction.mean
                    || (pair[0].satisfaction.mean == pair[1].satisfaction.mean),
                "standings must be sorted by satisfaction first"
            );
        }
    }

    #[test]
    fn bootstrap_is_deterministic_for_a_fixed_seed() {
        let values = [0.9, 0.8, 0.95, 0.7, 0.85];
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let ci_a = MeanCi::bootstrap(&values, 500, &mut a);
        let ci_b = MeanCi::bootstrap(&values, 500, &mut b);
        assert_eq!(ci_a, ci_b);
        assert!(ci_a.lo <= ci_a.mean && ci_a.mean <= ci_a.hi);
        // Degenerate inputs collapse onto the mean.
        let mut rng = StdRng::seed_from_u64(1);
        let single = MeanCi::bootstrap(&[0.5], 100, &mut rng);
        assert_eq!((single.lo, single.hi), (single.mean, single.mean));
        let empty = MeanCi::bootstrap(&[], 100, &mut rng);
        assert_eq!(empty.mean, 0.0);
    }

    #[test]
    fn metrics_collection_is_decision_inert_and_carried() {
        let bare = run_tournament(&tiny_config()).unwrap();
        let mut config = tiny_config();
        config.collect_metrics = true;
        let observed = run_tournament(&config).unwrap();
        let snapshot = observed.metrics.as_ref().expect("metrics requested");
        assert!(!snapshot.counters.is_empty());
        assert_eq!(observed.metric_unit_mismatches, 0);
        assert!(bare.metrics.is_none());
        let strip = |mut o: TournamentOutcome| {
            o.metrics = None;
            o
        };
        assert_eq!(strip(bare), strip(observed));
    }

    #[test]
    fn json_excludes_latency_and_worker_count() {
        let mut config = tiny_config();
        config.workers = 3;
        let outcome = run_tournament(&config).unwrap();
        let json = outcome.to_json().unwrap();
        assert!(!json.contains("workers"), "worker count leaked into JSON");
        assert!(
            !json.contains("decide_nanos"),
            "wall-clock leaked into JSON"
        );
        assert!(json.contains("\"standings\""));
        assert!(json.contains("\"per_predictor\""));
    }
}
