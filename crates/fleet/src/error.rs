//! Fleet-level error type.

use stayaway_core::CoreError;
use stayaway_sim::SimError;
use stayaway_statespace::StateSpaceError;
use stayaway_telemetry::TelemetryError;
use stayaway_workload::WorkloadError;

/// Anything that can go wrong while planning or running a fleet.
#[derive(Debug)]
pub enum FleetError {
    /// The fleet configuration is inconsistent.
    InvalidConfig {
        /// Human-readable description of the first problem found.
        reason: String,
    },
    /// A cell's simulator failed.
    Sim(SimError),
    /// A cell's controller failed.
    Core(CoreError),
    /// A cell's observation source failed.
    Telemetry(TelemetryError),
    /// A cluster host's workload engine failed.
    Workload(WorkloadError),
    /// Template registry (de)serialisation failed.
    Registry(String),
    /// A worker thread died without reporting a result.
    WorkerPanicked {
        /// Index of the cell whose result never arrived.
        cell: usize,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::InvalidConfig { reason } => {
                write!(f, "invalid fleet configuration: {reason}")
            }
            FleetError::Sim(e) => write!(f, "cell simulator error: {e}"),
            FleetError::Core(e) => write!(f, "cell controller error: {e}"),
            FleetError::Telemetry(e) => write!(f, "cell observation source error: {e}"),
            FleetError::Workload(e) => write!(f, "cluster host workload error: {e}"),
            FleetError::Registry(reason) => write!(f, "template registry error: {reason}"),
            FleetError::WorkerPanicked { cell } => {
                write!(f, "worker panicked while running cell {cell}")
            }
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Sim(e) => Some(e),
            FleetError::Core(e) => Some(e),
            FleetError::Telemetry(e) => Some(e),
            FleetError::Workload(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for FleetError {
    fn from(e: SimError) -> Self {
        FleetError::Sim(e)
    }
}

impl From<CoreError> for FleetError {
    fn from(e: CoreError) -> Self {
        FleetError::Core(e)
    }
}

impl From<TelemetryError> for FleetError {
    fn from(e: TelemetryError) -> Self {
        FleetError::Telemetry(e)
    }
}

impl From<WorkloadError> for FleetError {
    fn from(e: WorkloadError) -> Self {
        FleetError::Workload(e)
    }
}

impl From<StateSpaceError> for FleetError {
    fn from(e: StateSpaceError) -> Self {
        FleetError::Registry(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let e = FleetError::InvalidConfig {
            reason: "cells must be positive".into(),
        };
        assert!(e.to_string().contains("cells must be positive"));
        assert!(FleetError::WorkerPanicked { cell: 3 }
            .to_string()
            .contains("cell 3"));
    }
}
