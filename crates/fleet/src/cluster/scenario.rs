//! Declarative cluster scenarios: hosts plus movable jobs.
//!
//! A [`ClusterScenario`] composes per-host [`WorkloadScenario`]s (the
//! resident tenants — sensitive services and any batch work that is
//! pinned to its host) with a list of movable [`JobSpec`]s submitted to
//! the cluster admission queue over time. The built-in
//! [`cluster_library`] ships two situations sized so that *where* the
//! jobs land matters: a hot host that per-host throttling already fights
//! over, a bursty host that punishes co-location, and spare capacity that
//! a scoring policy can exploit.

use crate::cluster::job::JobSpec;
use crate::FleetError;
use serde::{Deserialize, Serialize};
use stayaway_telemetry::AppClass;
use stayaway_workload::{by_name, ArrivalProcess, DemandProfile, KeepalivePolicy, TenantSpec};
use stayaway_workload::{SloSpec, WorkloadScenario};

/// A complete cluster experiment: hosts with resident tenants, plus the
/// movable batch jobs submitted to the admission queue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterScenario {
    /// Library name (CLI token).
    pub name: String,
    /// One-line description for listings.
    pub description: String,
    /// Per-host scenarios, in host-index order. All hosts share one
    /// control-tick period (the cluster clock).
    pub hosts: Vec<WorkloadScenario>,
    /// Movable jobs, in job-id order.
    pub jobs: Vec<JobSpec>,
}

impl ClusterScenario {
    /// Validates the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] for empty host/job lists,
    /// invalid host scenarios or jobs, mismatched tick periods, a host
    /// without a sensitive tenant, or duplicate job names.
    pub fn validate(&self) -> Result<(), FleetError> {
        let invalid = |reason: String| FleetError::InvalidConfig { reason };
        if self.name.is_empty() {
            return Err(invalid("cluster scenario name must not be empty".into()));
        }
        if self.hosts.is_empty() {
            return Err(invalid(format!("cluster '{}' has no hosts", self.name)));
        }
        if self.jobs.is_empty() {
            return Err(invalid(format!("cluster '{}' has no jobs", self.name)));
        }
        for host in &self.hosts {
            host.validate()
                .map_err(|e| invalid(format!("cluster '{}': {e}", self.name)))?;
            if host.tick_period_ns() != self.hosts[0].tick_period_ns() {
                return Err(invalid(format!(
                    "cluster '{}': host '{}' tick period differs — all hosts share one clock",
                    self.name, host.name
                )));
            }
            if !host.tenants.iter().any(|t| t.class == AppClass::Sensitive) {
                return Err(invalid(format!(
                    "cluster '{}': host '{}' has no sensitive tenant",
                    self.name, host.name
                )));
            }
        }
        for (i, job) in self.jobs.iter().enumerate() {
            job.validate()
                .map_err(|e| invalid(format!("cluster '{}': {e}", self.name)))?;
            if self.jobs[..i].iter().any(|p| p.name == job.name) {
                return Err(invalid(format!(
                    "cluster '{}': duplicate job name '{}'",
                    self.name, job.name
                )));
            }
        }
        Ok(())
    }

    /// The shared control-tick period, nanoseconds.
    pub fn tick_period_ns(&self) -> u64 {
        self.hosts[0].tick_period_ns()
    }
}

/// Strips the batch tenants out of a library workload scenario, leaving
/// the sensitive residents, and renames the host.
fn sensitive_only(library_name: &str, host_name: &str) -> WorkloadScenario {
    let mut s = by_name(library_name).expect("library scenario");
    s.tenants.retain(|t| t.class == AppClass::Sensitive);
    s.name = host_name.into();
    s
}

/// A full library scenario (resident batch included), renamed.
fn full_host(library_name: &str, host_name: &str) -> WorkloadScenario {
    let mut s = by_name(library_name).expect("library scenario");
    s.name = host_name.into();
    s
}

/// A lightly loaded spare host: one loose-SLO key-value sensitive tenant,
/// so the host is never empty but batch placed here runs nearly free.
fn spare_host(host_name: &str, tenant: &str, rps: f64) -> WorkloadScenario {
    let mut s = by_name("memcached-like").expect("library scenario");
    s.tenants.retain(|t| t.class == AppClass::Sensitive);
    s.name = host_name.into();
    s.description = "lightly loaded spare capacity".into();
    s.slo = SloSpec {
        deadline_ms: 25.0,
        target_satisfaction: 0.95,
    };
    s.tenants[0].name = tenant.into();
    s.tenants[0].arrival = ArrivalProcess::Poisson { rps };
    s
}

/// The movable version of a library scenario's batch tenant.
fn job_from(library_name: &str, tenant: &str, job: &str, submit: u64, duration: u64) -> JobSpec {
    let s = by_name(library_name).expect("library scenario");
    let spec = s
        .tenants
        .into_iter()
        .find(|t| t.name == tenant && t.class == AppClass::Batch)
        .expect("library batch tenant");
    JobSpec {
        name: job.into(),
        tenant: TenantSpec {
            name: job.into(),
            ..spec
        },
        submit_tick: submit,
        duration_ticks: duration,
    }
}

/// A CPU-bound movable job built from scratch.
fn cpu_job(job: &str, rps: f64, service_ms: f64, submit: u64, duration: u64) -> JobSpec {
    JobSpec {
        name: job.into(),
        tenant: TenantSpec {
            name: job.into(),
            class: AppClass::Batch,
            arrival: ArrivalProcess::Poisson { rps },
            demand: DemandProfile {
                service_ms,
                service_jitter: 0.1,
                cpu_per_invocation: 1.0,
                membw_per_invocation: 100.0,
                disk_per_invocation: 0.0,
                net_per_invocation: 0.0,
                container_mb: 256.0,
                cache_mb: 0.5,
                concurrency: 1,
                max_containers: 3,
                cold_start_ms: 500.0,
                queue_cap: 64,
            },
            keepalive: KeepalivePolicy::Fixed { idle_secs: 15.0 },
        },
        submit_tick: submit,
        duration_ticks: duration,
    }
}

/// The built-in cluster scenarios, in listing order.
pub fn cluster_library() -> Vec<ClusterScenario> {
    vec![
        ClusterScenario {
            name: "hotspot".into(),
            description: "a throttle-contested host, a steady host and spare capacity; \
                          four jobs arrive over time"
                .into(),
            hosts: vec![
                full_host("memcached-like", "steady"),
                full_host("cpu-bomb", "contested"),
                spare_host("spare", "edge-cache", 120.0),
            ],
            jobs: vec![
                job_from("video-transcode-like", "transcode", "transcode-run", 0, 120),
                // The library memory bomb fills a whole host's RAM; the
                // movable version gets half the container pool so *some*
                // host can always take it.
                {
                    let mut j = job_from("memory-bomb", "mem-bomb", "mem-sweep", 8, 112);
                    j.tenant.demand.max_containers = 2;
                    j
                },
                cpu_job("batch-crunch", 4.0, 400.0, 16, 96),
                cpu_job("reindex-run", 3.0, 700.0, 32, 80),
            ],
        },
        ClusterScenario {
            name: "storm-cluster".into(),
            description: "a many-tenant storm host, a phase-shifting host, a flash-crowd \
                          host and spare capacity; five jobs arrive over time"
                .into(),
            hosts: vec![
                full_host("multi-tenant-storm", "storm"),
                full_host("phase-shift-batch", "phased"),
                sensitive_only("flash-crowd", "bursty"),
                spare_host("overflow", "logger", 80.0),
            ],
            jobs: vec![
                job_from("cpu-bomb", "cpu-bomb", "bomb-run", 0, 128),
                job_from("multi-tenant-storm", "mem-churn", "churn-run", 8, 112),
                job_from("multi-tenant-storm", "log-ship", "ship-run", 16, 104),
                job_from(
                    "video-transcode-like",
                    "transcode",
                    "transcode-batch",
                    24,
                    96,
                ),
                cpu_job("spill-crunch", 5.0, 500.0, 40, 80),
            ],
        },
    ]
}

/// Names of the cluster library scenarios, in listing order.
pub fn cluster_names() -> Vec<String> {
    cluster_library().into_iter().map(|s| s.name).collect()
}

/// Resolves a cluster scenario by name.
///
/// # Errors
///
/// Returns [`FleetError::InvalidConfig`] when no scenario of that name
/// exists.
pub fn cluster_by_name(name: &str) -> Result<ClusterScenario, FleetError> {
    cluster_library()
        .into_iter()
        .find(|s| s.name == name)
        .ok_or_else(|| FleetError::InvalidConfig {
            reason: format!(
                "unknown cluster scenario '{name}' (expected one of: {})",
                cluster_names().join(", ")
            ),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_scenarios_validate() {
        assert_eq!(cluster_names(), vec!["hotspot", "storm-cluster"]);
        for s in cluster_library() {
            s.validate().unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert!(s.hosts.len() >= 3);
            assert!(s.jobs.len() >= 4);
        }
    }

    #[test]
    fn by_name_resolves_and_rejects() {
        assert_eq!(cluster_by_name("hotspot").unwrap().name, "hotspot");
        assert!(cluster_by_name("nope").is_err());
    }

    #[test]
    fn scenarios_round_trip_through_serde() {
        for s in cluster_library() {
            let text = serde_json::to_string(&s).unwrap();
            let back: ClusterScenario = serde_json::from_str(&text).unwrap();
            assert_eq!(back, s);
        }
    }

    #[test]
    fn validation_rejects_broken_clusters() {
        let good = cluster_by_name("hotspot").unwrap();
        let mut s = good.clone();
        s.hosts.clear();
        assert!(s.validate().is_err());
        let mut s = good.clone();
        s.jobs.clear();
        assert!(s.validate().is_err());
        let mut s = good.clone();
        s.jobs.push(s.jobs[0].clone());
        assert!(s.validate().is_err());
        let mut s = good.clone();
        s.hosts[1].tick_period_secs = 2.0;
        assert!(s.validate().is_err());
        let mut s = good;
        s.hosts[2].tenants[0].class = AppClass::Batch;
        assert!(s.validate().is_err());
    }
}
