//! Cluster-level rollups: per-host, per-job and cluster-wide.
//!
//! Like the fleet's [`crate::aggregate`], every derived float is a
//! fixed-order fold over hosts (then jobs) in index order, and the JSON
//! rendering deliberately excludes runtime knobs that must not influence
//! results (the worker count above all) — so `workers = 1` and
//! `workers = 8` render byte-identical documents, migration included.

use crate::FleetError;
use serde::{Deserialize, Serialize};
use stayaway_obs::{EventRecord, MetricsSnapshot};
use stayaway_telemetry::QosSummary;

/// The distilled result of one cluster host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostRollup {
    /// Host index.
    pub host: usize,
    /// Host name (from the scenario).
    pub name: String,
    /// Sensitive-workload registry key (first sensitive resident).
    pub sensitive: String,
    /// Derived host seed.
    pub seed: u64,
    /// Whole-run sensitive QoS accounting on this host.
    pub qos: QosSummary,
    /// Per-request SLO violation rate of this host's sensitive tenants.
    pub slo_violation_rate: f64,
    /// Requests that arrived on this host (residents + injected jobs).
    pub arrivals: u64,
    /// Invocations completed on this host.
    pub completed: u64,
    /// Requests dropped on queue overflow.
    pub dropped: u64,
    /// Mean machine utilisation over the run.
    pub mean_utilization: f64,
    /// Mean utilisation gained from batch work (cores / capacity).
    pub gained_utilization: f64,
    /// Nominal batch work completed on this host.
    pub batch_work: f64,
    /// Throttles issued by the host controller.
    pub throttles: u64,
    /// Resumes issued by the host controller.
    pub resumes: u64,
    /// Events evicted from the host controller's bounded decision log.
    pub events_dropped: u64,
    /// Interference verdicts checked against observed outcomes on this
    /// host.
    pub prediction_checks: u64,
    /// Checked verdicts the host controller got right.
    pub prediction_hits: u64,
    /// Observation samples the host's prediction plane sanitised before
    /// learning (non-finite features).
    pub samples_rejected: u64,
    /// Actions the engine rejected (e.g. pausing a detached tenant).
    pub rejected_actions: u64,
    /// True when the host controller warm-started from a registry
    /// template.
    pub imported_template: bool,
    /// Every job that ran here at some point, in job-id order.
    pub jobs_hosted: Vec<usize>,
    /// The host engine's event-timeline fingerprint.
    pub timeline_digest: u64,
}

/// The distilled result of one movable job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRollup {
    /// Job id.
    pub job: usize,
    /// Job name.
    pub name: String,
    /// Requests the job's stream generated.
    pub generated: u64,
    /// FNV-1a digest of the generated `(arrival, service)` stream —
    /// identical across cluster policies by construction.
    pub arrival_digest: u64,
    /// Requests dropped because the job waited unplaced too long.
    pub dropped_unplaced: u64,
    /// Every host the job ran on, in placement order.
    pub placements: Vec<usize>,
    /// Completed migrations.
    pub migrations: u64,
    /// Epochs spent waiting in the admission queue.
    pub queued_epochs: u64,
    /// True once the job was submitted during the run.
    pub arrived: bool,
    /// True once the job's stream ended and its work drained.
    pub departed: bool,
}

/// The aggregated result of one cluster run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterOutcome {
    /// Cluster scenario name.
    pub scenario: String,
    /// Cluster policy that placed the jobs.
    pub cluster_policy: String,
    /// Per-host control policy.
    pub host_policy: String,
    /// The cluster seed everything derived from.
    pub seed: u64,
    /// Epochs run.
    pub epochs: u64,
    /// Control ticks per epoch.
    pub ticks_per_epoch: u64,
    /// Whether the migration verb was enabled.
    pub migration: bool,
    /// Pooled sensitive QoS accounting across hosts.
    pub qos: QosSummary,
    /// Pooled per-request SLO violation rate across hosts.
    pub slo_violation_rate: f64,
    /// Total nominal batch work completed across the cluster.
    pub total_batch_work: f64,
    /// Mean of the hosts' mean utilisations.
    pub mean_utilization: f64,
    /// Mean of the hosts' gained (batch) utilisations.
    pub mean_gained_utilization: f64,
    /// Total throttles across host controllers.
    pub throttles: u64,
    /// Total resumes across host controllers.
    pub resumes: u64,
    /// Total events evicted from bounded decision logs.
    pub events_dropped: u64,
    /// Total interference verdicts checked against observed outcomes.
    pub prediction_checks: u64,
    /// Total checked verdicts the host controllers got right.
    pub prediction_hits: u64,
    /// Total observation samples the prediction planes sanitised before
    /// learning.
    pub samples_rejected: u64,
    /// Jobs admitted (first placements).
    pub admissions: u64,
    /// Completed migrations.
    pub migrations: u64,
    /// Defer actions taken.
    pub deferrals: u64,
    /// Queue actions taken.
    pub queue_actions: u64,
    /// Actions the runner rejected as invalid (counted, never applied).
    pub invalid_actions: u64,
    /// Highest admission-queue depth observed at any epoch boundary.
    pub max_queue_depth: u64,
    /// Mean admission-queue depth over epoch boundaries.
    pub mean_queue_depth: f64,
    /// Jobs still waiting or running when the run ended.
    pub jobs_unfinished: usize,
    /// Per-host rollups, in host-index order.
    pub per_host: Vec<HostRollup>,
    /// Per-job rollups, in job-id order.
    pub per_job: Vec<JobRollup>,
    /// Cluster-wide metrics rollup (host registries merged in index
    /// order, reduced to the stable view); `None` unless metrics
    /// collection was enabled.
    pub metrics: Option<MetricsSnapshot>,
    /// Same-name histograms skipped during the metrics rollup because
    /// their units disagreed; zero for identically-registered hosts.
    pub metric_unit_mismatches: u64,
    /// The canonical cluster-wide event stream: per-host recorders plus
    /// the cluster plane's own recorder (scope = host count), merged
    /// into `(tick, layer, seq, scope)` order — byte-identical for any
    /// worker count; `None` unless event collection was enabled.
    pub events: Option<Vec<EventRecord>>,
}

impl HostRollup {
    /// Fraction of checked verdicts this host's controller got right;
    /// `None` when no verdict was checked.
    pub fn prediction_accuracy(&self) -> Option<f64> {
        (self.prediction_checks > 0)
            .then(|| self.prediction_hits as f64 / self.prediction_checks as f64)
    }
}

impl ClusterOutcome {
    /// Pooled QoS satisfaction across hosts.
    pub fn satisfaction(&self) -> f64 {
        self.qos.satisfaction()
    }

    /// Pooled fraction of checked verdicts the host controllers got
    /// right; `None` when no verdict was checked anywhere.
    pub fn prediction_accuracy(&self) -> Option<f64> {
        (self.prediction_checks > 0)
            .then(|| self.prediction_hits as f64 / self.prediction_checks as f64)
    }

    /// Renders the outcome as pretty JSON. Deterministic: identical
    /// outcomes render to identical bytes, and the worker count is not
    /// part of the document.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Registry`] on serialisation failure.
    pub fn to_json(&self) -> Result<String, FleetError> {
        serde_json::to_string_pretty(self).map_err(|e| FleetError::Registry(e.to_string()))
    }
}
