//! The interference-aware cluster plane (DESIGN.md §14).
//!
//! The fleet runs N *sealed* cells; the cluster runs N *open* hosts under
//! one orchestrator. Batch work arrives as movable [`JobSpec`]s at a
//! cluster admission queue, and an object-safe [`ClusterPolicy`] decides —
//! at every epoch boundary — where each job runs: admit it to a host,
//! keep it queued, defer it, or migrate it between hosts
//! ([`ClusterAction::Migrate`]). Placement is scored from live per-host
//! state ([`HostSnapshot`]: load, recent QoS, frozen jobs, registry
//! template verdicts), in the spirit of scoring-based cluster schedulers
//! layered above per-host interference control.
//!
//! Determinism carries over from the fleet unchanged, even though hosts
//! are no longer independent:
//!
//! * **Placement-independent request streams.** Every job owns two RNG
//!   streams derived from `(cluster_seed, job_id)` — disjoint from the
//!   host-seed space — and generates its `(arrival, nominal-service)`
//!   pairs against the shared cluster clock, folding them into a per-job
//!   FNV digest. Hosts receive them as injected events that consume no
//!   host RNG, so the digest (and the arrival timeline) is identical under
//!   every cluster policy, every placement, and every migration history.
//! * **Serial barriers, parallel cells.** All cross-host coordination
//!   (scoring, placement, routing, departures) happens serially at epoch
//!   boundaries in fixed host/job order; between barriers each host
//!   advances alone on the worker pool. `workers = 1` and `workers = 8`
//!   produce byte-identical [`ClusterOutcome`] JSON.

pub mod action;
pub mod job;
pub mod outcome;
pub mod policy;
pub mod runner;
pub mod scenario;

pub use action::ClusterAction;
pub use job::{derive_job_seed, JobSpec};
pub use outcome::{ClusterOutcome, HostRollup, JobRollup};
pub use policy::{ClusterPolicy, ClusterPolicySpec, HostSnapshot, JobView};
pub use runner::{Cluster, ClusterConfig};
pub use scenario::{cluster_by_name, cluster_library, cluster_names, ClusterScenario};
