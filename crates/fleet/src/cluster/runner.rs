//! The deterministic cluster epoch loop.
//!
//! A [`Cluster`] advances all hosts in lockstep epochs. Everything that
//! couples hosts — snapshots, the cluster policy's decision, placement
//! actuation, arrival routing, departures — happens *serially* at the
//! epoch boundary in fixed host/job order; between boundaries each host's
//! event engine advances alone, and only that embarrassingly parallel
//! part runs on the worker pool. Combined with placement-independent job
//! streams ([`crate::cluster::job`]), the run is bit-identical for any
//! worker count, migrations included.

use crate::cluster::action::ClusterAction;
use crate::cluster::job::JobState;
use crate::cluster::outcome::{ClusterOutcome, HostRollup, JobRollup};
use crate::cluster::policy::{ClusterPolicySpec, HostSnapshot, JobView};
use crate::cluster::scenario::ClusterScenario;
use crate::policy::PolicySpec;
use crate::registry::TemplateRegistry;
use crate::seed::derive_cell_seed;
use crate::FleetError;
use stayaway_core::{ControlPolicy, ControllerConfig, Observability};
use stayaway_obs::{attr, merge_streams, EventKind, FlightRecorder, Layer, MetricsRegistry};
use stayaway_telemetry::{AppClass, QosSummary};
use stayaway_workload::{WorkloadHost, WorkloadMetrics};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Configuration of one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// The cluster scenario (hosts + movable jobs).
    pub scenario: ClusterScenario,
    /// Epochs to run.
    pub epochs: u64,
    /// Control ticks per epoch (the placement cadence).
    pub ticks_per_epoch: u64,
    /// Worker threads advancing host engines between barriers. Never
    /// affects results.
    pub workers: usize,
    /// The cluster seed; host and job seeds derive from it.
    pub seed: u64,
    /// The cluster scheduling plane.
    pub cluster_policy: ClusterPolicySpec,
    /// The per-host control plane.
    pub host_policy: PolicySpec,
    /// Whether the migration verb is enabled (the runner drops
    /// [`ClusterAction::Migrate`] as invalid when off).
    pub migration: bool,
    /// When true, every host records into its own registry and the
    /// outcome carries the merged stable view. Decision-inert.
    pub collect_metrics: bool,
    /// When true, every host (and the cluster plane itself) records
    /// typed flight-recorder events and the outcome carries their
    /// canonical merged stream. Decision-inert and worker-count
    /// independent.
    pub collect_events: bool,
    /// Controller configuration for Stay-Away host policies (each host
    /// overrides the seed with its derived one).
    pub controller: ControllerConfig,
}

impl ClusterConfig {
    /// Builds a default configuration: 24 epochs × 8 ticks, 4 workers,
    /// scoring placement with migration above per-host Stay-Away.
    pub fn new(scenario: ClusterScenario, seed: u64) -> Self {
        ClusterConfig {
            scenario,
            epochs: 24,
            ticks_per_epoch: 8,
            workers: 4,
            seed,
            cluster_policy: ClusterPolicySpec::Score,
            host_policy: PolicySpec::StayAway,
            migration: true,
            collect_metrics: false,
            collect_events: false,
            controller: ControllerConfig::default(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] for zero epochs/ticks/workers
    /// or an invalid scenario or host policy.
    pub fn validate(&self) -> Result<(), FleetError> {
        let invalid = |reason: &str| FleetError::InvalidConfig {
            reason: reason.into(),
        };
        if self.epochs == 0 {
            return Err(invalid("cluster epochs must be positive"));
        }
        if self.ticks_per_epoch == 0 {
            return Err(invalid("ticks per epoch must be positive"));
        }
        if self.workers == 0 {
            return Err(invalid("cluster workers must be positive"));
        }
        self.scenario.validate()?;
        self.host_policy.validate()
    }
}

/// One open host: a workload engine plus its local control policy.
struct HostCell {
    idx: usize,
    host: WorkloadHost,
    policy: Box<dyn ControlPolicy + Send>,
    registry: Option<MetricsRegistry>,
    recorder: Option<FlightRecorder>,
    sensitive_key: String,
    seed: u64,
    cpu_capacity: f64,
    imported_template: bool,
    qos: QosSummary,
    epoch_qos: QosSummary,
    epoch_cpu_sum: f64,
    epoch_ticks: u64,
    sum_utilization: f64,
    sum_batch_cpu: f64,
    ticks: u64,
    rejected: u64,
}

impl HostCell {
    /// Runs `ticks` control ticks of the local closed loop, mirroring
    /// `stayaway_telemetry::drive` decision for decision.
    fn advance_epoch(&mut self, ticks: u64) {
        self.epoch_qos = QosSummary::new();
        self.epoch_cpu_sum = 0.0;
        self.epoch_ticks = ticks;
        for _ in 0..ticks {
            let observation = self.host.advance_tick();
            let actions = self.policy.decide(&observation);
            self.rejected += self.host.apply(&actions);
            let record = self
                .host
                .last_record(actions.len())
                .expect("workload host records every tick");
            if record.sensitive_active {
                self.qos.record(record.qos_value, record.violated);
                self.epoch_qos.record(record.qos_value, record.violated);
                if record.violated {
                    if let Some(rec) = &self.recorder {
                        // Link back to the verdict that was in force when
                        // the request missed its bound (if any).
                        let cause = rec.last_id_of_kind(EventKind::PredictorVerdict);
                        rec.record(
                            record.tick,
                            Layer::Workload,
                            EventKind::SloViolation,
                            cause,
                            vec![
                                attr("qos", record.qos_value),
                                attr("batch_active", record.batch_active as u64),
                            ],
                        );
                    }
                }
            }
            self.sum_utilization += record.utilization;
            self.sum_batch_cpu += record.batch_cpu;
            self.epoch_cpu_sum += record.sensitive_cpu + record.batch_cpu;
            self.ticks += 1;
        }
    }

    /// The host's epoch-boundary view for the cluster policy.
    fn snapshot(&self, placed_jobs: Vec<usize>, registry: &TemplateRegistry) -> HostSnapshot {
        HostSnapshot {
            idx: self.idx,
            name: self.host.scenario().name.clone(),
            spec: self.host.scenario().host,
            load: self.host.load(),
            mean_cpu: if self.epoch_ticks > 0 {
                self.epoch_cpu_sum / self.epoch_ticks as f64
            } else {
                0.0
            },
            epoch_qos: self.epoch_qos,
            frozen_jobs: self.host.frozen_batch(),
            placed_jobs,
            template_violations: registry
                .lookup(&self.sensitive_key)
                .map(|e| e.template.violation_count() as u64),
        }
    }
}

/// Advances every cell one epoch. Serial for one worker; otherwise the
/// cells are parked in slots and claimed by index from an atomic cursor —
/// each cell is advanced exactly once, by exactly one worker, and the
/// results are put back in index order, so scheduling cannot leak into
/// the outcome.
fn advance_all(cells: &mut Vec<HostCell>, ticks: u64, workers: usize) {
    let workers = workers.min(cells.len());
    if workers <= 1 {
        for cell in cells.iter_mut() {
            cell.advance_epoch(ticks);
        }
        return;
    }
    let slots: Vec<Mutex<Option<HostCell>>> =
        cells.drain(..).map(|c| Mutex::new(Some(c))).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= slots.len() {
                    break;
                }
                let mut slot = slots[i].lock().expect("slot lock");
                if let Some(cell) = slot.as_mut() {
                    cell.advance_epoch(ticks);
                }
            });
        }
    });
    cells.extend(slots.into_iter().map(|slot| {
        slot.into_inner()
            .expect("slot lock")
            .expect("cell returned")
    }));
}

/// A cluster of open hosts under one scheduling policy.
pub struct Cluster {
    config: ClusterConfig,
    registry: Arc<TemplateRegistry>,
}

impl Cluster {
    /// Builds a cluster with a fresh (empty) template registry.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] when the configuration is
    /// inconsistent.
    pub fn new(config: ClusterConfig) -> Result<Self, FleetError> {
        Self::with_registry(config, Arc::new(TemplateRegistry::new()))
    }

    /// Like [`Cluster::new`] but starting from an existing registry, so
    /// host controllers warm-start from templates captured earlier (and
    /// the score policy sees their violation history from epoch 0).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] when the configuration is
    /// inconsistent.
    pub fn with_registry(
        config: ClusterConfig,
        registry: Arc<TemplateRegistry>,
    ) -> Result<Self, FleetError> {
        config.validate()?;
        Ok(Cluster { config, registry })
    }

    /// The shared template registry.
    pub fn registry(&self) -> &Arc<TemplateRegistry> {
        &self.registry
    }

    fn build_cell(&self, idx: usize) -> Result<HostCell, FleetError> {
        let scenario = self.config.scenario.hosts[idx].clone();
        let seed = derive_cell_seed(self.config.seed, idx as u64);
        let registry = self.config.collect_metrics.then(MetricsRegistry::new);
        let recorder = self
            .config
            .collect_events
            .then(|| FlightRecorder::for_scope(idx as u32, format!("host:{idx}")));
        let mut host = WorkloadHost::new(scenario.clone(), seed)?;
        if let Some(r) = &registry {
            host = host.with_metrics(WorkloadMetrics::register(r));
        }
        let controller = ControllerConfig {
            seed,
            ..self.config.controller.clone()
        };
        let mut obs = match &registry {
            Some(r) => Observability::enabled(r.clone()),
            None => Observability::disabled(),
        };
        if let Some(rec) = &recorder {
            obs = obs.with_recorder(rec.clone());
        }
        let mut policy =
            self.config
                .host_policy
                .build_observed(&controller, &scenario.host, obs)?;
        let sensitive_key = scenario
            .tenants
            .iter()
            .find(|t| t.class == AppClass::Sensitive)
            .map(|t| t.name.clone())
            .expect("validated: every host has a sensitive tenant");
        let mut imported_template = false;
        if let Some(entry) = self.registry.lookup(&sensitive_key) {
            imported_template = policy.import_template(&entry.template)?;
            if imported_template {
                if let Some(rec) = &recorder {
                    rec.record(
                        0,
                        Layer::Fleet,
                        EventKind::TemplateImport,
                        None,
                        vec![
                            attr("states", entry.template.len() as u64),
                            attr("violations", entry.template.violation_count() as u64),
                        ],
                    );
                }
            }
        }
        Ok(HostCell {
            idx,
            host,
            policy,
            registry,
            recorder,
            sensitive_key,
            seed,
            cpu_capacity: scenario.host.cpu_cores,
            imported_template,
            qos: QosSummary::new(),
            epoch_qos: QosSummary::new(),
            epoch_cpu_sum: 0.0,
            epoch_ticks: 0,
            sum_utilization: 0.0,
            sum_batch_cpu: 0.0,
            ticks: 0,
            rejected: 0,
        })
    }

    /// Runs the cluster to completion.
    ///
    /// # Errors
    ///
    /// Propagates host construction, controller and engine failures.
    pub fn run(self) -> Result<ClusterOutcome, FleetError> {
        let config = &self.config;
        let tick_ns = config.scenario.tick_period_ns();
        let epoch_ns = config.ticks_per_epoch * tick_ns;
        let mut cells: Vec<HostCell> = (0..config.scenario.hosts.len())
            .map(|idx| self.build_cell(idx))
            .collect::<Result<_, _>>()?;
        let mut jobs: Vec<JobState> = config
            .scenario
            .jobs
            .iter()
            .enumerate()
            .map(|(id, spec)| JobState::new(id, spec.clone(), config.seed, tick_ns))
            .collect();
        let mut cluster_policy = config.cluster_policy.build(config.seed, config.migration);
        // The cluster plane records under its own scope, one past the
        // host indices; verbs are recorded only in the serial barrier,
        // so the stream is worker-count independent by construction.
        let cluster_recorder = config
            .collect_events
            .then(|| FlightRecorder::for_scope(cells.len() as u32, "cluster"));

        let mut admissions = 0u64;
        let mut migrations = 0u64;
        let mut deferrals = 0u64;
        let mut queue_actions = 0u64;
        let mut invalid_actions = 0u64;
        let mut max_queue_depth = 0u64;
        let mut queue_depth_sum = 0u64;

        for epoch in 0..config.epochs {
            let start_ns = epoch * epoch_ns;
            let start_tick = epoch * config.ticks_per_epoch;

            // 1. Submissions reach the admission queue.
            for job in &mut jobs {
                if !job.arrived && job.spec.submit_tick <= start_tick {
                    job.arrived = true;
                }
            }

            // 2. Serial barrier: snapshots in host order, views in job
            //    order, one policy decision.
            let snapshots: Vec<HostSnapshot> = cells
                .iter()
                .map(|cell| {
                    let placed = jobs
                        .iter()
                        .filter(|j| j.placement == Some(cell.idx) && !j.departed)
                        .map(|j| j.id)
                        .collect();
                    cell.snapshot(placed, &self.registry)
                })
                .collect();
            let views: Vec<JobView> = jobs
                .iter()
                .filter(|j| j.arrived && !j.departed)
                .map(|j| JobView {
                    id: j.id,
                    name: j.spec.name.clone(),
                    placement: j.placement,
                    pending: match (j.placement, j.tenant_idx) {
                        (Some(h), Some(ti)) => cells[h].host.tenant_pending(ti),
                        _ => j.carried.len() as u64,
                    },
                    queued_epochs: j.queued_epochs,
                    last_move_epoch: j.last_move_epoch,
                    migrations: j.migrations,
                    stream_done: j.stream_done(),
                    est: JobView::estimate(&j.spec),
                })
                .collect();
            let actions = cluster_policy.decide(epoch, &views, &snapshots);

            // 3. Actuate in the policy's order; invalid verbs are counted
            //    and dropped, never applied.
            for action in actions {
                let job_id = action.job();
                let live = jobs.get(job_id).is_some_and(|j| j.arrived && !j.departed);
                if !live {
                    invalid_actions += 1;
                    continue;
                }
                match action {
                    ClusterAction::Admit { job, host } => {
                        if jobs[job].placement.is_some() || host >= cells.len() {
                            invalid_actions += 1;
                            continue;
                        }
                        let ti = cells[host]
                            .host
                            .attach_tenant(jobs[job].spec.tenant.clone())?;
                        jobs[job].placement = Some(host);
                        jobs[job].tenant_idx = Some(ti);
                        jobs[job].placements.push(host);
                        jobs[job].last_move_epoch = epoch;
                        admissions += 1;
                        if let Some(rec) = &cluster_recorder {
                            rec.record_for(
                                start_tick,
                                Layer::Cluster,
                                EventKind::Admit,
                                format!("job:{job}"),
                                None,
                                vec![attr("host", host as u64), attr("epoch", epoch)],
                            );
                        }
                    }
                    ClusterAction::Queue { job } => {
                        if jobs[job].placement.is_some() {
                            invalid_actions += 1;
                        } else {
                            queue_actions += 1;
                            if let Some(rec) = &cluster_recorder {
                                rec.record_for(
                                    start_tick,
                                    Layer::Cluster,
                                    EventKind::Queue,
                                    format!("job:{job}"),
                                    None,
                                    vec![attr("queued_epochs", jobs[job].queued_epochs)],
                                );
                            }
                        }
                    }
                    ClusterAction::Defer { job } => {
                        if jobs[job].placement.is_some() {
                            invalid_actions += 1;
                        } else {
                            deferrals += 1;
                            if let Some(rec) = &cluster_recorder {
                                rec.record_for(
                                    start_tick,
                                    Layer::Cluster,
                                    EventKind::Defer,
                                    format!("job:{job}"),
                                    None,
                                    vec![attr("epoch", epoch)],
                                );
                            }
                        }
                    }
                    ClusterAction::Migrate { job, from, to } => {
                        let valid = config.migration
                            && jobs[job].placement == Some(from)
                            && to != from
                            && to < cells.len();
                        if !valid {
                            invalid_actions += 1;
                            continue;
                        }
                        let ti = jobs[job].tenant_idx.expect("placed job has a tenant");
                        let carried = cells[from].host.detach_tenant(ti)?;
                        jobs[job].carry(carried);
                        let ti = cells[to]
                            .host
                            .attach_tenant(jobs[job].spec.tenant.clone())?;
                        jobs[job].placement = Some(to);
                        jobs[job].tenant_idx = Some(ti);
                        jobs[job].placements.push(to);
                        jobs[job].last_move_epoch = epoch;
                        jobs[job].migrations += 1;
                        migrations += 1;
                        if let Some(rec) = &cluster_recorder {
                            // Causal link across layers: the migration is
                            // the cluster's answer to interference on the
                            // source host, so point at its most recent
                            // workload-layer SLO violation.
                            let cause = cells[from]
                                .recorder
                                .as_ref()
                                .and_then(|r| r.last_id_of_kind(EventKind::SloViolation));
                            rec.record_for(
                                start_tick,
                                Layer::Cluster,
                                EventKind::Migrate,
                                format!("job:{job}"),
                                cause,
                                vec![attr("from", from as u64), attr("to", to as u64)],
                            );
                        }
                    }
                }
            }

            // 4. Admission-queue depth accounting.
            let depth = jobs
                .iter_mut()
                .filter(|j| j.arrived && !j.departed && j.placement.is_none())
                .map(|j| j.queued_epochs += 1)
                .count() as u64;
            max_queue_depth = max_queue_depth.max(depth);
            queue_depth_sum += depth;

            // 5. Route this epoch's arrivals in job-id order. Generation
            //    happens for every live job — placed or not — so the
            //    streams are a pure function of the epoch grid.
            for job in &mut jobs {
                if !job.arrived || job.departed {
                    continue;
                }
                let due = job.arrivals_before(start_ns + epoch_ns);
                match (job.placement, job.tenant_idx) {
                    (Some(h), Some(ti)) => {
                        for (t, nominal) in job.carried.drain(..).chain(due) {
                            // Past arrival times (carried backlog) are
                            // clamped to the host's current tick boundary.
                            cells[h].host.inject_arrival(ti, t, nominal)?;
                        }
                    }
                    _ => job.carry(due),
                }
            }

            // 6. Parallel section: each host advances alone.
            advance_all(&mut cells, config.ticks_per_epoch, config.workers);

            // 7. Departures, in job-id order at the epoch's end.
            for job in &mut jobs {
                if !job.arrived || job.departed || !job.stream_done() || !job.carried.is_empty() {
                    continue;
                }
                match (job.placement, job.tenant_idx) {
                    (Some(h), Some(ti)) => {
                        if cells[h].host.tenant_pending(ti) == 0 {
                            cells[h].host.detach_tenant(ti)?;
                            job.placement = None;
                            job.tenant_idx = None;
                            job.departed = true;
                        }
                    }
                    _ => job.departed = true,
                }
            }
        }

        // Publish learned templates in host order (order-independent
        // conflict resolution lives in the registry, but fixed order keeps
        // the walk deterministic anyway).
        for cell in &cells {
            if cell.policy.supports_templates() {
                if let Some(template) = cell.policy.export_template(&cell.sensitive_key)? {
                    self.registry.publish(template, cell.idx);
                }
            }
        }

        Ok(self.aggregate(
            cells,
            jobs,
            cluster_recorder,
            admissions,
            migrations,
            deferrals,
            queue_actions,
            invalid_actions,
            max_queue_depth,
            queue_depth_sum,
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn aggregate(
        &self,
        cells: Vec<HostCell>,
        jobs: Vec<JobState>,
        cluster_recorder: Option<FlightRecorder>,
        admissions: u64,
        migrations: u64,
        deferrals: u64,
        queue_actions: u64,
        invalid_actions: u64,
        max_queue_depth: u64,
        queue_depth_sum: u64,
    ) -> ClusterOutcome {
        let config = &self.config;
        let mut qos = QosSummary::new();
        let mut slo_met = 0u64;
        let mut slo_total = 0u64;
        let mut total_batch_work = 0.0;
        let mut mean_utilization = 0.0;
        let mut mean_gained = 0.0;
        let mut throttles = 0u64;
        let mut resumes = 0u64;
        let mut events_dropped = 0u64;
        let mut prediction_checks = 0u64;
        let mut prediction_hits = 0u64;
        let mut samples_rejected = 0u64;
        let mut metrics: Option<stayaway_obs::MetricsSnapshot> = None;
        let mut metric_unit_mismatches = 0u64;
        let per_host: Vec<HostRollup> = cells
            .iter()
            .map(|cell| {
                let totals = cell.host.totals();
                let stats = cell.policy.stats();
                qos.active_ticks += cell.qos.active_ticks;
                qos.violations += cell.qos.violations;
                qos.qos_sum += cell.qos.qos_sum;
                qos.worst = qos.worst.min(cell.qos.worst);
                slo_met += totals.sensitive_met;
                slo_total += totals.sensitive_completed + totals.sensitive_dropped;
                total_batch_work += cell.host.batch_work();
                let ticks = cell.ticks.max(1) as f64;
                mean_utilization += cell.sum_utilization / ticks;
                let gained =
                    cell.sum_batch_cpu / (ticks * cell.cpu_capacity.max(f64::MIN_POSITIVE));
                mean_gained += gained;
                throttles += stats.throttles;
                resumes += stats.resumes;
                events_dropped += stats.events_dropped;
                prediction_checks += stats.prediction_checks;
                prediction_hits += stats.prediction_hits;
                samples_rejected += stats.samples_rejected;
                if let Some(r) = &cell.registry {
                    metric_unit_mismatches += metrics
                        .get_or_insert_with(stayaway_obs::MetricsSnapshot::default)
                        .merge(&r.snapshot());
                }
                HostRollup {
                    host: cell.idx,
                    name: cell.host.scenario().name.clone(),
                    sensitive: cell.sensitive_key.clone(),
                    seed: cell.seed,
                    qos: cell.qos,
                    slo_violation_rate: totals.slo_violation_rate(),
                    arrivals: totals.arrivals,
                    completed: totals.completed,
                    dropped: totals.dropped,
                    mean_utilization: cell.sum_utilization / ticks,
                    gained_utilization: gained,
                    batch_work: cell.host.batch_work(),
                    throttles: stats.throttles,
                    resumes: stats.resumes,
                    events_dropped: stats.events_dropped,
                    prediction_checks: stats.prediction_checks,
                    prediction_hits: stats.prediction_hits,
                    samples_rejected: stats.samples_rejected,
                    rejected_actions: cell.rejected,
                    imported_template: cell.imported_template,
                    jobs_hosted: jobs
                        .iter()
                        .filter(|j| j.placements.contains(&cell.idx))
                        .map(|j| j.id)
                        .collect(),
                    timeline_digest: cell.host.timeline_digest(),
                }
            })
            .collect();
        let per_job: Vec<JobRollup> = jobs
            .iter()
            .map(|j| JobRollup {
                job: j.id,
                name: j.spec.name.clone(),
                generated: j.generated,
                arrival_digest: j.digest,
                dropped_unplaced: j.dropped_unplaced,
                placements: j.placements.clone(),
                migrations: j.migrations,
                queued_epochs: j.queued_epochs,
                arrived: j.arrived,
                departed: j.departed,
            })
            .collect();
        let hosts = cells.len().max(1) as f64;
        ClusterOutcome {
            scenario: config.scenario.name.clone(),
            cluster_policy: config.cluster_policy.name().to_string(),
            host_policy: config.host_policy.name().to_string(),
            seed: config.seed,
            epochs: config.epochs,
            ticks_per_epoch: config.ticks_per_epoch,
            migration: config.migration,
            qos,
            slo_violation_rate: if slo_total == 0 {
                0.0
            } else {
                1.0 - slo_met as f64 / slo_total as f64
            },
            total_batch_work,
            mean_utilization: mean_utilization / hosts,
            mean_gained_utilization: mean_gained / hosts,
            throttles,
            resumes,
            events_dropped,
            prediction_checks,
            prediction_hits,
            samples_rejected,
            admissions,
            migrations,
            deferrals,
            queue_actions,
            invalid_actions,
            max_queue_depth,
            mean_queue_depth: queue_depth_sum as f64 / config.epochs.max(1) as f64,
            jobs_unfinished: jobs.iter().filter(|j| !j.departed).count(),
            per_host,
            per_job,
            metrics: metrics.map(|m| m.stable_view()),
            metric_unit_mismatches,
            events: cluster_recorder.map(|cluster_rec| {
                let streams = cells
                    .iter()
                    .filter_map(|cell| cell.recorder.as_ref().map(|r| r.events()))
                    .chain(std::iter::once(cluster_rec.events()));
                merge_streams(streams)
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::scenario::cluster_by_name;

    fn config(name: &str, seed: u64) -> ClusterConfig {
        let mut c = ClusterConfig::new(cluster_by_name(name).unwrap(), seed);
        c.epochs = 10;
        c.ticks_per_epoch = 4;
        c
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let mut c = config("hotspot", 7);
        c.epochs = 0;
        assert!(Cluster::new(c).is_err());
        let mut c = config("hotspot", 7);
        c.ticks_per_epoch = 0;
        assert!(Cluster::new(c).is_err());
        let mut c = config("hotspot", 7);
        c.workers = 0;
        assert!(Cluster::new(c).is_err());
        assert!(Cluster::new(config("hotspot", 7)).is_ok());
    }

    #[test]
    fn a_short_run_admits_jobs_and_reports_rollups() {
        // 16 epochs: enough for the last job (submitted at tick 32) to
        // clear the score policy's bounded defer window.
        let mut c = config("hotspot", 7);
        c.epochs = 16;
        let out = Cluster::new(c).unwrap().run().unwrap();
        assert_eq!(out.scenario, "hotspot");
        assert_eq!(out.per_host.len(), 3);
        assert_eq!(out.per_job.len(), 4);
        assert!(out.admissions >= 4, "all jobs should be placed eventually");
        assert!(out.total_batch_work > 0.0);
        assert!(out.qos.active_ticks > 0);
        for job in &out.per_job {
            assert!(job.arrived);
            assert!(job.generated > 0);
        }
        // The worker count is not part of the document.
        assert!(!out.to_json().unwrap().contains("workers"));
    }

    #[test]
    fn throttle_only_round_robin_never_migrates() {
        let mut c = config("hotspot", 7);
        c.cluster_policy = ClusterPolicySpec::NoPlacement;
        let out = Cluster::new(c).unwrap().run().unwrap();
        assert_eq!(out.migrations, 0);
        for job in &out.per_job {
            assert_eq!(job.placements, vec![job.job % 3]);
        }
    }

    #[test]
    fn metrics_collection_is_decision_inert() {
        let bare = Cluster::new(config("hotspot", 9)).unwrap().run().unwrap();
        let mut c = config("hotspot", 9);
        c.collect_metrics = true;
        let observed = Cluster::new(c).unwrap().run().unwrap();
        assert!(bare.metrics.is_none());
        assert!(observed.metrics.is_some());
        let strip = |mut o: ClusterOutcome| {
            o.metrics = None;
            o
        };
        assert_eq!(strip(bare), strip(observed));
    }

    #[test]
    fn learned_templates_are_published_for_warm_starts() {
        let cluster = Cluster::new(config("hotspot", 11)).unwrap();
        let registry = Arc::clone(cluster.registry());
        cluster.run().unwrap();
        assert!(!registry.is_empty(), "stay-away hosts publish templates");
    }
}
