//! Cluster-level scheduling actions.
//!
//! The per-host plane keeps its two-verb [`stayaway_telemetry::Action`]
//! vocabulary (pause/resume); the cluster plane gets its own enum for the
//! decisions only an orchestrator can take. Keeping the enums separate
//! means host policies cannot accidentally emit placement verbs and the
//! telemetry codec (traces, replay) is untouched.

use serde::{Deserialize, Serialize};

/// One cluster-scheduler decision, applied at an epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterAction {
    /// Place queued job `job` on host `host` (cold attach; its carried
    /// backlog is re-routed there).
    Admit {
        /// Job id (index into the scenario's job list).
        job: usize,
        /// Destination host index.
        host: usize,
    },
    /// Keep job `job` in the admission queue: no host currently has the
    /// capacity to take it.
    Queue {
        /// Job id.
        job: usize,
    },
    /// Postpone job `job` although capacity exists — the policy judges
    /// every feasible placement too risky for the sensitive tenants.
    Defer {
        /// Job id.
        job: usize,
    },
    /// Move job `job` from host `from` to host `to`: detach (aborting
    /// in-flight invocations, carrying queued requests), cold-attach at
    /// the destination, re-route the carried work.
    Migrate {
        /// Job id.
        job: usize,
        /// Current host index.
        from: usize,
        /// Destination host index.
        to: usize,
    },
}

impl ClusterAction {
    /// The job this action concerns.
    pub fn job(&self) -> usize {
        match self {
            ClusterAction::Admit { job, .. }
            | ClusterAction::Queue { job }
            | ClusterAction::Defer { job }
            | ClusterAction::Migrate { job, .. } => *job,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actions_round_trip_through_serde() {
        for a in [
            ClusterAction::Admit { job: 1, host: 2 },
            ClusterAction::Queue { job: 3 },
            ClusterAction::Defer { job: 4 },
            ClusterAction::Migrate {
                job: 5,
                from: 0,
                to: 1,
            },
        ] {
            let text = serde_json::to_string(&a).unwrap();
            let back: ClusterAction = serde_json::from_str(&text).unwrap();
            assert_eq!(back, a);
            assert!(back.job() >= 1);
        }
    }
}
