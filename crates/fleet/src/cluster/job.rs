//! Movable batch jobs and their placement-independent request streams.
//!
//! A [`JobSpec`] declares a batch tenant that exists *above* any single
//! host: it is submitted to the cluster admission queue at a tick, streams
//! open-loop arrivals for a bounded window, and departs once its work
//! drains. The runtime `JobState` owns the job's arrival and service
//! RNG streams — seeded from `(cluster_seed, job_id)` via
//! [`derive_job_seed`], disjoint from the host-seed space — and generates
//! `(arrival_ns, nominal_service_ns)` pairs against the cluster clock.
//! Because generation never touches host state and hosts ingest the pairs
//! as RNG-free injected events, the stream (and its FNV digest) is a pure
//! function of `(cluster_seed, job_id, spec)`: identical under every
//! placement decision and every migration history.

use crate::seed::derive_cell_seed;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use stayaway_telemetry::AppClass;
use stayaway_workload::{TenantSpec, WorkloadError};
use std::collections::VecDeque;

/// Job seed streams live in the upper half of the index space so they can
/// never collide with host seeds (`derive_cell_seed(seed, host_idx)` with
/// small indices): stream `s` of job `j` maps to index
/// `(1 << 32) + 2 * j + s`.
pub fn derive_job_seed(cluster_seed: u64, job: u64, stream: u64) -> u64 {
    derive_cell_seed(cluster_seed, (1u64 << 32) + 2 * job + stream)
}

/// Declarative spec of one movable batch job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Job name (unique within a cluster scenario).
    pub name: String,
    /// The batch tenant this job materialises wherever it is placed.
    pub tenant: TenantSpec,
    /// Tick at which the job arrives at the cluster admission queue.
    pub submit_tick: u64,
    /// Ticks the job's arrival stream stays active after submission; the
    /// job departs once the stream ends and its pending work drains.
    pub duration_ticks: u64,
}

impl JobSpec {
    /// Validates the job.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidSpec`] for an empty name, a
    /// non-batch tenant, a zero duration, or an invalid tenant spec.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        let invalid = |reason: String| WorkloadError::InvalidSpec { reason };
        if self.name.is_empty() {
            return Err(invalid("job name must not be empty".into()));
        }
        if self.tenant.class != AppClass::Batch {
            return Err(invalid(format!(
                "job '{}' must wrap a batch tenant (sensitive tenants are host-resident)",
                self.name
            )));
        }
        if self.duration_ticks == 0 {
            return Err(invalid(format!(
                "job '{}' must have a positive duration",
                self.name
            )));
        }
        self.tenant.validate()
    }
}

/// Runtime state of one job: RNG streams, generation cursor, carried
/// backlog while unplaced, and placement history.
#[derive(Debug)]
pub(crate) struct JobState {
    /// Index into the scenario's job list.
    pub id: usize,
    /// The declarative spec.
    pub spec: JobSpec,
    arrival_rng: StdRng,
    service_rng: StdRng,
    /// Time of the last generated arrival (generation cursor), ns.
    cursor_ns: u64,
    /// Absolute end of the arrival stream, ns.
    end_ns: u64,
    /// A generated arrival not yet released to a window.
    lookahead: Option<(u64, u64)>,
    /// True once the stream sampled past `end_ns`.
    stream_done: bool,
    /// FNV-1a fold of every generated `(arrival, nominal)` pair.
    pub digest: u64,
    /// Arrivals generated so far.
    pub generated: u64,
    /// Backlog accumulated while unplaced, bounded by the tenant's
    /// `queue_cap` (overflow counted in `dropped_unplaced`).
    pub carried: VecDeque<(u64, u64)>,
    /// Requests dropped because the unplaced backlog overflowed.
    pub dropped_unplaced: u64,
    /// Current host, when placed.
    pub placement: Option<usize>,
    /// Tenant index on the current host, when placed.
    pub tenant_idx: Option<usize>,
    /// Every host the job has run on, in placement order.
    pub placements: Vec<usize>,
    /// Completed migrations.
    pub migrations: u64,
    /// Epochs spent in the admission queue after arriving.
    pub queued_epochs: u64,
    /// Epoch of the last placement change (admission or migration).
    pub last_move_epoch: u64,
    /// True once `submit_tick` has passed.
    pub arrived: bool,
    /// True once the stream ended and all pending work drained.
    pub departed: bool,
}

impl JobState {
    /// Builds the runtime state of job `id` under `cluster_seed`, with
    /// the clock geometry needed to anchor the stream window.
    pub fn new(id: usize, spec: JobSpec, cluster_seed: u64, tick_period_ns: u64) -> Self {
        let submit_ns = spec.submit_tick * tick_period_ns;
        let end_ns = submit_ns.saturating_add(spec.duration_ticks * tick_period_ns);
        JobState {
            arrival_rng: StdRng::seed_from_u64(derive_job_seed(cluster_seed, id as u64, 0)),
            service_rng: StdRng::seed_from_u64(derive_job_seed(cluster_seed, id as u64, 1)),
            cursor_ns: submit_ns,
            end_ns,
            lookahead: None,
            stream_done: false,
            digest: 0xcbf2_9ce4_8422_2325,
            generated: 0,
            carried: VecDeque::new(),
            dropped_unplaced: 0,
            placement: None,
            tenant_idx: None,
            placements: Vec::new(),
            migrations: 0,
            queued_epochs: 0,
            last_move_epoch: 0,
            arrived: false,
            departed: false,
            id,
            spec,
        }
    }

    /// True once the arrival stream has ended.
    pub fn stream_done(&self) -> bool {
        self.stream_done
    }

    /// Releases every arrival strictly before `until_ns`, generating from
    /// the job's own streams as needed. Consumes nothing outside the job:
    /// calling this each epoch — which the runner does for every live job
    /// whether placed or not — makes the sequence a pure function of the
    /// epoch grid, never of placement.
    pub fn arrivals_before(&mut self, until_ns: u64) -> Vec<(u64, u64)> {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut out = Vec::new();
        loop {
            if self.lookahead.is_none() {
                if self.stream_done {
                    break;
                }
                let t = self
                    .spec
                    .tenant
                    .arrival
                    .next_arrival_ns(self.cursor_ns, &mut self.arrival_rng);
                if t >= self.end_ns {
                    self.stream_done = true;
                    break;
                }
                // The nominal service time comes from the dedicated
                // service stream, consumed strictly in arrival order.
                let d = &self.spec.tenant.demand;
                let u: f64 = self.service_rng.gen_range(0.0..1.0);
                let factor = 1.0 - d.service_jitter + 2.0 * d.service_jitter * u;
                let nominal = ((d.service_ns() as f64 * factor) as u64).max(1);
                self.cursor_ns = t;
                for word in [t, nominal] {
                    self.digest = (self.digest ^ word).wrapping_mul(PRIME);
                }
                self.generated += 1;
                self.lookahead = Some((t, nominal));
            }
            let (t, nominal) = self.lookahead.expect("filled above");
            if t >= until_ns {
                break;
            }
            self.lookahead = None;
            out.push((t, nominal));
        }
        out
    }

    /// Pushes work into the unplaced backlog, dropping on overflow.
    pub fn carry(&mut self, requests: impl IntoIterator<Item = (u64, u64)>) {
        let cap = self.spec.tenant.demand.queue_cap as usize;
        for req in requests {
            if self.carried.len() < cap {
                self.carried.push_back(req);
            } else {
                self.dropped_unplaced += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::scenario::cluster_library;

    fn job_spec() -> JobSpec {
        cluster_library()[0].jobs[0].clone()
    }

    #[test]
    fn job_seeds_avoid_the_host_seed_space() {
        for job in 0..64u64 {
            for stream in 0..2 {
                let s = derive_job_seed(7, job, stream);
                for host in 0..1024u64 {
                    assert_ne!(s, derive_cell_seed(7, host));
                }
            }
        }
    }

    #[test]
    fn generation_is_independent_of_window_chopping() {
        let spec = job_spec();
        let mut coarse = JobState::new(0, spec.clone(), 11, 1_000_000_000);
        let mut fine = JobState::new(0, spec, 11, 1_000_000_000);
        let horizon = 120 * 1_000_000_000u64;
        let all = coarse.arrivals_before(horizon);
        let mut chopped = Vec::new();
        for k in 1..=120u64 {
            chopped.extend(fine.arrivals_before(k * 1_000_000_000));
        }
        assert_eq!(all, chopped);
        assert_eq!(coarse.digest, fine.digest);
        assert_eq!(coarse.generated, fine.generated);
        assert!(!all.is_empty());
    }

    #[test]
    fn stream_ends_at_the_duration_boundary() {
        let mut spec = job_spec();
        spec.submit_tick = 4;
        spec.duration_ticks = 8;
        let mut job = JobState::new(0, spec, 3, 1_000_000_000);
        let arr = job.arrivals_before(60 * 1_000_000_000);
        assert!(job.stream_done());
        assert!(arr
            .iter()
            .all(|(t, _)| (4_000_000_000..12_000_000_000).contains(t)));
        assert!(job.arrivals_before(120 * 1_000_000_000).is_empty());
    }

    #[test]
    fn carry_bounds_the_backlog() {
        let mut job = JobState::new(0, job_spec(), 5, 1_000_000_000);
        let cap = job.spec.tenant.demand.queue_cap as usize;
        job.carry((0..cap as u64 + 10).map(|i| (i, 1)));
        assert_eq!(job.carried.len(), cap);
        assert_eq!(job.dropped_unplaced, 10);
    }

    #[test]
    fn validation_rejects_degenerate_jobs() {
        let mut s = job_spec();
        s.name.clear();
        assert!(s.validate().is_err());
        let mut s = job_spec();
        s.duration_ticks = 0;
        assert!(s.validate().is_err());
        let mut s = job_spec();
        s.tenant.class = AppClass::Sensitive;
        assert!(s.validate().is_err());
        assert!(job_spec().validate().is_ok());
    }
}
