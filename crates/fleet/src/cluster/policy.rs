//! Cluster scheduling policies: where movable jobs run.
//!
//! [`ClusterPolicy`] is the object-safe decision interface of the cluster
//! plane, mirroring how [`stayaway_core::ControlPolicy`] abstracts the
//! per-host plane: at every epoch boundary the runner hands the policy a
//! read-only view of every live job ([`JobView`]) and every host
//! ([`HostSnapshot`]) and gets back placement verbs
//! ([`ClusterAction`]). Policies are deliberately pure functions of those
//! views (plus private counters), never of engine internals, so swapping
//! one in can only change *where* work runs — the job request streams are
//! placement-independent by construction.
//!
//! [`ClusterPolicySpec`] ships four planes:
//!
//! * `score` — interference-aware scoring: predicted post-placement
//!   oversubscription per resource, weighted by the host's recent QoS
//!   deficit, its frozen-job count (the local Stay-Away controller is
//!   already throttling there) and the registry template's violation
//!   history for its sensitive app; migrates away from hosts whose epoch
//!   went bad.
//! * `least-loaded` — classic utilisation-greedy placement, blind to QoS.
//! * `random` — seeded uniform placement.
//! * `none` — throttle-only Stay-Away: static round-robin, never
//!   migrates; all protection is left to the per-host controllers.

use crate::cluster::action::ClusterAction;
use crate::cluster::job::JobSpec;
use crate::seed::derive_cell_seed;
use crate::FleetError;
use serde::{Deserialize, Serialize};
use stayaway_telemetry::{HostSpec, QosSummary};
use stayaway_workload::HostLoad;

/// How many epochs a job may be deferred before the score policy places
/// it anyway (starvation guard).
const MAX_DEFER_EPOCHS: u64 = 6;

/// Epochs a job must stay put after a placement change before the score
/// policy will migrate it.
const MIGRATION_COOLDOWN_EPOCHS: u64 = 2;

/// Read-only per-host state handed to cluster policies at an epoch
/// boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostSnapshot {
    /// Host index.
    pub idx: usize,
    /// Host name (from the scenario).
    pub name: String,
    /// Host capacities.
    pub spec: HostSpec,
    /// Instantaneous resource rates and occupancy at the boundary.
    pub load: HostLoad,
    /// Mean total CPU rate (cores) over the last epoch.
    pub mean_cpu: f64,
    /// Sensitive QoS accounting over the last epoch only.
    pub epoch_qos: QosSummary,
    /// Batch tenants (resident or movable) currently frozen here by the
    /// host controller — it is already fighting interference.
    pub frozen_jobs: usize,
    /// Ids of the movable jobs currently placed here.
    pub placed_jobs: Vec<usize>,
    /// Violation count of the registry template for this host's
    /// sensitive app, when one is published — a prior on how
    /// interference-prone the resident is.
    pub template_violations: Option<u64>,
}

impl HostSnapshot {
    /// Fraction of the last epoch's active ticks that violated QoS.
    pub fn epoch_violation_fraction(&self) -> f64 {
        1.0 - self.epoch_qos.satisfaction()
    }
}

/// Read-only per-job state handed to cluster policies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobView {
    /// Job id (index into the scenario's job list).
    pub id: usize,
    /// Job name.
    pub name: String,
    /// Current host, when placed.
    pub placement: Option<usize>,
    /// Requests pending for this job (host queue + in flight when placed,
    /// carried backlog when not).
    pub pending: u64,
    /// Epochs spent waiting in the admission queue so far.
    pub queued_epochs: u64,
    /// Epoch of the last placement change.
    pub last_move_epoch: u64,
    /// Completed migrations.
    pub migrations: u64,
    /// True once the job's arrival stream has ended (it only drains now).
    pub stream_done: bool,
    /// Estimated steady-state demand if placed: rates via Little's law
    /// (`mean_rps × service_time`, capped by the container pool),
    /// occupancy from the estimated container count.
    pub est: HostLoad,
}

impl JobView {
    /// Builds the view's demand estimate from a job spec.
    pub(crate) fn estimate(spec: &JobSpec) -> HostLoad {
        let d = &spec.tenant.demand;
        let service_secs = d.service_ns() as f64 / 1e9;
        let slots = (d.concurrency as u64 * d.max_containers as u64) as f64;
        let concurrent = (spec.tenant.arrival.mean_rps() * service_secs).min(slots);
        let containers = (concurrent / d.concurrency as f64)
            .ceil()
            .clamp(1.0, d.max_containers as f64);
        HostLoad {
            cpu_rate: concurrent * d.cpu_per_invocation,
            membw_rate: concurrent * d.membw_per_invocation,
            disk_rate: concurrent * d.disk_per_invocation,
            net_rate: concurrent * d.net_per_invocation,
            mem_mb: containers * d.container_mb,
            cache_mb: containers * d.cache_mb,
        }
    }
}

/// An object-safe cluster scheduling policy.
///
/// `decide` is called once per epoch with every live job (placed and
/// waiting, in job-id order) and every host (in host-index order). Jobs
/// the policy does not mention keep their current state; invalid actions
/// are counted and dropped by the runner, never applied.
pub trait ClusterPolicy: Send {
    /// Canonical policy name (CLI token).
    fn name(&self) -> &'static str;

    /// Decides this epoch's placement actions.
    fn decide(
        &mut self,
        epoch: u64,
        jobs: &[JobView],
        hosts: &[HostSnapshot],
    ) -> Vec<ClusterAction>;
}

/// Declarative choice of cluster scheduling plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterPolicySpec {
    /// Interference-aware scoring placement with migration.
    Score,
    /// Uniform random placement (seeded).
    Random,
    /// Lowest CPU-utilisation host wins.
    LeastLoaded,
    /// Throttle-only Stay-Away: static round-robin, no migration.
    NoPlacement,
}

impl ClusterPolicySpec {
    /// The canonical policy name, matching [`ClusterPolicy::name`].
    pub fn name(&self) -> &'static str {
        match self {
            ClusterPolicySpec::Score => "score",
            ClusterPolicySpec::Random => "random",
            ClusterPolicySpec::LeastLoaded => "least-loaded",
            ClusterPolicySpec::NoPlacement => "none",
        }
    }

    /// Parses a CLI policy token: `score`, `random`,
    /// `least-loaded`/`leastloaded`, `none`/`throttle-only`.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] for an unknown token.
    pub fn parse(token: &str) -> Result<Self, FleetError> {
        match token.trim().to_ascii_lowercase().as_str() {
            "score" => Ok(ClusterPolicySpec::Score),
            "random" => Ok(ClusterPolicySpec::Random),
            "least-loaded" | "leastloaded" => Ok(ClusterPolicySpec::LeastLoaded),
            "none" | "throttle-only" => Ok(ClusterPolicySpec::NoPlacement),
            other => Err(FleetError::InvalidConfig {
                reason: format!(
                    "unknown cluster policy '{other}' (expected score|random|least-loaded|none)"
                ),
            }),
        }
    }

    /// Every spec, in comparison-table order.
    pub fn all() -> [ClusterPolicySpec; 4] {
        [
            ClusterPolicySpec::Score,
            ClusterPolicySpec::Random,
            ClusterPolicySpec::LeastLoaded,
            ClusterPolicySpec::NoPlacement,
        ]
    }

    /// Instantiates the policy. `seed` feeds the random baseline;
    /// `migration` gates the score policy's migration verb.
    pub fn build(&self, seed: u64, migration: bool) -> Box<dyn ClusterPolicy> {
        match self {
            ClusterPolicySpec::Score => Box::new(ScorePolicy { migration }),
            ClusterPolicySpec::Random => Box::new(RandomPolicy { seed, draws: 0 }),
            ClusterPolicySpec::LeastLoaded => Box::new(LeastLoaded),
            ClusterPolicySpec::NoPlacement => Box::new(NoPlacement),
        }
    }
}

/// Throttle-only Stay-Away: job `j` always runs on host `j mod n`.
struct NoPlacement;

impl ClusterPolicy for NoPlacement {
    fn name(&self) -> &'static str {
        "none"
    }

    fn decide(&mut self, _: u64, jobs: &[JobView], hosts: &[HostSnapshot]) -> Vec<ClusterAction> {
        jobs.iter()
            .filter(|j| j.placement.is_none())
            .map(|j| ClusterAction::Admit {
                job: j.id,
                host: j.id % hosts.len(),
            })
            .collect()
    }
}

/// Seeded uniform placement: a splitmix64-derived draw per admission.
struct RandomPolicy {
    seed: u64,
    draws: u64,
}

impl ClusterPolicy for RandomPolicy {
    fn name(&self) -> &'static str {
        "random"
    }

    fn decide(&mut self, _: u64, jobs: &[JobView], hosts: &[HostSnapshot]) -> Vec<ClusterAction> {
        jobs.iter()
            .filter(|j| j.placement.is_none())
            .map(|j| {
                let draw = derive_cell_seed(self.seed, self.draws);
                self.draws += 1;
                ClusterAction::Admit {
                    job: j.id,
                    host: (draw % hosts.len() as u64) as usize,
                }
            })
            .collect()
    }
}

/// Utilisation-greedy placement: lowest instantaneous CPU share wins.
struct LeastLoaded;

impl ClusterPolicy for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn decide(&mut self, _: u64, jobs: &[JobView], hosts: &[HostSnapshot]) -> Vec<ClusterAction> {
        // Placements made this epoch must be visible to the next pick, or
        // every waiting job piles onto the same idle host.
        let mut extra = vec![0.0f64; hosts.len()];
        jobs.iter()
            .filter(|j| j.placement.is_none())
            .map(|j| {
                let host = argmin(hosts.iter().map(|h| {
                    (h.load.cpu_rate + extra[h.idx]) / h.spec.cpu_cores.max(f64::MIN_POSITIVE)
                }))
                .expect("at least one host");
                extra[host] += j.est.cpu_rate;
                ClusterAction::Admit { job: j.id, host }
            })
            .collect()
    }
}

/// Index of the smallest value (first wins ties) — deterministic argmin.
fn argmin(values: impl Iterator<Item = f64>) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, v) in values.enumerate() {
        if best.is_none_or(|(_, b)| v < b) {
            best = Some((i, v));
        }
    }
    best.map(|(i, _)| i)
}

/// Interference-aware scoring placement (the cluster-level Stay-Away).
struct ScorePolicy {
    migration: bool,
}

impl ScorePolicy {
    /// Predicted badness of placing demand `add` on host `h`, given the
    /// demand `extra` already routed there this epoch. Oversubscription
    /// overflow per resource (how far past capacity the placement pushes
    /// the host), amplified by the host's observed interference risk,
    /// plus a small utilisation term so healthy hosts tie-break toward
    /// the emptiest one.
    fn score(h: &HostSnapshot, extra: &HostLoad, add: &HostLoad) -> f64 {
        let over = |used: f64, pending: f64, more: f64, cap: f64| {
            ((used + pending + more) / cap.max(f64::MIN_POSITIVE) - 1.0).max(0.0)
        };
        // The epoch-mean CPU rate sees through momentary freezes at the
        // boundary; occupancy resources use the instantaneous snapshot.
        let cpu_used = h.load.cpu_rate.max(h.mean_cpu);
        let overflow = over(cpu_used, extra.cpu_rate, add.cpu_rate, h.spec.cpu_cores)
            + over(
                h.load.membw_rate,
                extra.membw_rate,
                add.membw_rate,
                h.spec.membw_mbps,
            )
            + over(
                h.load.disk_rate,
                extra.disk_rate,
                add.disk_rate,
                h.spec.disk_mbps,
            )
            + over(
                h.load.net_rate,
                extra.net_rate,
                add.net_rate,
                h.spec.net_mbps,
            )
            + over(h.load.cache_mb, extra.cache_mb, add.cache_mb, h.spec.llc_mb)
            + over(h.load.mem_mb, extra.mem_mb, add.mem_mb, h.spec.ram_mb);
        let risk = Self::risk(h);
        let cpu_util =
            (cpu_used + extra.cpu_rate + add.cpu_rate) / h.spec.cpu_cores.max(f64::MIN_POSITIVE);
        overflow * (1.0 + risk) + 0.5 * risk + 0.2 * cpu_util
    }

    /// Observed interference risk of a host: recent QoS deficit, jobs the
    /// local controller already froze, and the registry template's
    /// violation history for the resident sensitive app.
    fn risk(h: &HostSnapshot) -> f64 {
        h.epoch_violation_fraction()
            + (1.0 - h.epoch_qos.mean_qos())
            + 0.3 * h.frozen_jobs as f64
            + 0.05 * (h.template_violations.unwrap_or(0) as f64).ln_1p()
    }

    /// True when the job's memory footprint fits host `h` right now.
    fn fits(h: &HostSnapshot, extra: &HostLoad, add: &HostLoad) -> bool {
        h.load.mem_mb + extra.mem_mb + add.mem_mb <= h.spec.ram_mb
    }

    /// The overflow the job would cause on host `h` even if it were
    /// completely empty — demand the job brings with it wherever it goes.
    /// Deferral only makes sense for badness *beyond* this floor: waiting
    /// never shrinks the job's own appetite.
    fn intrinsic(h: &HostSnapshot, add: &HostLoad) -> f64 {
        let over = |x: f64, cap: f64| (x / cap.max(f64::MIN_POSITIVE) - 1.0).max(0.0);
        over(add.cpu_rate, h.spec.cpu_cores)
            + over(add.membw_rate, h.spec.membw_mbps)
            + over(add.disk_rate, h.spec.disk_mbps)
            + over(add.net_rate, h.spec.net_mbps)
            + over(add.cache_mb, h.spec.llc_mb)
            + over(add.mem_mb, h.spec.ram_mb)
    }
}

impl ClusterPolicy for ScorePolicy {
    fn name(&self) -> &'static str {
        "score"
    }

    fn decide(
        &mut self,
        epoch: u64,
        jobs: &[JobView],
        hosts: &[HostSnapshot],
    ) -> Vec<ClusterAction> {
        let mut actions = Vec::new();
        // Demand routed to each host earlier in this same epoch, so
        // back-to-back placements see each other.
        let mut extra = vec![HostLoad::default(); hosts.len()];
        let stack = |e: &mut HostLoad, add: &HostLoad| {
            e.cpu_rate += add.cpu_rate;
            e.membw_rate += add.membw_rate;
            e.disk_rate += add.disk_rate;
            e.net_rate += add.net_rate;
            e.mem_mb += add.mem_mb;
            e.cache_mb += add.cache_mb;
        };

        for j in jobs.iter().filter(|j| j.placement.is_none()) {
            let fitting: Vec<&HostSnapshot> = hosts
                .iter()
                .filter(|h| Self::fits(h, &extra[h.idx], &j.est))
                .collect();
            if fitting.is_empty() {
                // No host has the memory: the job genuinely cannot start.
                actions.push(ClusterAction::Queue { job: j.id });
                continue;
            }
            let pick = argmin(
                fitting
                    .iter()
                    .map(|h| Self::score(h, &extra[h.idx], &j.est)),
            )
            .expect("non-empty candidates");
            let host = fitting[pick].idx;
            let best = Self::score(fitting[pick], &extra[host], &j.est);
            // Capacity exists but every placement oversubscribes badly
            // beyond what the job would cost on an empty host: defer
            // (bounded — a long wait beats starving the job).
            let floor = Self::intrinsic(fitting[pick], &j.est);
            if best - floor > 1.0 && j.queued_epochs < MAX_DEFER_EPOCHS {
                actions.push(ClusterAction::Defer { job: j.id });
                continue;
            }
            stack(&mut extra[host], &j.est);
            actions.push(ClusterAction::Admit { job: j.id, host });
        }

        if self.migration {
            // Rescue pass: if an epoch went bad on some host, move its
            // heaviest still-streaming job somewhere meaningfully better.
            let mut moved_this_epoch = 0;
            for h in hosts {
                if moved_this_epoch >= 2 || h.epoch_violation_fraction() < 0.25 {
                    continue;
                }
                let candidate = h
                    .placed_jobs
                    .iter()
                    .filter_map(|id| jobs.iter().find(|j| j.id == *id))
                    .filter(|j| {
                        !j.stream_done
                            && epoch.saturating_sub(j.last_move_epoch) >= MIGRATION_COOLDOWN_EPOCHS
                    })
                    .max_by(|a, b| {
                        let weight = |j: &JobView| j.est.cpu_rate + j.est.membw_rate / 100.0;
                        weight(a).total_cmp(&weight(b)).then(b.id.cmp(&a.id))
                    });
                let Some(job) = candidate else { continue };
                let here = Self::score(h, &extra[h.idx], &HostLoad::default());
                let elsewhere = hosts
                    .iter()
                    .filter(|to| to.idx != h.idx && Self::fits(to, &extra[to.idx], &job.est))
                    .map(|to| (to.idx, Self::score(to, &extra[to.idx], &job.est)))
                    .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                if let Some((to, score)) = elsewhere {
                    if score + 0.5 < here {
                        stack(&mut extra[to], &job.est);
                        actions.push(ClusterAction::Migrate {
                            job: job.id,
                            from: h.idx,
                            to,
                        });
                        moved_this_epoch += 1;
                    }
                }
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::scenario::cluster_by_name;

    fn snapshot(idx: usize, cpu_rate: f64) -> HostSnapshot {
        HostSnapshot {
            idx,
            name: format!("h{idx}"),
            spec: HostSpec::default(),
            load: HostLoad {
                cpu_rate,
                ..HostLoad::default()
            },
            mean_cpu: cpu_rate,
            epoch_qos: QosSummary::new(),
            frozen_jobs: 0,
            placed_jobs: Vec::new(),
            template_violations: None,
        }
    }

    fn view(id: usize) -> JobView {
        let spec = &cluster_by_name("hotspot").unwrap().jobs[id];
        JobView {
            id,
            name: spec.name.clone(),
            placement: None,
            pending: 0,
            queued_epochs: 0,
            last_move_epoch: 0,
            migrations: 0,
            stream_done: false,
            est: JobView::estimate(spec),
        }
    }

    #[test]
    fn parse_accepts_canonical_names() {
        assert_eq!(
            ClusterPolicySpec::parse("score").unwrap(),
            ClusterPolicySpec::Score
        );
        assert_eq!(
            ClusterPolicySpec::parse("LEAST-LOADED").unwrap(),
            ClusterPolicySpec::LeastLoaded
        );
        assert_eq!(
            ClusterPolicySpec::parse("throttle-only").unwrap(),
            ClusterPolicySpec::NoPlacement
        );
        assert_eq!(
            ClusterPolicySpec::parse("random").unwrap(),
            ClusterPolicySpec::Random
        );
        assert!(ClusterPolicySpec::parse("bogus").is_err());
        for spec in ClusterPolicySpec::all() {
            assert_eq!(ClusterPolicySpec::parse(spec.name()).unwrap(), spec);
            assert_eq!(spec.build(1, true).name(), spec.name());
        }
    }

    #[test]
    fn estimates_respect_littles_law_and_pool_caps() {
        let est = view(2).est; // batch-crunch: 4 rps × 0.4 s, 3 × 1-wide
        assert!((est.cpu_rate - 1.6).abs() < 1e-9);
        assert!(est.mem_mb >= 256.0);
        let heavy = view(1).est; // mem-sweep: pool-capped
        assert!(heavy.membw_rate > 0.0);
    }

    #[test]
    fn no_placement_is_static_round_robin() {
        let hosts = [snapshot(0, 0.0), snapshot(1, 3.9)];
        let jobs = [view(0), view(1), view(2)];
        let mut p = ClusterPolicySpec::NoPlacement.build(7, true);
        let actions = p.decide(0, &jobs, &hosts);
        assert_eq!(
            actions,
            vec![
                ClusterAction::Admit { job: 0, host: 0 },
                ClusterAction::Admit { job: 1, host: 1 },
                ClusterAction::Admit { job: 2, host: 0 },
            ]
        );
    }

    #[test]
    fn least_loaded_spreads_instead_of_piling_on() {
        let hosts = [snapshot(0, 0.5), snapshot(1, 0.1)];
        let jobs = [view(2), view(3)];
        let mut p = ClusterPolicySpec::LeastLoaded.build(7, true);
        let actions = p.decide(0, &jobs, &hosts);
        let targets: Vec<usize> = actions
            .iter()
            .map(|a| match a {
                ClusterAction::Admit { host, .. } => *host,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(targets[0], 1);
        // The second placement sees the first one's load.
        assert_eq!(targets[1], 0);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let hosts = [snapshot(0, 0.0), snapshot(1, 0.0), snapshot(2, 0.0)];
        let jobs = [view(0), view(1), view(2), view(3)];
        let run = |seed| {
            ClusterPolicySpec::Random
                .build(seed, true)
                .decide(0, &jobs, &hosts)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn score_prefers_the_healthy_idle_host() {
        let mut busy = snapshot(0, 3.8);
        busy.epoch_qos.record(0.4, true);
        busy.frozen_jobs = 2;
        let idle = snapshot(1, 0.2);
        let mut p = ClusterPolicySpec::Score.build(7, true);
        let actions = p.decide(0, &[view(2)], &[busy, idle]);
        assert_eq!(actions, vec![ClusterAction::Admit { job: 2, host: 1 }]);
    }

    #[test]
    fn score_queues_when_memory_is_exhausted() {
        let mut full = snapshot(0, 0.0);
        full.load.mem_mb = full.spec.ram_mb;
        let mut p = ClusterPolicySpec::Score.build(7, true);
        let actions = p.decide(0, &[view(2)], &[full]);
        assert_eq!(actions, vec![ClusterAction::Queue { job: 2 }]);
    }

    #[test]
    fn score_migrates_away_from_a_violating_host() {
        let mut bad = snapshot(0, 3.9);
        for _ in 0..4 {
            bad.epoch_qos.record(0.3, true);
        }
        bad.placed_jobs = vec![2];
        let good = snapshot(1, 0.1);
        let mut placed = view(2);
        placed.placement = Some(0);
        let mut p = ClusterPolicySpec::Score.build(7, true);
        let actions = p.decide(5, &[placed.clone()], &[bad.clone(), good.clone()]);
        assert_eq!(
            actions,
            vec![ClusterAction::Migrate {
                job: 2,
                from: 0,
                to: 1
            }]
        );
        // Migration disabled: same situation, no action.
        let mut frozen = ClusterPolicySpec::Score.build(7, false);
        assert!(frozen
            .decide(5, &[placed.clone()], &[bad.clone(), good])
            .is_empty());
        // Cooldown: a job that just moved stays put.
        placed.last_move_epoch = 5;
        assert!(p.decide(6, &[placed], &[bad, snapshot(1, 0.1)]).is_empty());
    }
}
