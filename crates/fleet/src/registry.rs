//! The cross-host template registry.
//!
//! Cells publish the [`Template`]s they learn, keyed by sensitive-workload
//! name; newly started cells import the best match and begin life already
//! knowing the violation-states of their workload (§6 at fleet scale).
//!
//! **Locking discipline.** The registry is shared as
//! `Arc<TemplateRegistry>` with one internal [`RwLock`]: lookups take the
//! read lock, publishes the write lock, and no lock is ever held across a
//! cell run. **Conflict resolution is order-independent**: of two
//! templates for the same key, the one with more violation-states wins
//! (more states, then lower source cell, as tie-breakers), so the final
//! registry contents do not depend on which worker published first.

use crate::FleetError;
use serde::{Deserialize, Serialize};
use stayaway_statespace::Template;
use std::collections::BTreeMap;
use std::sync::RwLock;

/// One registered template plus its provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegistryEntry {
    /// Sensitive-workload key (equals `template.sensitive_app()`).
    pub sensitive: String,
    /// The learned template.
    pub template: Template,
    /// Index of the cell that captured it.
    pub source_cell: usize,
}

impl RegistryEntry {
    /// The order-independent quality ranking: more violation knowledge
    /// first, richer maps second, earlier cells as the final tie-break.
    fn rank(&self) -> (usize, usize, std::cmp::Reverse<usize>) {
        (
            self.template.violation_count(),
            self.template.len(),
            std::cmp::Reverse(self.source_cell),
        )
    }
}

/// A concurrent map from sensitive-workload name to the best known
/// [`Template`] for it.
#[derive(Debug, Default)]
pub struct TemplateRegistry {
    inner: RwLock<BTreeMap<String, RegistryEntry>>,
}

impl TemplateRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        TemplateRegistry::default()
    }

    /// Number of registered sensitive workloads.
    pub fn len(&self) -> usize {
        self.inner.read().expect("registry lock poisoned").len()
    }

    /// True when nothing has been published yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Publishes a template under its sensitive-workload key. Empty
    /// templates are ignored (a cell that learned nothing has nothing to
    /// teach). Returns true when the entry became (or stayed, if
    /// identical) the registered best.
    pub fn publish(&self, template: Template, source_cell: usize) -> bool {
        if template.is_empty() {
            return false;
        }
        let entry = RegistryEntry {
            sensitive: template.sensitive_app().to_string(),
            template,
            source_cell,
        };
        let mut map = self.inner.write().expect("registry lock poisoned");
        match map.get_mut(&entry.sensitive) {
            Some(existing) if existing.rank() >= entry.rank() => false,
            Some(existing) => {
                *existing = entry;
                true
            }
            None => {
                map.insert(entry.sensitive.clone(), entry);
                true
            }
        }
    }

    /// True when a template is registered for this sensitive workload.
    pub fn contains(&self, sensitive: &str) -> bool {
        self.inner
            .read()
            .expect("registry lock poisoned")
            .contains_key(sensitive)
    }

    /// The best registered template for a sensitive workload, if any.
    pub fn lookup(&self, sensitive: &str) -> Option<RegistryEntry> {
        self.inner
            .read()
            .expect("registry lock poisoned")
            .get(sensitive)
            .cloned()
    }

    /// Every registered entry, ordered by sensitive-workload key.
    pub fn snapshot(&self) -> Vec<RegistryEntry> {
        self.inner
            .read()
            .expect("registry lock poisoned")
            .values()
            .cloned()
            .collect()
    }

    /// Serialises the registry (its ordered snapshot) as JSON — the wire
    /// format a real multi-host deployment would gossip between hosts.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Registry`] on serialisation failure.
    pub fn to_json(&self) -> Result<String, FleetError> {
        serde_json::to_string_pretty(&self.snapshot())
            .map_err(|e| FleetError::Registry(e.to_string()))
    }

    /// Rebuilds a registry from [`TemplateRegistry::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Registry`] on malformed input.
    pub fn from_json(json: &str) -> Result<Self, FleetError> {
        let entries: Vec<RegistryEntry> =
            serde_json::from_str(json).map_err(|e| FleetError::Registry(e.to_string()))?;
        let registry = TemplateRegistry::new();
        for entry in entries {
            if entry.sensitive != entry.template.sensitive_app() {
                return Err(FleetError::Registry(format!(
                    "entry key `{}` does not match template app `{}`",
                    entry.sensitive,
                    entry.template.sensitive_app()
                )));
            }
            registry.publish(entry.template, entry.source_cell);
        }
        Ok(registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn template(app: &str, violations: usize, safes: usize) -> Template {
        let mut t = Template::new(app, 2).unwrap();
        for i in 0..violations {
            t.push(vec![0.9, 0.1 * (i % 10) as f64], true).unwrap();
        }
        for i in 0..safes {
            t.push(vec![0.1, 0.1 * (i % 10) as f64], false).unwrap();
        }
        t
    }

    #[test]
    fn publish_and_lookup_round_trip() {
        let r = TemplateRegistry::new();
        assert!(r.is_empty());
        assert!(r.publish(template("vlc", 2, 3), 0));
        assert_eq!(r.len(), 1);
        let entry = r.lookup("vlc").unwrap();
        assert_eq!(entry.source_cell, 0);
        assert_eq!(entry.template.violation_count(), 2);
        assert!(r.lookup("webservice-mix").is_none());
    }

    #[test]
    fn empty_templates_are_not_registered() {
        let r = TemplateRegistry::new();
        assert!(!r.publish(template("vlc", 0, 0), 0));
        assert!(r.is_empty());
    }

    #[test]
    fn conflict_resolution_is_order_independent() {
        let better = template("vlc", 5, 5);
        let worse = template("vlc", 2, 8);
        // Publish in both orders: the same winner must emerge.
        let a = TemplateRegistry::new();
        a.publish(worse.clone(), 7);
        a.publish(better.clone(), 3);
        let b = TemplateRegistry::new();
        b.publish(better.clone(), 3);
        b.publish(worse.clone(), 7);
        assert_eq!(a.lookup("vlc"), b.lookup("vlc"));
        assert_eq!(a.lookup("vlc").unwrap().source_cell, 3);
        // Equal quality: the lower cell index wins, in both orders.
        let c = TemplateRegistry::new();
        c.publish(better.clone(), 9);
        c.publish(better.clone(), 4);
        let d = TemplateRegistry::new();
        d.publish(better.clone(), 4);
        d.publish(better, 9);
        assert_eq!(c.lookup("vlc").unwrap().source_cell, 4);
        assert_eq!(d.lookup("vlc").unwrap().source_cell, 4);
    }

    #[test]
    fn keys_are_isolated() {
        let r = TemplateRegistry::new();
        r.publish(template("vlc", 1, 1), 0);
        r.publish(template("webservice-mix", 3, 1), 1);
        assert_eq!(r.len(), 2);
        assert_eq!(r.lookup("vlc").unwrap().template.violation_count(), 1);
        let snap = r.snapshot();
        // Snapshot is key-ordered.
        assert_eq!(snap[0].sensitive, "vlc");
        assert_eq!(snap[1].sensitive, "webservice-mix");
    }

    #[test]
    fn json_round_trip_preserves_contents() {
        let r = TemplateRegistry::new();
        r.publish(template("vlc", 2, 4), 5);
        r.publish(template("webservice-mix", 1, 7), 2);
        let json = r.to_json().unwrap();
        let back = TemplateRegistry::from_json(&json).unwrap();
        assert_eq!(r.snapshot(), back.snapshot());
        // And the re-serialisation is byte-identical.
        assert_eq!(json, back.to_json().unwrap());
    }

    #[test]
    fn from_json_rejects_garbage_and_mismatched_keys() {
        assert!(TemplateRegistry::from_json("not json").is_err());
        let r = TemplateRegistry::new();
        r.publish(template("vlc", 1, 1), 0);
        let tampered = r
            .to_json()
            .unwrap()
            .replace("\"sensitive\": \"vlc\"", "\"sensitive\": \"vlc2\"");
        assert!(tampered.contains("vlc2"), "replacement must have matched");
        assert!(TemplateRegistry::from_json(&tampered).is_err());
    }
}
