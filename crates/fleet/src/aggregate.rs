//! Fleet-level rollups of per-cell outcomes.
//!
//! Aggregation folds cell results in cell-index order, so every derived
//! float is a fixed-order sum — bit-identical regardless of how cells were
//! scheduled across workers. The JSON rendering therefore is too.
//!
//! Not to be confused with `stayaway_core::aggregate`, which shares the
//! name but not the job: that module aggregates *within one observation*
//! (batch VMs → one logical VM, §5) to build the controller's measurement
//! vector, while this one aggregates *across finished cells* into fleet
//! and per-policy statistics. The two operate on different inputs at
//! different times and share no code beyond [`stayaway_core::hit_ratio`] —
//! the one genuinely common fold, kept in `stayaway-core` (its single
//! home) and reused here.

use crate::cell::CellOutcome;
use crate::config::FleetConfig;
use crate::FleetError;
use serde::{Deserialize, Serialize};
use stayaway_core::hit_ratio;
use stayaway_obs::{merge_streams, EventRecord, MetricsSnapshot};
use stayaway_sim::QosSummary;

/// The distilled result of one cell, embedded in the fleet outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellSummary {
    /// Fleet-wide cell index.
    pub cell: usize,
    /// Scenario the cell ran.
    pub scenario: String,
    /// Sensitive-workload registry key.
    pub sensitive: String,
    /// Canonical name of the policy the cell ran.
    pub policy: String,
    /// Predictor token the cell's controller ran, or `"-"` for baseline
    /// policies (which carry no prediction plane).
    pub predictor: String,
    /// Full source token the cell sensed through (`sim`, `trace:<path>`,
    /// `procfs` or `workload:<scenario>`).
    pub source: String,
    /// The cell's derived seed.
    pub seed: u64,
    /// Ticks the sensitive application was active.
    pub active_ticks: u64,
    /// QoS violation ticks.
    pub violations: u64,
    /// Fraction of active ticks meeting the QoS requirement.
    pub satisfaction: f64,
    /// Mean machine utilisation over the run.
    pub mean_utilization: f64,
    /// Mean utilisation gained from batch co-location.
    pub gained_utilization: f64,
    /// Nominal batch work completed.
    pub batch_work: f64,
    /// Throttle actions issued by the controller.
    pub throttles: u64,
    /// Resume actions issued by the controller.
    pub resumes: u64,
    /// Representative states learned.
    pub states: usize,
    /// Events evicted from the bounded decision log.
    pub events_dropped: u64,
    /// True when the cell warm-started from a registry template.
    pub imported_template: bool,
    /// True when the cell's first throttle was proactive.
    pub first_throttle_proactive: bool,
}

impl CellSummary {
    fn from_outcome(o: &CellOutcome) -> Self {
        CellSummary {
            cell: o.idx,
            scenario: o.scenario.clone(),
            sensitive: o.sensitive.clone(),
            policy: o.policy.clone(),
            predictor: o.predictor.clone(),
            source: o.source.clone(),
            seed: o.seed,
            active_ticks: o.run.qos.active_ticks,
            violations: o.run.qos.violations,
            satisfaction: o.run.qos.satisfaction(),
            mean_utilization: o.run.mean_utilization(),
            gained_utilization: o.run.mean_gained_utilization(o.cpu_capacity),
            batch_work: o.run.batch_work,
            throttles: o.stats.throttles,
            resumes: o.stats.resumes,
            states: o.stats.states,
            events_dropped: o.stats.events_dropped,
            imported_template: o.imported_template,
            first_throttle_proactive: o.first_throttle_proactive,
        }
    }
}

/// Per-policy rollup of the cells that ran one control plane, for
/// mixed-policy fleets (cohort vs control-group comparisons in one run).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyRollup {
    /// Canonical policy name.
    pub policy: String,
    /// Cells that ran this policy.
    pub cells: usize,
    /// Pooled QoS accounting over those cells.
    pub qos: QosSummary,
    /// Mean of those cells' gained (batch) utilisations.
    pub mean_gained_utilization: f64,
    /// Total nominal batch work completed by those cells.
    pub total_batch_work: f64,
    /// Total throttle actions.
    pub throttles: u64,
    /// Total resume actions.
    pub resumes: u64,
    /// Total events evicted from this cohort's bounded decision logs —
    /// surfaces which control plane is churning hardest under memory
    /// pressure.
    pub events_dropped: u64,
    /// Total checked predictions (zero for non-predictive policies).
    pub prediction_checks: u64,
    /// Total checked predictions that matched reality.
    pub prediction_hits: u64,
    /// Total observation samples sanitised before they could poison a
    /// model (sense-stage rejections plus predictor-reported ones).
    pub samples_rejected: u64,
}

impl PolicyRollup {
    fn new(policy: &str) -> Self {
        PolicyRollup {
            policy: policy.to_string(),
            cells: 0,
            qos: QosSummary::new(),
            mean_gained_utilization: 0.0,
            total_batch_work: 0.0,
            throttles: 0,
            resumes: 0,
            events_dropped: 0,
            prediction_checks: 0,
            prediction_hits: 0,
            samples_rejected: 0,
        }
    }

    fn fold(&mut self, o: &CellOutcome) {
        self.cells += 1;
        self.qos.active_ticks += o.run.qos.active_ticks;
        self.qos.violations += o.run.qos.violations;
        self.qos.qos_sum += o.run.qos.qos_sum;
        self.qos.worst = self.qos.worst.min(o.run.qos.worst);
        self.mean_gained_utilization += o.run.mean_gained_utilization(o.cpu_capacity);
        self.total_batch_work += o.run.batch_work;
        self.throttles += o.stats.throttles;
        self.resumes += o.stats.resumes;
        self.events_dropped += o.stats.events_dropped;
        self.prediction_checks += o.stats.prediction_checks;
        self.prediction_hits += o.stats.prediction_hits;
        self.samples_rejected += o.stats.samples_rejected;
    }

    /// QoS satisfaction over this policy's pooled active ticks.
    pub fn satisfaction(&self) -> f64 {
        self.qos.satisfaction()
    }

    /// Prediction accuracy over this policy's pooled checks; `None` when
    /// no prediction was ever checked (non-predictive policies).
    pub fn prediction_accuracy(&self) -> Option<f64> {
        hit_ratio(self.prediction_hits, self.prediction_checks)
    }
}

/// Per-predictor rollup of the Stay-Away cells that ran one prediction
/// plane (DESIGN.md §15), for mixed-predictor fleets and the tournament.
/// Baseline cells (predictor `"-"`) join no predictor rollup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictorRollup {
    /// Canonical predictor token (`kde`, `xapp`, `denoise`, `last-tick`).
    pub predictor: String,
    /// Cells that ran this predictor.
    pub cells: usize,
    /// Pooled QoS accounting over those cells.
    pub qos: QosSummary,
    /// Mean of those cells' gained (batch) utilisations.
    pub mean_gained_utilization: f64,
    /// Total nominal batch work completed by those cells.
    pub total_batch_work: f64,
    /// Total throttle actions.
    pub throttles: u64,
    /// Total resume actions.
    pub resumes: u64,
    /// Total predicted violations.
    pub violations_predicted: u64,
    /// Total checked predictions.
    pub prediction_checks: u64,
    /// Total checked predictions that matched reality.
    pub prediction_hits: u64,
    /// Total observation samples sanitised before they could poison a
    /// model (sense-stage rejections plus predictor-reported ones).
    pub samples_rejected: u64,
}

impl PredictorRollup {
    fn new(predictor: &str) -> Self {
        PredictorRollup {
            predictor: predictor.to_string(),
            cells: 0,
            qos: QosSummary::new(),
            mean_gained_utilization: 0.0,
            total_batch_work: 0.0,
            throttles: 0,
            resumes: 0,
            violations_predicted: 0,
            prediction_checks: 0,
            prediction_hits: 0,
            samples_rejected: 0,
        }
    }

    fn fold(&mut self, o: &CellOutcome) {
        self.cells += 1;
        self.qos.active_ticks += o.run.qos.active_ticks;
        self.qos.violations += o.run.qos.violations;
        self.qos.qos_sum += o.run.qos.qos_sum;
        self.qos.worst = self.qos.worst.min(o.run.qos.worst);
        self.mean_gained_utilization += o.run.mean_gained_utilization(o.cpu_capacity);
        self.total_batch_work += o.run.batch_work;
        self.throttles += o.stats.throttles;
        self.resumes += o.stats.resumes;
        self.violations_predicted += o.stats.violations_predicted;
        self.prediction_checks += o.stats.prediction_checks;
        self.prediction_hits += o.stats.prediction_hits;
        self.samples_rejected += o.stats.samples_rejected;
    }

    /// QoS satisfaction over this predictor's pooled active ticks.
    pub fn satisfaction(&self) -> f64 {
        self.qos.satisfaction()
    }

    /// Tick-level SLO-violation rate over this predictor's pooled active
    /// ticks (0 when the cohort never ran).
    pub fn slo_violation_rate(&self) -> f64 {
        if self.qos.active_ticks == 0 {
            0.0
        } else {
            self.qos.violations as f64 / self.qos.active_ticks as f64
        }
    }

    /// Prediction accuracy over this predictor's pooled checks; `None`
    /// when no verdict was ever checked.
    pub fn prediction_accuracy(&self) -> Option<f64> {
        hit_ratio(self.prediction_hits, self.prediction_checks)
    }
}

/// The aggregated result of one fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetOutcome {
    /// Number of cells run.
    pub cells: usize,
    /// Ticks each cell ran for.
    pub ticks_per_cell: u64,
    /// The fleet seed everything derived from.
    pub fleet_seed: u64,
    /// Whether template sharing was enabled.
    pub share_templates: bool,
    /// Fleet-wide QoS accounting (all cells' active ticks pooled).
    pub qos: QosSummary,
    /// Mean of the cells' mean machine utilisations.
    pub mean_utilization: f64,
    /// Mean of the cells' gained (batch) utilisations.
    pub mean_gained_utilization: f64,
    /// Total nominal batch work completed across the fleet.
    pub total_batch_work: f64,
    /// Total throttle actions.
    pub throttles: u64,
    /// Total resume actions.
    pub resumes: u64,
    /// Total predicted violations.
    pub violations_predicted: u64,
    /// Total checked predictions.
    pub prediction_checks: u64,
    /// Total checked predictions that matched reality.
    pub prediction_hits: u64,
    /// Total events evicted from bounded decision logs.
    pub events_dropped: u64,
    /// Total observation samples sanitised fleet-wide (sense-stage
    /// rejections plus predictor-reported ones).
    pub samples_rejected: u64,
    /// Cells that warm-started from a registry template.
    pub cells_imported: usize,
    /// Cells whose *first* throttle was proactive — the §6 head-start
    /// effect, visible fleet-wide when template sharing is on.
    pub proactive_first_throttles: usize,
    /// Per-policy rollups, in order of first appearance across cells
    /// (deterministic: cell plans are a pure function of the config).
    pub per_policy: Vec<PolicyRollup>,
    /// Per-predictor rollups over the predictive (Stay-Away) cells, in
    /// order of first appearance; empty when no cell ran a predictor.
    pub per_predictor: Vec<PredictorRollup>,
    /// Per-cell summaries, in cell-index order.
    pub per_cell: Vec<CellSummary>,
    /// Fleet-wide metrics rollup: the per-cell registries merged in
    /// cell-index order and reduced to the stable view (latency
    /// histograms stripped to invocation counts, so the rollup is
    /// byte-identical for any worker count); `None` unless
    /// [`FleetConfig::collect_metrics`] was set.
    pub metrics: Option<MetricsSnapshot>,
    /// Same-name histograms skipped during the metrics rollup because
    /// their units disagreed (see
    /// [`stayaway_obs::hist::MergeOutcome`]); zero for
    /// identically-registered cells. Always zero when metrics
    /// collection is off.
    pub metric_unit_mismatches: u64,
    /// The canonical fleet-wide event stream: per-cell flight-recorder
    /// streams merged into `(tick, layer, seq, scope)` order —
    /// byte-identical for any worker count; `None` unless
    /// [`FleetConfig::collect_events`] was set.
    pub events: Option<Vec<EventRecord>>,
}

impl FleetOutcome {
    /// Folds per-cell outcomes (already sorted by cell index) into the
    /// fleet rollup.
    pub fn aggregate(config: &FleetConfig, outcomes: &[CellOutcome]) -> Self {
        let mut qos = QosSummary::new();
        let mut mean_utilization = 0.0;
        let mut mean_gained = 0.0;
        let mut total_batch_work = 0.0;
        let mut throttles = 0;
        let mut resumes = 0;
        let mut violations_predicted = 0;
        let mut prediction_checks = 0;
        let mut prediction_hits = 0;
        let mut events_dropped = 0;
        let mut samples_rejected = 0;
        let mut cells_imported = 0;
        let mut proactive_first_throttles = 0;
        let mut per_policy: Vec<PolicyRollup> = Vec::new();
        let mut per_predictor: Vec<PredictorRollup> = Vec::new();
        let mut metrics: Option<MetricsSnapshot> = None;
        let mut metric_unit_mismatches = 0u64;
        let mut event_streams: Option<Vec<Vec<EventRecord>>> = None;
        for o in outcomes {
            // Merge in cell-index order (outcomes arrive sorted), so the
            // rollup is a fixed-order fold regardless of scheduling.
            if let Some(cell_metrics) = &o.metrics {
                metric_unit_mismatches += metrics
                    .get_or_insert_with(MetricsSnapshot::default)
                    .merge(cell_metrics);
            }
            if let Some(cell_events) = &o.events {
                event_streams
                    .get_or_insert_with(Vec::new)
                    .push(cell_events.clone());
            }
            match per_policy.iter_mut().find(|r| r.policy == o.policy) {
                Some(rollup) => rollup.fold(o),
                None => {
                    let mut rollup = PolicyRollup::new(&o.policy);
                    rollup.fold(o);
                    per_policy.push(rollup);
                }
            }
            if o.predictor != crate::predictor::PredictorSpec::NONE {
                match per_predictor
                    .iter_mut()
                    .find(|r| r.predictor == o.predictor)
                {
                    Some(rollup) => rollup.fold(o),
                    None => {
                        let mut rollup = PredictorRollup::new(&o.predictor);
                        rollup.fold(o);
                        per_predictor.push(rollup);
                    }
                }
            }
            qos.active_ticks += o.run.qos.active_ticks;
            qos.violations += o.run.qos.violations;
            qos.qos_sum += o.run.qos.qos_sum;
            qos.worst = qos.worst.min(o.run.qos.worst);
            mean_utilization += o.run.mean_utilization();
            mean_gained += o.run.mean_gained_utilization(o.cpu_capacity);
            total_batch_work += o.run.batch_work;
            throttles += o.stats.throttles;
            resumes += o.stats.resumes;
            violations_predicted += o.stats.violations_predicted;
            prediction_checks += o.stats.prediction_checks;
            prediction_hits += o.stats.prediction_hits;
            events_dropped += o.stats.events_dropped;
            samples_rejected += o.stats.samples_rejected;
            cells_imported += usize::from(o.imported_template);
            proactive_first_throttles += usize::from(o.first_throttle_proactive);
        }
        for rollup in &mut per_policy {
            rollup.mean_gained_utilization /= rollup.cells.max(1) as f64;
        }
        for rollup in &mut per_predictor {
            rollup.mean_gained_utilization /= rollup.cells.max(1) as f64;
        }
        let n = outcomes.len().max(1) as f64;
        FleetOutcome {
            cells: outcomes.len(),
            ticks_per_cell: config.ticks,
            fleet_seed: config.fleet_seed,
            share_templates: config.share_templates,
            qos,
            mean_utilization: mean_utilization / n,
            mean_gained_utilization: mean_gained / n,
            total_batch_work,
            throttles,
            resumes,
            violations_predicted,
            prediction_checks,
            prediction_hits,
            events_dropped,
            samples_rejected,
            cells_imported,
            proactive_first_throttles,
            per_policy,
            per_predictor,
            per_cell: outcomes.iter().map(CellSummary::from_outcome).collect(),
            metrics: metrics.map(|m| m.stable_view()),
            metric_unit_mismatches,
            events: event_streams.map(merge_streams),
        }
    }

    /// Fleet-wide QoS satisfaction (pooled active ticks).
    pub fn satisfaction(&self) -> f64 {
        self.qos.satisfaction()
    }

    /// Fleet-wide mean QoS value (pooled active ticks).
    pub fn mean_qos(&self) -> f64 {
        self.qos.mean_qos()
    }

    /// Fleet-wide prediction accuracy (pooled checks); `None` when no
    /// prediction was ever checked.
    pub fn prediction_accuracy(&self) -> Option<f64> {
        hit_ratio(self.prediction_hits, self.prediction_checks)
    }

    /// Renders the outcome as pretty JSON. Deterministic: identical
    /// outcomes render to identical bytes.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Registry`] on serialisation failure.
    pub fn to_json(&self) -> Result<String, FleetError> {
        serde_json::to_string_pretty(self).map_err(|e| FleetError::Registry(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{run_cell, CellPlan};
    use crate::policy::PolicySpec;
    use stayaway_core::ControllerConfig;
    use stayaway_sim::scenario::Scenario;

    fn outcomes() -> Vec<CellOutcome> {
        let plans = [
            CellPlan::new(0, 5, Scenario::vlc_with_cpubomb(5), PolicySpec::StayAway),
            CellPlan::new(1, 5, Scenario::vlc_with_twitter(5), PolicySpec::StayAway),
        ];
        plans
            .iter()
            .map(|p| run_cell(p, &ControllerConfig::default(), None, 100).unwrap())
            .collect()
    }

    #[test]
    fn aggregate_pools_qos_and_sums_counters() {
        let outs = outcomes();
        let mut config = FleetConfig::new(2, 1, 5);
        config.ticks = 100;
        let fleet = FleetOutcome::aggregate(&config, &outs);
        assert_eq!(fleet.cells, 2);
        assert_eq!(
            fleet.qos.active_ticks,
            outs[0].run.qos.active_ticks + outs[1].run.qos.active_ticks
        );
        assert_eq!(
            fleet.throttles,
            outs[0].stats.throttles + outs[1].stats.throttles
        );
        assert_eq!(fleet.per_cell.len(), 2);
        assert_eq!(fleet.per_cell[1].cell, 1);
        assert!(fleet.satisfaction() > 0.0 && fleet.satisfaction() <= 1.0);
        assert!(fleet.prediction_accuracy().is_none_or(|a| a <= 1.0));
        // Metrics collection was off, so the rollup is absent.
        assert!(fleet.metrics.is_none());
    }

    #[test]
    fn json_rendering_is_deterministic() {
        let outs = outcomes();
        let mut config = FleetConfig::new(2, 1, 5);
        config.ticks = 100;
        let a = FleetOutcome::aggregate(&config, &outs);
        let b = FleetOutcome::aggregate(&config, &outs);
        assert_eq!(a, b);
        assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());
    }

    #[test]
    fn json_round_trips_through_serde() {
        let outs = outcomes();
        let mut config = FleetConfig::new(2, 1, 5);
        config.ticks = 100;
        let fleet = FleetOutcome::aggregate(&config, &outs);
        let json = fleet.to_json().unwrap();
        let back: FleetOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(fleet, back);
    }

    #[test]
    fn empty_fleet_aggregates_to_neutral_values() {
        let config = FleetConfig::new(1, 1, 0);
        let fleet = FleetOutcome::aggregate(&config, &[]);
        assert_eq!(fleet.cells, 0);
        assert_eq!(fleet.satisfaction(), 1.0);
        assert_eq!(fleet.mean_utilization, 0.0);
    }
}
