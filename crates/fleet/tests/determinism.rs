//! Fleet determinism: the aggregated outcome is a pure function of the
//! configuration — the worker count must not leak into any result bit.

use stayaway_fleet::{Fleet, FleetConfig, SourceSpec, TemplateRegistry};
use std::sync::Arc;

fn config(cells: usize, workers: usize, seed: u64, share: bool) -> FleetConfig {
    let mut c = FleetConfig::new(cells, workers, seed);
    c.ticks = 110;
    c.share_templates = share;
    c
}

#[test]
fn workers_1_and_4_agree_bit_for_bit() {
    let solo = Fleet::new(config(8, 1, 7, false)).unwrap().run().unwrap();
    let pooled = Fleet::new(config(8, 4, 7, false)).unwrap().run().unwrap();
    assert_eq!(solo, pooled);
    // The CLI contract is byte-identical JSON, so compare the rendering
    // too (float formatting included).
    assert_eq!(solo.to_json().unwrap(), pooled.to_json().unwrap());
}

#[test]
fn workers_1_and_4_agree_with_template_sharing() {
    // Sharing is the hard case: the registry is mutated mid-run, so the
    // phased pioneer/follower schedule must hide all scheduling freedom.
    let solo = Fleet::new(config(8, 1, 7, true)).unwrap().run().unwrap();
    let pooled = Fleet::new(config(8, 4, 7, true)).unwrap().run().unwrap();
    assert_eq!(solo, pooled);
    assert_eq!(solo.to_json().unwrap(), pooled.to_json().unwrap());
    assert!(solo.cells_imported > 0, "followers must have warm-started");
}

#[test]
fn mapping_workers_1_and_4_agree_bit_for_bit() {
    // The per-cell mapping-kernel budget (SMACOF sweeps, distance-matrix
    // maintenance) must not leak into any result bit either: chunk
    // boundaries derive from the point count alone, never from the
    // worker count.
    let run = |mapping_workers: usize| {
        let mut c = config(6, 2, 11, false);
        c.mapping_workers = mapping_workers;
        Fleet::new(c).unwrap().run().unwrap()
    };
    let serial = run(1);
    let pooled = run(4);
    assert_eq!(serial, pooled);
    assert_eq!(serial.to_json().unwrap(), pooled.to_json().unwrap());
}

#[test]
fn workload_cells_agree_across_worker_counts() {
    // The request-driven workload substrate must uphold the same
    // contract as the simulator: worker count leaks into no result bit,
    // including the JSON rendering.
    let run = |workers: usize| {
        let mut c = config(8, workers, 7, false);
        c.ticks = 60;
        c.sources = vec![
            SourceSpec::Workload {
                scenario: "multi-tenant-storm".into(),
            },
            SourceSpec::Workload {
                scenario: "cpu-bomb".into(),
            },
        ];
        Fleet::new(c).unwrap().run().unwrap()
    };
    let solo = run(1);
    let pooled = run(4);
    assert_eq!(solo, pooled);
    assert_eq!(solo.to_json().unwrap(), pooled.to_json().unwrap());
    assert!(solo
        .per_cell
        .iter()
        .all(|cell| cell.source.starts_with("workload:")));
}

#[test]
fn more_workers_than_cells_is_fine() {
    let narrow = Fleet::new(config(3, 1, 5, false)).unwrap().run().unwrap();
    let wide = Fleet::new(config(3, 16, 5, false)).unwrap().run().unwrap();
    assert_eq!(narrow, wide);
}

#[test]
fn different_fleet_seeds_differ() {
    let a = Fleet::new(config(4, 2, 1, false)).unwrap().run().unwrap();
    let b = Fleet::new(config(4, 2, 2, false)).unwrap().run().unwrap();
    assert_ne!(a.per_cell[0].seed, b.per_cell[0].seed);
    assert_ne!(a, b);
}

#[test]
fn repeated_runs_of_one_fleet_object_are_identical() {
    let fleet = Fleet::new(config(4, 2, 9, false)).unwrap();
    assert_eq!(fleet.run().unwrap(), fleet.run().unwrap());
}

#[test]
fn registry_survives_a_serde_round_trip_unchanged() {
    // Fill a registry from real learned templates, snapshot to JSON, and
    // rebuild: publish/import must round-trip bit-for-bit.
    let fleet = Fleet::new(config(8, 4, 13, true)).unwrap();
    fleet.run().unwrap();
    let registry = fleet.registry();
    assert!(!registry.is_empty());
    let json = registry.to_json().unwrap();
    let rebuilt = TemplateRegistry::from_json(&json).unwrap();
    assert_eq!(registry.snapshot(), rebuilt.snapshot());
    assert_eq!(json, rebuilt.to_json().unwrap());
    // Imported entries drive a fresh fleet exactly like the original
    // in-memory registry does.
    let from_original = Fleet::with_registry(config(4, 2, 17, true), Arc::clone(registry)).unwrap();
    let from_rebuilt = Fleet::with_registry(config(4, 2, 17, true), Arc::new(rebuilt)).unwrap();
    assert_eq!(from_original.run().unwrap(), from_rebuilt.run().unwrap());
}

#[test]
fn sharing_shows_the_head_start_fleet_wide() {
    // With sharing on, follower cells of an already-learned workload
    // throttle proactively on first contact; with sharing off no cell can.
    let cold = Fleet::new(config(12, 4, 23, false)).unwrap().run().unwrap();
    let warm = Fleet::new(config(12, 4, 23, true)).unwrap().run().unwrap();
    assert_eq!(cold.proactive_first_throttles, 0);
    assert!(
        warm.proactive_first_throttles > 0,
        "imported templates should produce proactive first throttles"
    );
    assert!(warm.cells_imported >= 8);
}
