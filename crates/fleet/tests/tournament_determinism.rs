//! Tournament determinism: the ranked outcome — bootstrap confidence
//! intervals included — is a pure function of the tournament
//! configuration. The worker count must not leak into any serialised bit.

use stayaway_fleet::{
    run_tournament, Fleet, FleetConfig, PolicySpec, PredictorSpec, TournamentConfig,
};

fn tournament(workers: usize, seed: u64) -> TournamentConfig {
    let mut config = TournamentConfig::new(seed);
    config.cells_per_combo = 1;
    config.ticks = 64;
    config.bootstrap_resamples = 200;
    config.workers = workers;
    config
}

#[test]
fn tournament_json_is_byte_identical_across_worker_counts() {
    let solo = run_tournament(&tournament(1, 7)).unwrap();
    let pooled = run_tournament(&tournament(4, 7)).unwrap();
    assert_eq!(solo, pooled);
    // The CLI contract is byte-identical JSON, float formatting and CI
    // bounds included.
    assert_eq!(solo.to_json().unwrap(), pooled.to_json().unwrap());
    // The default tournament really sweeps the full cross-product.
    assert_eq!(solo.standings.len(), 4);
    assert_eq!(solo.scenarios.len(), 3);
    for standing in &solo.standings {
        assert_eq!(standing.cells, 3);
    }
}

#[test]
fn tournament_cis_are_deterministic_for_a_fixed_seed_and_move_with_it() {
    let first = run_tournament(&tournament(2, 21)).unwrap();
    let second = run_tournament(&tournament(2, 21)).unwrap();
    for (a, b) in first.standings.iter().zip(&second.standings) {
        assert_eq!(a.satisfaction, b.satisfaction);
        assert_eq!(a.slo_violation_rate, b.slo_violation_rate);
        assert_eq!(a.batch_work, b.batch_work);
    }
    assert_eq!(first.to_json().unwrap(), second.to_json().unwrap());
    let reseeded = run_tournament(&tournament(2, 22)).unwrap();
    assert_ne!(
        first.to_json().unwrap(),
        reseeded.to_json().unwrap(),
        "a different tournament seed must change the outcome"
    );
}

#[test]
fn mixed_predictor_fleets_agree_across_worker_counts() {
    let run = |workers: usize| {
        let mut c = FleetConfig::new(8, workers, 7);
        c.ticks = 80;
        c.predictors = PredictorSpec::parse_list("kde,xapp,denoise,last-tick").unwrap();
        Fleet::new(c).unwrap().run().unwrap()
    };
    let solo = run(1);
    let pooled = run(4);
    assert_eq!(solo, pooled);
    assert_eq!(solo.to_json().unwrap(), pooled.to_json().unwrap());
    // Round-robin put two cells on each plane, and the rollup saw them.
    assert_eq!(solo.per_predictor.len(), 4);
    for rollup in &solo.per_predictor {
        assert_eq!(rollup.cells, 2, "{}", rollup.predictor);
    }
}

#[test]
fn baseline_cells_carry_no_predictor_and_stay_out_of_the_rollup() {
    let mut c = FleetConfig::new(6, 2, 9);
    c.ticks = 80;
    c.policies = vec![PolicySpec::StayAway, PolicySpec::Reactive { cooldown: 10 }];
    c.predictors = PredictorSpec::parse_list("xapp").unwrap();
    let outcome = Fleet::new(c).unwrap().run().unwrap();
    for cell in &outcome.per_cell {
        if cell.policy == "stay-away" {
            assert_eq!(cell.predictor, "xapp");
        } else {
            assert_eq!(cell.predictor, PredictorSpec::NONE);
        }
    }
    assert_eq!(outcome.per_predictor.len(), 1);
    assert_eq!(outcome.per_predictor[0].predictor, "xapp");
    assert_eq!(outcome.per_predictor[0].cells, 3);
}
