//! Cluster-plane determinism and placement-quality guarantees.
//!
//! The contract under test: a cluster run is bit-identical for any worker
//! count (migration included), job request streams never depend on the
//! cluster policy, and interference-aware scoring beats throttle-only
//! Stay-Away on batch throughput without giving up sensitive SLO.

use stayaway_fleet::{cluster_by_name, Cluster, ClusterConfig, ClusterOutcome, ClusterPolicySpec};

fn run(
    scenario: &str,
    policy: ClusterPolicySpec,
    workers: usize,
    migration: bool,
    seed: u64,
) -> ClusterOutcome {
    let mut config = ClusterConfig::new(cluster_by_name(scenario).unwrap(), seed);
    config.cluster_policy = policy;
    config.workers = workers;
    config.migration = migration;
    Cluster::new(config).unwrap().run().unwrap()
}

#[test]
fn outcome_json_is_byte_identical_across_worker_counts_with_migration() {
    // storm-cluster under scoring placement actually migrates, so this
    // exercises the hardest case: detach/re-attach across the barrier.
    let serial = run("storm-cluster", ClusterPolicySpec::Score, 1, true, 7);
    assert!(
        serial.migrations > 0,
        "the scenario must exercise migration"
    );
    for workers in [2, 4, 8] {
        let parallel = run("storm-cluster", ClusterPolicySpec::Score, workers, true, 7);
        assert_eq!(
            serial.to_json().unwrap(),
            parallel.to_json().unwrap(),
            "workers=1 vs workers={workers} diverged"
        );
    }
}

#[test]
fn outcome_json_is_byte_identical_across_worker_counts_without_migration() {
    let serial = run("hotspot", ClusterPolicySpec::Score, 1, false, 7);
    assert_eq!(serial.migrations, 0);
    let parallel = run("hotspot", ClusterPolicySpec::Score, 4, false, 7);
    assert_eq!(serial.to_json().unwrap(), parallel.to_json().unwrap());
}

#[test]
fn job_streams_are_identical_under_every_cluster_policy() {
    for scenario in ["hotspot", "storm-cluster"] {
        let outcomes: Vec<ClusterOutcome> = ClusterPolicySpec::all()
            .iter()
            .map(|p| run(scenario, *p, 4, true, 7))
            .collect();
        let reference = &outcomes[0];
        for outcome in &outcomes[1..] {
            for (a, b) in reference.per_job.iter().zip(&outcome.per_job) {
                assert_eq!(
                    a.arrival_digest, b.arrival_digest,
                    "{scenario}: job '{}' stream differs between {} and {}",
                    a.name, reference.cluster_policy, outcome.cluster_policy
                );
                assert_eq!(a.generated, b.generated);
            }
        }
    }
}

#[test]
fn scoring_beats_throttle_only_on_throughput_at_equal_or_better_slo() {
    for scenario in ["hotspot", "storm-cluster"] {
        let score = run(scenario, ClusterPolicySpec::Score, 4, true, 7);
        let none = run(scenario, ClusterPolicySpec::NoPlacement, 4, true, 7);
        assert!(
            score.total_batch_work > none.total_batch_work,
            "{scenario}: score batch work {} should beat throttle-only {}",
            score.total_batch_work,
            none.total_batch_work
        );
        assert!(
            score.slo_violation_rate <= none.slo_violation_rate,
            "{scenario}: score SLO violation rate {} should not exceed throttle-only {}",
            score.slo_violation_rate,
            none.slo_violation_rate
        );
    }
}

#[test]
fn repeated_runs_are_bit_identical() {
    let a = run("hotspot", ClusterPolicySpec::Score, 4, true, 13);
    let b = run("hotspot", ClusterPolicySpec::Score, 4, true, 13);
    assert_eq!(a, b);
    // A different seed is a different experiment.
    let c = run("hotspot", ClusterPolicySpec::Score, 4, true, 14);
    assert_ne!(a.to_json().unwrap(), c.to_json().unwrap());
}
