//! Property tests for the cluster seed space and stream independence.

use proptest::prelude::*;
use stayaway_fleet::{
    cluster_by_name, derive_cell_seed, derive_job_seed, Cluster, ClusterConfig, ClusterPolicySpec,
};
use std::collections::BTreeSet;

proptest! {
    /// Host seeds stay collision-free at cluster scale for any cluster
    /// seed — hosts never share randomness.
    #[test]
    fn host_seeds_are_distinct_at_cluster_scale(cluster_seed in any::<u64>()) {
        let seeds: BTreeSet<u64> = (0..512).map(|i| derive_cell_seed(cluster_seed, i)).collect();
        prop_assert_eq!(seeds.len(), 512);
    }

    /// Job stream seeds live in a disjoint index range: no job stream can
    /// collide with any plausible host seed, for any cluster seed.
    #[test]
    fn job_seeds_never_collide_with_host_seeds(cluster_seed in any::<u64>(), job in 0u64..256) {
        let hosts: BTreeSet<u64> = (0..1024).map(|i| derive_cell_seed(cluster_seed, i)).collect();
        for stream in 0..2 {
            let s = derive_job_seed(cluster_seed, job, stream);
            prop_assert!(!hosts.contains(&s), "job ({job},{stream}) seed {s} collides");
        }
        prop_assert_ne!(
            derive_job_seed(cluster_seed, job, 0),
            derive_job_seed(cluster_seed, job, 1)
        );
    }
}

proptest! {
    // Whole-cluster runs are expensive; a handful of random seeds is
    // plenty on top of the deterministic integration tests.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// For any cluster seed, every job's arrival digest is identical
    /// under scoring placement and under throttle-only round-robin: the
    /// request streams are placement-independent by construction.
    #[test]
    fn job_digests_are_policy_independent_for_any_seed(cluster_seed in any::<u64>()) {
        let run = |policy: ClusterPolicySpec| {
            let mut config =
                ClusterConfig::new(cluster_by_name("hotspot").unwrap(), cluster_seed);
            config.epochs = 6;
            config.ticks_per_epoch = 4;
            config.cluster_policy = policy;
            Cluster::new(config).unwrap().run().unwrap()
        };
        let score = run(ClusterPolicySpec::Score);
        let rr = run(ClusterPolicySpec::NoPlacement);
        for (a, b) in score.per_job.iter().zip(&rr.per_job) {
            prop_assert_eq!(a.arrival_digest, b.arrival_digest, "job {} diverged", a.name.clone());
            prop_assert_eq!(a.generated, b.generated);
        }
    }
}
