//! Flight-recorder determinism and causality across the planes.
//!
//! The contract under test: the canonical merged event stream (DESIGN.md
//! §16) is byte-identical for any worker count at both fleet and cluster
//! scale, recording is decision-inert, and the causal links reconstruct a
//! multi-layer chain — a cluster verb caused by a host SLO violation
//! caused by a predictor verdict — from the stream alone.

use stayaway_fleet::{
    cluster_by_name, Cluster, ClusterConfig, ClusterOutcome, ClusterPolicySpec, Fleet, FleetConfig,
    FleetOutcome,
};
use stayaway_obs::{events_to_jsonl, EventId, EventKind, EventRecord, Layer};

fn fleet(workers: usize, collect_events: bool) -> FleetOutcome {
    let mut config = FleetConfig::new(64, workers, 7);
    config.ticks = 96;
    config.collect_events = collect_events;
    Fleet::new(config).unwrap().run().unwrap()
}

fn cluster(scenario: &str, workers: usize, collect_events: bool) -> ClusterOutcome {
    let mut config = ClusterConfig::new(cluster_by_name(scenario).unwrap(), 7);
    config.cluster_policy = ClusterPolicySpec::Score;
    config.workers = workers;
    config.migration = true;
    config.collect_events = collect_events;
    Cluster::new(config).unwrap().run().unwrap()
}

fn find(events: &[EventRecord], id: EventId) -> &EventRecord {
    events
        .iter()
        .find(|e| e.scope == id.scope && e.seq == id.seq)
        .unwrap_or_else(|| panic!("cause {id} missing from the stream"))
}

#[test]
fn fleet_event_stream_is_byte_identical_across_worker_counts() {
    let serial = fleet(1, true);
    let pooled = fleet(4, true);
    let serial_events = serial.events.as_ref().expect("events requested");
    let pooled_events = pooled.events.as_ref().expect("events requested");
    assert!(!serial_events.is_empty(), "a 64-cell fleet must record");
    assert_eq!(
        events_to_jsonl(serial_events),
        events_to_jsonl(pooled_events),
        "workers=1 vs workers=4 event JSONL diverged"
    );
    // The stream is in canonical (tick, layer, seq, scope) order.
    for pair in serial_events.windows(2) {
        assert!(
            (pair[0].tick, pair[0].layer, pair[0].seq, pair[0].scope)
                <= (pair[1].tick, pair[1].layer, pair[1].seq, pair[1].scope)
        );
    }
}

#[test]
fn fleet_event_collection_is_decision_inert() {
    let bare = fleet(4, false);
    let observed = fleet(4, true);
    assert!(bare.events.is_none());
    let strip = |mut o: FleetOutcome| {
        o.events = None;
        o
    };
    assert_eq!(strip(bare), strip(observed));
}

#[test]
fn cluster_event_stream_is_byte_identical_across_worker_counts() {
    let serial = cluster("storm-cluster", 1, true);
    let pooled = cluster("storm-cluster", 4, true);
    let serial_events = serial.events.as_ref().expect("events requested");
    let pooled_events = pooled.events.as_ref().expect("events requested");
    assert!(!serial_events.is_empty());
    assert_eq!(
        events_to_jsonl(serial_events),
        events_to_jsonl(pooled_events),
        "workers=1 vs workers=4 cluster event JSONL diverged"
    );
}

#[test]
fn cluster_event_collection_is_decision_inert() {
    let bare = cluster("hotspot", 4, false);
    let observed = cluster("hotspot", 4, true);
    assert!(bare.events.is_none());
    let strip = |mut o: ClusterOutcome| {
        o.events = None;
        o
    };
    assert_eq!(strip(bare), strip(observed));
}

#[test]
fn storm_cluster_migration_chains_back_to_a_predictor_verdict() {
    // storm-cluster under scoring placement actually migrates (see
    // cluster_determinism.rs), so its stream carries the full chain.
    let outcome = cluster("storm-cluster", 2, true);
    assert!(
        outcome.migrations > 0,
        "the scenario must exercise migration"
    );
    let events = outcome.events.as_ref().unwrap();
    let mut full_chains = 0;
    for migrate in events.iter().filter(|e| e.kind == EventKind::Migrate) {
        assert_eq!(migrate.layer, Layer::Cluster);
        let Some(cause) = migrate.cause else { continue };
        // First hop: the source host's SLO violation that motivated it.
        let violation = find(events, cause);
        assert_eq!(violation.kind, EventKind::SloViolation);
        // Second hop: the predictor verdict active on that host.
        if let Some(cause) = violation.cause {
            let verdict = find(events, cause);
            assert_eq!(verdict.kind, EventKind::PredictorVerdict);
            assert_eq!(verdict.layer, Layer::Predictor);
            assert_eq!(verdict.scope, violation.scope);
            full_chains += 1;
        }
    }
    assert!(
        full_chains > 0,
        "no migrate event reconstructed the full cluster ← host ← predictor chain"
    );
}
