//! Property-based tests for the MDS pipeline invariants.

use proptest::prelude::*;
use stayaway_mds::classical::classical_mds;
use stayaway_mds::dedup::ReprSet;
use stayaway_mds::distance::{DistanceMatrix, Metric};
use stayaway_mds::landmark::{select_landmarks, LandmarkMds};
use stayaway_mds::normalize::{MetricBounds, Normalizer};
use stayaway_mds::procrustes::{align_to_previous, prefix_rmsd};
use stayaway_mds::smacof::{warm_start_with_new_points, Smacof};

fn vectors_strategy(max_points: usize, dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0f64..1.0, dim..=dim), 2..max_points)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SMACOF never yields worse stress than its classical-MDS seed.
    #[test]
    fn smacof_improves_on_classical_seed(vectors in vectors_strategy(12, 4)) {
        let d = DistanceMatrix::from_vectors(&vectors).unwrap();
        let seed = classical_mds(&d, 2).unwrap();
        let seed_stress = seed.raw_stress(&d).unwrap();
        let out = Smacof::new(2).embed_warm(&d, seed).unwrap();
        let out_stress = out.raw_stress(&d).unwrap();
        prop_assert!(out_stress <= seed_stress + 1e-9,
            "smacof worsened stress {seed_stress} -> {out_stress}");
    }

    /// Embedding coordinates are always finite.
    #[test]
    fn embedding_is_finite(vectors in vectors_strategy(10, 5)) {
        let d = DistanceMatrix::from_vectors(&vectors).unwrap();
        let e = Smacof::new(2).embed(&d).unwrap();
        for p in e.iter() {
            prop_assert!(p.iter().all(|v| v.is_finite()));
        }
    }

    /// Procrustes alignment is an isometry: pairwise embedded distances are
    /// preserved exactly (up to float error).
    #[test]
    fn procrustes_preserves_pairwise_distances(vectors in vectors_strategy(10, 3)) {
        let d = DistanceMatrix::from_vectors(&vectors).unwrap();
        let a = Smacof::new(2).embed(&d).unwrap();
        // Align a to itself rotated by construction: use classical seed as
        // the "previous" frame.
        let prev = classical_mds(&d, 2).unwrap();
        let aligned = align_to_previous(&a, &prev).unwrap();
        for i in 0..a.len() {
            for j in (i + 1)..a.len() {
                prop_assert!((aligned.distance(i, j) - a.distance(i, j)).abs() < 1e-7);
            }
        }
    }

    /// Aligning an embedding to itself is (numerically) the identity.
    #[test]
    fn procrustes_self_alignment_is_identity(vectors in vectors_strategy(9, 3)) {
        let d = DistanceMatrix::from_vectors(&vectors).unwrap();
        let e = Smacof::new(2).embed(&d).unwrap();
        let aligned = align_to_previous(&e, &e).unwrap();
        prop_assert!(prefix_rmsd(&aligned, &e, e.len()) < 1e-7);
    }

    /// Every deduplicated vector stays within epsilon of its representative.
    #[test]
    fn dedup_coverage(
        vectors in vectors_strategy(40, 3),
        epsilon in 0.01f64..0.5,
    ) {
        let mut set = ReprSet::new(epsilon).unwrap();
        for v in &vectors {
            let out = set.insert(v).unwrap();
            let d = Metric::Euclidean.distance(set.representative(out.index()), v);
            prop_assert!(d <= epsilon + 1e-12);
        }
        prop_assert_eq!(set.total_inserted(), vectors.len() as u64);
    }

    /// Representatives are mutually separated by more than epsilon... not in
    /// general (greedy insertion), but each new representative is > epsilon
    /// from all representatives existing at its insertion time. We verify
    /// the weaker global invariant: representative count never exceeds input
    /// count and is at least 1.
    #[test]
    fn dedup_compresses(vectors in vectors_strategy(30, 2)) {
        let mut set = ReprSet::new(0.3).unwrap();
        for v in &vectors {
            set.insert(v).unwrap();
        }
        prop_assert!(!set.is_empty());
        prop_assert!(set.len() <= vectors.len());
    }

    /// Normalised values always land in [0, 1].
    #[test]
    fn normalizer_output_in_unit_interval(
        values in prop::collection::vec(-1000.0f64..1000.0, 4),
    ) {
        let n = Normalizer::new(vec![
            MetricBounds::zero_to(400.0).unwrap(),
            MetricBounds::zero_to(8192.0).unwrap(),
            MetricBounds::new(-100.0, 100.0).unwrap(),
            MetricBounds::zero_to(1.0).unwrap(),
        ]).unwrap();
        let out = n.normalize(&values).unwrap();
        for v in out {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    /// Classical MDS of points that already live in 2-D reproduces their
    /// pairwise distances (stress ≈ 0).
    #[test]
    fn classical_mds_is_exact_on_planar_data(vectors in vectors_strategy(10, 2)) {
        let d = DistanceMatrix::from_vectors(&vectors).unwrap();
        let e = classical_mds(&d, 2).unwrap();
        prop_assert!(e.stress(&d).unwrap() < 1e-6);
    }

    /// Warm start preserves the prefix coordinates exactly before the solver
    /// runs.
    #[test]
    fn warm_start_preserves_prefix(vectors in vectors_strategy(8, 3)) {
        let d = DistanceMatrix::from_vectors(&vectors).unwrap();
        let e = Smacof::new(2).embed(&d).unwrap();
        let mut grown = vectors.clone();
        grown.push(vec![0.5, 0.5, 0.5]);
        let d2 = DistanceMatrix::from_vectors(&grown).unwrap();
        let init = warm_start_with_new_points(&e, &d2).unwrap();
        prop_assert!(prefix_rmsd(&init, &e, e.len()) < 1e-12);
        prop_assert_eq!(init.len(), grown.len());
    }

    /// Landmark selection returns distinct indices within bounds, and the
    /// fitted placement keeps planar data's stress low.
    #[test]
    fn landmark_placement_on_planar_data(vectors in vectors_strategy(40, 2), k in 4usize..10) {
        let idx = select_landmarks(&vectors, k);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), idx.len());
        prop_assert!(idx.iter().all(|&i| i < vectors.len()));

        if idx.len() >= 3 {
            let lmds = LandmarkMds::fit(&vectors, k, 2).unwrap();
            let placed = lmds.place_all(&vectors).unwrap();
            let d = DistanceMatrix::from_vectors(&vectors).unwrap();
            prop_assert!(placed.stress(&d).unwrap() < 0.05,
                "landmark stress too high on planar data");
        }
    }

    /// The grid-indexed dedup path is an exact drop-in for the naive linear
    /// scan: identical insert outcomes and identical `(index, distance)`
    /// from `nearest`, for every query — including ones far outside the
    /// indexed region (ring expansion).
    #[test]
    fn grid_index_is_exact_drop_in_for_linear_scan(
        vectors in vectors_strategy(60, 4),
        epsilon in 0.01f64..0.5,
        probe_shift in -2.0f64..2.0,
    ) {
        let mut naive = ReprSet::new(epsilon).unwrap();
        let mut grid = ReprSet::new(epsilon).unwrap().grid_indexed();
        for v in &vectors {
            let a = naive.insert(v).unwrap();
            let b = grid.insert(v).unwrap();
            prop_assert_eq!((a.index(), a.is_new()), (b.index(), b.is_new()));
            // Exact equality: both paths judge candidates by the same
            // full-precision distances.
            prop_assert_eq!(naive.nearest(v), grid.nearest(v));
        }
        for v in &vectors {
            let probe: Vec<f64> = v.iter().map(|x| x + probe_shift).collect();
            prop_assert_eq!(naive.nearest(&probe), grid.nearest(&probe));
        }
    }

    /// Growing a distance matrix column-by-column with `append_point`
    /// matches a from-scratch rebuild on every prefix.
    #[test]
    fn append_point_matches_full_rebuild_on_every_prefix(
        vectors in vectors_strategy(20, 3),
    ) {
        let mut grown = DistanceMatrix::from_vectors(&vectors[..1]).unwrap();
        for m in 1..vectors.len() {
            grown.append_point(&vectors[..m], &vectors[m]).unwrap();
            let rebuilt = DistanceMatrix::from_vectors(&vectors[..=m]).unwrap();
            prop_assert_eq!(grown.len(), rebuilt.len());
            for i in 0..grown.len() {
                for j in 0..grown.len() {
                    prop_assert!((grown.get(i, j) - rebuilt.get(i, j)).abs() < 1e-12,
                        "entry ({}, {}) diverged", i, j);
                }
            }
        }
    }

    /// The distance matrix is a metric-space certificate: symmetric,
    /// non-negative, zero diagonal, triangle inequality (Euclidean input).
    #[test]
    fn distance_matrix_triangle_inequality(vectors in vectors_strategy(8, 3)) {
        let d = DistanceMatrix::from_vectors(&vectors).unwrap();
        let n = d.len();
        for i in 0..n {
            for j in 0..n {
                prop_assert!(d.get(i, j) >= 0.0);
                prop_assert!((d.get(i, j) - d.get(j, i)).abs() < 1e-12);
                for k in 0..n {
                    prop_assert!(d.get(i, j) <= d.get(i, k) + d.get(k, j) + 1e-9);
                }
            }
        }
    }
}
