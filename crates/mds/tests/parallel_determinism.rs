//! Property tests for the parallel mapping kernels.
//!
//! The invariants the fleet suites lean on, fuzzed here at the crate
//! boundary: (1) the chunk-parallel SMACOF sweep and the chunk-parallel
//! `DistanceMatrix` builders are **bit-for-bit identical** to the serial
//! reference for 1–8 workers, because chunk boundaries derive from the
//! problem size alone; (2) the f32 cache-blocked kernel is deterministic
//! across worker counts (though intentionally not bit-identical to f64);
//! (3) adversarial inputs — NaN/inf observations, duplicate/coincident
//! points — surface as typed [`MdsError`]s or finite embeddings, never a
//! panic or a poisoned (non-finite) configuration.

use proptest::prelude::*;
use stayaway_mds::dedup::ReprSet;
use stayaway_mds::distance::{DistanceMatrix, Metric};
use stayaway_mds::smacof::{Smacof, SweepKernel};
use stayaway_mds::MdsError;

/// Deterministic pseudo-random point cloud parameterised by a seed; big
/// enough (when `n` > 64) to span several parallel sweep chunks.
fn cloud(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..dim)
                .map(|k| {
                    let t = (i * dim + k) as f64 + seed as f64 * 0.618;
                    (t * 0.37).sin() + 0.25 * (t * 1.91).cos()
                })
                .collect()
        })
        .collect()
}

proptest! {
    // Each case embeds up to ~96 points several times; keep the count
    // moderate so the suite stays fast in debug builds.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn parallel_sweep_matches_serial_bit_for_bit(
        n in 2usize..96,
        seed in 0u64..1000,
        workers in 1usize..=8,
    ) {
        let d = DistanceMatrix::from_vectors(&cloud(n, 3, seed)).unwrap();
        let serial = Smacof::new(2).max_iterations(10).embed(&d).unwrap();
        let parallel = Smacof::new(2)
            .max_iterations(10)
            .workers(workers)
            .embed(&d)
            .unwrap();
        prop_assert_eq!(serial, parallel);
    }

    #[test]
    fn parallel_matrix_builders_match_serial_bit_for_bit(
        n in 2usize..120,
        seed in 0u64..1000,
        workers in 1usize..=8,
    ) {
        let pts = cloud(n, 4, seed);
        let serial = DistanceMatrix::from_vectors(&pts).unwrap();
        let built =
            DistanceMatrix::from_vectors_with_workers(&pts, Metric::Euclidean, workers).unwrap();
        prop_assert_eq!(&serial, &built);

        let mut appended = DistanceMatrix::from_vectors(&pts[..n - 1]).unwrap();
        appended
            .append_point_with_workers(&pts[..n - 1], &pts[n - 1], Metric::Euclidean, workers)
            .unwrap();
        prop_assert_eq!(&serial, &appended);
    }

    #[test]
    fn f32_kernel_is_worker_count_deterministic(
        n in 2usize..96,
        seed in 0u64..1000,
        workers in 2usize..=8,
    ) {
        let d = DistanceMatrix::from_vectors(&cloud(n, 3, seed)).unwrap();
        let embed = |w: usize| {
            Smacof::new(2)
                .max_iterations(10)
                .kernel(SweepKernel::F32Blocked)
                .workers(w)
                .embed(&d)
                .unwrap()
        };
        prop_assert_eq!(embed(1), embed(workers));
    }

    #[test]
    fn non_finite_observations_yield_typed_errors_not_panics(
        n in 1usize..40,
        poison_at in 0usize..40,
        poison in prop::sample::select(vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY]),
        workers in 1usize..=8,
    ) {
        let mut pts = cloud(n, 3, 7);
        let poison_at = poison_at % n;
        pts[poison_at][0] = poison;

        let build_err = matches!(
            DistanceMatrix::from_vectors_with_workers(&pts, Metric::Euclidean, workers),
            Err(MdsError::NonFinite { .. })
        );
        prop_assert!(build_err, "poisoned build must return NonFinite");

        let clean = cloud(n, 3, 7);
        let mut m = DistanceMatrix::from_vectors(&clean).unwrap();
        let append_err = matches!(
            m.append_point_with_workers(&clean, &pts[poison_at], Metric::Euclidean, workers),
            Err(MdsError::NonFinite { .. })
        );
        prop_assert!(append_err, "poisoned append must return NonFinite");
        // The failed append left the matrix untouched.
        prop_assert_eq!(m, DistanceMatrix::from_vectors(&clean).unwrap());

        let mut set = ReprSet::new(0.05).unwrap();
        let insert_err = matches!(set.insert(&pts[poison_at]), Err(MdsError::NonFinite { .. }));
        prop_assert!(insert_err, "poisoned dedup insert must return NonFinite");
    }

    #[test]
    fn duplicate_and_coincident_points_embed_finitely(
        n in 2usize..40,
        dup_of in 0usize..40,
        workers in 1usize..=8,
        kernel in prop::sample::select(vec![SweepKernel::F64, SweepKernel::F32Blocked]),
    ) {
        // Duplicate an arbitrary point, then pile three exact copies of
        // point 0 on top: the guarded ratio must keep every coordinate
        // finite instead of emitting inf/NaN for the zero distances.
        let mut pts = cloud(n, 3, 3);
        pts.push(pts[dup_of % n].clone());
        pts.push(pts[0].clone());
        pts.push(pts[0].clone());
        pts.push(pts[0].clone());
        let d = DistanceMatrix::from_vectors(&pts).unwrap();
        let e = Smacof::new(2)
            .max_iterations(10)
            .kernel(kernel)
            .workers(workers)
            .embed(&d)
            .unwrap();
        for p in e.iter() {
            let finite = p.iter().all(|v| v.is_finite());
            prop_assert!(finite, "embedding coordinate went non-finite");
        }
    }
}
