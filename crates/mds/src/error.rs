use std::fmt;

/// Error type returned by every fallible operation in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MdsError {
    /// The input collection was empty where at least one element is required.
    Empty,
    /// Two inputs that must share a dimension did not.
    DimensionMismatch {
        /// Dimension that was expected.
        expected: usize,
        /// Dimension that was found.
        found: usize,
    },
    /// An input value was NaN or infinite.
    NonFinite {
        /// Description of where the non-finite value occurred.
        context: &'static str,
    },
    /// The requested target dimension is invalid (zero, or larger than the
    /// number of points allows).
    InvalidDimension {
        /// The requested dimension.
        requested: usize,
    },
    /// The iterative solver failed to make progress.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
        /// Stress value at the point of failure.
        stress: f64,
    },
}

impl fmt::Display for MdsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdsError::Empty => write!(f, "input collection was empty"),
            MdsError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            MdsError::NonFinite { context } => {
                write!(f, "non-finite value encountered in {context}")
            }
            MdsError::InvalidDimension { requested } => {
                write!(f, "invalid target dimension {requested}")
            }
            MdsError::NoConvergence { iterations, stress } => {
                write!(
                    f,
                    "solver failed to converge after {iterations} iterations (stress {stress})"
                )
            }
        }
    }
}

impl std::error::Error for MdsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = MdsError::DimensionMismatch {
            expected: 4,
            found: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains('4') && msg.contains('3'));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MdsError>();
    }
}
