//! Classical (Torgerson) multidimensional scaling.
//!
//! Classical MDS double-centres the squared dissimilarity matrix into a Gram
//! matrix `B = −½ J D² J` and reads coordinates off its top eigenpairs. The
//! SMACOF solver ([`crate::smacof`]) uses this as its initial configuration,
//! which makes the iterative phase short and deterministic.

use crate::distance::DistanceMatrix;
use crate::embedding::Embedding;
use crate::linalg::{symmetric_eigen, Matrix};
use crate::MdsError;

/// Embeds a dissimilarity matrix into `dim` dimensions with classical MDS.
///
/// # Errors
///
/// Returns [`MdsError::InvalidDimension`] when `dim == 0` and propagates
/// eigensolver failures.
///
/// # Example
///
/// ```
/// use stayaway_mds::{classical::classical_mds, distance::DistanceMatrix};
///
/// # fn main() -> Result<(), stayaway_mds::MdsError> {
/// // Three collinear points at 0, 1, 3 on a line.
/// let d = DistanceMatrix::from_vectors(&[vec![0.0], vec![1.0], vec![3.0]])?;
/// let e = classical_mds(&d, 2)?;
/// // Pairwise distances are reproduced exactly for Euclidean input.
/// assert!((e.distance(0, 1) - 1.0).abs() < 1e-9);
/// assert!((e.distance(0, 2) - 3.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn classical_mds(dissim: &DistanceMatrix, dim: usize) -> Result<Embedding, MdsError> {
    if dim == 0 {
        return Err(MdsError::InvalidDimension { requested: 0 });
    }
    let n = dissim.len();
    if n == 0 {
        return Err(MdsError::Empty);
    }
    if n == 1 {
        return Ok(Embedding::zeros(1, dim));
    }

    // B = -1/2 * J * D^2 * J with J = I - 11ᵀ/n, computed directly:
    // b_ij = -1/2 (d_ij² - row_i² - col_j² + grand²).
    let mut sq = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let d = dissim.get(i, j);
            sq[(i, j)] = d * d;
        }
    }
    let mut row_means = vec![0.0; n];
    let mut grand = 0.0;
    for i in 0..n {
        let mut s = 0.0;
        for j in 0..n {
            s += sq[(i, j)];
        }
        row_means[i] = s / n as f64;
        grand += s;
    }
    grand /= (n * n) as f64;

    let mut b = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            b[(i, j)] = -0.5 * (sq[(i, j)] - row_means[i] - row_means[j] + grand);
        }
    }

    let eig = symmetric_eigen(&b)?;
    let mut coords = vec![0.0; n * dim];
    for k in 0..dim.min(n) {
        let lambda = eig.eigenvalues[k];
        if lambda <= 0.0 {
            // Remaining axes carry no positive variance; leave them at zero.
            break;
        }
        let scale = lambda.sqrt();
        for i in 0..n {
            coords[i * dim + k] = eig.eigenvectors[(i, k)] * scale;
        }
    }
    Embedding::from_coords(dim, coords)
}

/// Fraction of total positive "variance" captured by the first `dim`
/// eigenvalues of the double-centred matrix — a goodness-of-fit indicator
/// analogous to explained variance in PCA.
///
/// Returns 1.0 when the matrix is trivially embeddable (≤ 1 point).
///
/// # Errors
///
/// Propagates eigensolver failures.
pub fn explained_fraction(dissim: &DistanceMatrix, dim: usize) -> Result<f64, MdsError> {
    let n = dissim.len();
    if n <= 1 {
        return Ok(1.0);
    }
    let mut sq = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let d = dissim.get(i, j);
            sq[(i, j)] = d * d;
        }
    }
    let mut row_means = vec![0.0; n];
    let mut grand = 0.0;
    for i in 0..n {
        let mut s = 0.0;
        for j in 0..n {
            s += sq[(i, j)];
        }
        row_means[i] = s / n as f64;
        grand += s;
    }
    grand /= (n * n) as f64;
    let mut b = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            b[(i, j)] = -0.5 * (sq[(i, j)] - row_means[i] - row_means[j] + grand);
        }
    }
    let eig = symmetric_eigen(&b)?;
    let positive: f64 = eig.eigenvalues.iter().filter(|&&v| v > 0.0).sum();
    if positive == 0.0 {
        return Ok(1.0);
    }
    let captured: f64 = eig.eigenvalues.iter().take(dim).filter(|&&v| v > 0.0).sum();
    Ok(captured / positive)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_planar_configuration_exactly() {
        // A 3-4-5 right triangle is exactly embeddable in 2-D.
        let pts = vec![vec![0.0, 0.0], vec![3.0, 0.0], vec![0.0, 4.0]];
        let d = DistanceMatrix::from_vectors(&pts).unwrap();
        let e = classical_mds(&d, 2).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (e.distance(i, j) - d.get(i, j)).abs() < 1e-9,
                    "pair ({i},{j})"
                );
            }
        }
        assert!(e.stress(&d).unwrap() < 1e-9);
    }

    #[test]
    fn single_point_embeds_at_origin() {
        let d = DistanceMatrix::from_vectors(&[vec![5.0, 5.0]]).unwrap();
        let e = classical_mds(&d, 2).unwrap();
        assert_eq!(e.len(), 1);
        assert_eq!(e.point(0), &[0.0, 0.0]);
    }

    #[test]
    fn preserves_relative_distances_from_high_dimensions() {
        // Two tight clusters far apart in 6-D must stay separated in 2-D.
        let mut pts = Vec::new();
        for i in 0..4 {
            pts.push(vec![0.01 * i as f64; 6]);
        }
        for i in 0..4 {
            let mut v = vec![5.0; 6];
            v[0] += 0.01 * i as f64;
            pts.push(v);
        }
        let d = DistanceMatrix::from_vectors(&pts).unwrap();
        let e = classical_mds(&d, 2).unwrap();
        // Within-cluster distances stay small, across-cluster stay large.
        let within = e.distance(0, 3);
        let across = e.distance(0, 4);
        assert!(across > 10.0 * within);
    }

    #[test]
    fn rejects_zero_dimension() {
        let d = DistanceMatrix::from_vectors(&[vec![0.0], vec![1.0]]).unwrap();
        assert!(matches!(
            classical_mds(&d, 0),
            Err(MdsError::InvalidDimension { .. })
        ));
    }

    #[test]
    fn explained_fraction_is_one_for_planar_data() {
        let pts = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
        ];
        let d = DistanceMatrix::from_vectors(&pts).unwrap();
        let f = explained_fraction(&d, 2).unwrap();
        assert!(f > 0.999, "planar data should be fully captured, got {f}");
    }

    #[test]
    fn explained_fraction_decreases_with_fewer_dims() {
        // A 3-simplex (regular tetrahedron) needs 3 dimensions.
        let d = DistanceMatrix::from_fn(4, |_, _| 1.0).unwrap();
        let f2 = explained_fraction(&d, 2).unwrap();
        let f3 = explained_fraction(&d, 3).unwrap();
        assert!(f2 < f3);
        assert!(f3 > 0.999);
    }
}
