//! Landmark MDS — the fast approximate embedding §4 points to.
//!
//! "Alternatively, there is existing work in the literature that is capable
//! of doing incremental MDS with high performance and very low overhead"
//! (the paper cites steerable/progressive MDS and fast approximations).
//! This module implements the classic *Landmark MDS* scheme:
//!
//! 1. choose `k` landmarks by farthest-point (max-min) sampling,
//! 2. embed the landmarks exactly with classical MDS,
//! 3. place every other point — including future out-of-sample points —
//!    by distance-based triangulation against the landmarks, a single
//!    matrix-vector product per point.
//!
//! Compared to the paper's representative-sample dedup (which this
//! repository's controller uses), landmark MDS bounds the quadratic cost
//! by `k` instead of by the dedup granularity; the `landmark_mds` bench
//! compares both.

use crate::classical::classical_mds;
use crate::distance::{DistanceMatrix, Metric};
use crate::embedding::Embedding;
use crate::linalg::symmetric_eigen;
use crate::linalg::Matrix;
use crate::MdsError;

/// A fitted landmark embedding that can place arbitrary points.
#[derive(Debug, Clone)]
pub struct LandmarkMds {
    dim: usize,
    landmarks: Vec<Vec<f64>>,
    landmark_coords: Embedding,
    /// Pseudo-inverse transform rows `vᵢᵀ/√λᵢ` (dim × k).
    pinv: Matrix,
    /// Mean of squared landmark-to-landmark distances, per landmark.
    mean_sq: Vec<f64>,
}

/// Farthest-point (max-min) landmark selection: start from the centroid's
/// nearest point, repeatedly add the point farthest from the chosen set.
/// Deterministic for a given input order.
pub fn select_landmarks(vectors: &[Vec<f64>], k: usize) -> Vec<usize> {
    select_landmarks_by(vectors, k, |i, j| {
        Metric::Euclidean.distance(&vectors[i], &vectors[j])
    })
}

/// [`select_landmarks`] with pairwise distances supplied by `pair` —
/// e.g. lookups into a precomputed [`DistanceMatrix`] — instead of being
/// recomputed from the vectors. Only the centroid seed still reads the
/// vectors; `pair(i, j)` must equal the Euclidean distance between
/// `vectors[i]` and `vectors[j]` for the selection to match
/// [`select_landmarks`] exactly.
fn select_landmarks_by(
    vectors: &[Vec<f64>],
    k: usize,
    mut pair: impl FnMut(usize, usize) -> f64,
) -> Vec<usize> {
    let n = vectors.len();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    let k = k.min(n);
    let mut chosen = Vec::with_capacity(k);
    // Seed: the point closest to the centroid (stable, representative).
    let dim = vectors[0].len();
    let mut centroid = vec![0.0; dim];
    for v in vectors {
        for (c, x) in centroid.iter_mut().zip(v) {
            *c += x;
        }
    }
    for c in &mut centroid {
        *c /= n as f64;
    }
    let seed = (0..n)
        .min_by(|&a, &b| {
            let da = Metric::Euclidean.distance(&vectors[a], &centroid);
            let db = Metric::Euclidean.distance(&vectors[b], &centroid);
            da.total_cmp(&db)
        })
        .unwrap_or(0);
    chosen.push(seed);
    let mut min_dist: Vec<f64> = (0..n).map(|i| pair(i, seed)).collect();
    while chosen.len() < k {
        let far = (0..n)
            .max_by(|&a, &b| min_dist[a].total_cmp(&min_dist[b]))
            .unwrap_or(0);
        if min_dist[far] <= 0.0 {
            break; // all remaining points coincide with landmarks
        }
        chosen.push(far);
        for (i, md) in min_dist.iter_mut().enumerate() {
            let d = pair(i, far);
            *md = md.min(d);
        }
    }
    chosen
}

impl LandmarkMds {
    /// Fits the landmark embedding: selects `k` landmarks from `vectors`
    /// and computes the triangulation transform for `dim` dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`MdsError::Empty`] for empty input,
    /// [`MdsError::InvalidDimension`] for `dim == 0` or `k < dim + 1`
    /// (triangulation needs at least `dim + 1` affinely independent
    /// landmarks), and propagates eigensolver failures.
    pub fn fit(vectors: &[Vec<f64>], k: usize, dim: usize) -> Result<Self, MdsError> {
        if vectors.is_empty() {
            return Err(MdsError::Empty);
        }
        if dim == 0 || k < dim + 1 {
            return Err(MdsError::InvalidDimension { requested: dim });
        }
        let idx = select_landmarks(vectors, k);
        let landmarks: Vec<Vec<f64>> = idx.iter().map(|&i| vectors[i].clone()).collect();
        let ld = DistanceMatrix::from_vectors(&landmarks)?;
        Self::fit_selected(landmarks, &ld, dim)
    }

    /// [`LandmarkMds::fit`] reusing a precomputed all-pairs Euclidean
    /// [`DistanceMatrix`] over `vectors`: landmark selection reads pairwise
    /// distances out of `dissim` and the landmark-to-landmark matrix is
    /// extracted as a submatrix, so no distance is recomputed from the
    /// vectors beyond the O(n·dim) centroid seed. Produces a model
    /// bit-for-bit identical to [`LandmarkMds::fit`] on the same input.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LandmarkMds::fit`], plus
    /// [`MdsError::DimensionMismatch`] when `dissim` does not cover exactly
    /// `vectors.len()` points.
    pub fn fit_with_dissim(
        vectors: &[Vec<f64>],
        dissim: &DistanceMatrix,
        k: usize,
        dim: usize,
    ) -> Result<Self, MdsError> {
        if vectors.is_empty() {
            return Err(MdsError::Empty);
        }
        if dim == 0 || k < dim + 1 {
            return Err(MdsError::InvalidDimension { requested: dim });
        }
        if dissim.len() != vectors.len() {
            return Err(MdsError::DimensionMismatch {
                expected: vectors.len(),
                found: dissim.len(),
            });
        }
        let idx = select_landmarks_by(vectors, k, |i, j| dissim.get(i, j));
        let landmarks: Vec<Vec<f64>> = idx.iter().map(|&i| vectors[i].clone()).collect();
        let ld = DistanceMatrix::from_fn(landmarks.len(), |i, j| dissim.get(idx[i], idx[j]))?;
        Self::fit_selected(landmarks, &ld, dim)
    }

    /// Shared fitting tail: classical MDS on the chosen landmarks plus the
    /// triangulation pseudo-inverse.
    fn fit_selected(
        landmarks: Vec<Vec<f64>>,
        ld: &DistanceMatrix,
        dim: usize,
    ) -> Result<Self, MdsError> {
        let kk = landmarks.len();

        // Classical MDS on the landmarks (also yields the eigensystem we
        // need for the triangulation transform).
        let landmark_coords = classical_mds(ld, dim)?;

        // Double-centred Gram matrix of the landmarks.
        let mut sq = Matrix::zeros(kk, kk);
        for i in 0..kk {
            for j in 0..kk {
                let d = ld.get(i, j);
                sq[(i, j)] = d * d;
            }
        }
        let mut mean_sq = vec![0.0; kk];
        let mut grand = 0.0;
        for i in 0..kk {
            let mut s = 0.0;
            for j in 0..kk {
                s += sq[(i, j)];
            }
            mean_sq[i] = s / kk as f64;
            grand += s;
        }
        grand /= (kk * kk) as f64;
        let mut b = Matrix::zeros(kk, kk);
        for i in 0..kk {
            for j in 0..kk {
                b[(i, j)] = -0.5 * (sq[(i, j)] - mean_sq[i] - mean_sq[j] + grand);
            }
        }
        let eig = symmetric_eigen(&b)?;
        let mut pinv = Matrix::zeros(dim, kk);
        for r in 0..dim {
            let lambda = eig.eigenvalues.get(r).copied().unwrap_or(0.0);
            if lambda > 1e-12 {
                let scale = 1.0 / lambda.sqrt();
                for c in 0..kk {
                    pinv[(r, c)] = eig.eigenvectors[(c, r)] * scale;
                }
            }
        }
        Ok(LandmarkMds {
            dim,
            landmarks,
            landmark_coords,
            pinv,
            mean_sq,
        })
    }

    /// Number of landmarks.
    pub fn landmark_count(&self) -> usize {
        self.landmarks.len()
    }

    /// Target dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The landmarks' own embedded coordinates.
    pub fn landmark_coords(&self) -> &Embedding {
        &self.landmark_coords
    }

    /// Places one point by distance triangulation:
    /// `x = −½ · L⁺ · (δ² − δ̄²)`.
    ///
    /// # Errors
    ///
    /// Returns [`MdsError::DimensionMismatch`] for wrong-length input and
    /// [`MdsError::NonFinite`] for non-finite coordinates.
    pub fn place(&self, vector: &[f64]) -> Result<Vec<f64>, MdsError> {
        let expect = self.landmarks[0].len();
        if vector.len() != expect {
            return Err(MdsError::DimensionMismatch {
                expected: expect,
                found: vector.len(),
            });
        }
        if vector.iter().any(|v| !v.is_finite()) {
            return Err(MdsError::NonFinite {
                context: "landmark placement input",
            });
        }
        let kk = self.landmarks.len();
        let mut delta = vec![0.0; kk];
        for (d, l) in delta.iter_mut().zip(&self.landmarks) {
            let dist = Metric::Euclidean.distance(l, vector);
            *d = dist * dist;
        }
        let mut out = vec![0.0; self.dim];
        for (r, item) in out.iter_mut().enumerate() {
            for (c, (d, m)) in delta.iter().zip(&self.mean_sq).enumerate() {
                *item += self.pinv[(r, c)] * (d - m);
            }
            *item *= -0.5;
        }
        Ok(out)
    }

    /// Places a batch of points into an [`Embedding`].
    ///
    /// # Errors
    ///
    /// Propagates [`LandmarkMds::place`] failures.
    pub fn place_all(&self, vectors: &[Vec<f64>]) -> Result<Embedding, MdsError> {
        let mut e = Embedding::zeros(0, self.dim);
        for v in vectors {
            e.push(&self.place(v)?);
        }
        Ok(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Vec<Vec<f64>> {
        // A planar grid in 5-D (first two axes carry all variance).
        let side = (n as f64).sqrt().ceil() as usize;
        (0..n)
            .map(|i| {
                let x = (i % side) as f64 * 0.1;
                let y = (i / side) as f64 * 0.1;
                vec![x, y, 0.0, 0.0, 0.0]
            })
            .collect()
    }

    #[test]
    fn landmark_selection_is_spread_out() {
        let vectors = grid(64);
        let idx = select_landmarks(&vectors, 8);
        assert_eq!(idx.len(), 8);
        // No duplicates.
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
        // The chosen landmarks span a large part of the diameter.
        let d = |a: usize, b: usize| Metric::Euclidean.distance(&vectors[a], &vectors[b]);
        let spread = idx
            .iter()
            .flat_map(|&a| idx.iter().map(move |&b| d(a, b)))
            .fold(0.0, f64::max);
        let diameter = (0..64)
            .flat_map(|a| (0..64).map(move |b| d(a, b)))
            .fold(0.0, f64::max);
        assert!(spread > 0.9 * diameter);
    }

    #[test]
    fn selection_handles_duplicates_and_small_sets() {
        let vectors = vec![vec![1.0, 1.0]; 5];
        let idx = select_landmarks(&vectors, 4);
        assert_eq!(idx.len(), 1); // all coincide — only the seed survives
        assert!(select_landmarks(&[], 3).is_empty());
    }

    #[test]
    fn placement_reproduces_planar_distances() {
        let vectors = grid(100);
        let lmds = LandmarkMds::fit(&vectors, 12, 2).unwrap();
        let e = lmds.place_all(&vectors).unwrap();
        let d = DistanceMatrix::from_vectors(&vectors).unwrap();
        let stress = e.stress(&d).unwrap();
        assert!(stress < 0.01, "landmark stress too high: {stress}");
    }

    #[test]
    fn out_of_sample_placement_is_consistent() {
        let vectors = grid(64);
        let lmds = LandmarkMds::fit(&vectors, 10, 2).unwrap();
        // A point not in the training set.
        let novel = vec![0.35, 0.35, 0.0, 0.0, 0.0];
        let placed = lmds.place(&novel).unwrap();
        // Its distance to a placed training point must match the original
        // space (planar data embeds exactly).
        let anchor = lmds.place(&vectors[0]).unwrap();
        let emb_d = ((placed[0] - anchor[0]).powi(2) + (placed[1] - anchor[1]).powi(2)).sqrt();
        let true_d = Metric::Euclidean.distance(&novel, &vectors[0]);
        assert!((emb_d - true_d).abs() < 0.01, "{emb_d} vs {true_d}");
    }

    #[test]
    fn fit_with_dissim_matches_direct_fit_exactly() {
        let vectors = grid(80);
        let dissim = DistanceMatrix::from_vectors(&vectors).unwrap();
        let direct = LandmarkMds::fit(&vectors, 10, 2).unwrap();
        let cached = LandmarkMds::fit_with_dissim(&vectors, &dissim, 10, 2).unwrap();
        assert_eq!(direct.landmarks, cached.landmarks);
        assert_eq!(direct.landmark_coords, cached.landmark_coords);
        // Placements must agree bit-for-bit, including out of sample.
        let novel = vec![0.23, 0.41, 0.0, 0.0, 0.0];
        assert_eq!(direct.place(&novel).unwrap(), cached.place(&novel).unwrap());
        assert_eq!(
            direct.place_all(&vectors).unwrap(),
            cached.place_all(&vectors).unwrap()
        );
    }

    #[test]
    fn fit_with_dissim_validates_matrix_size() {
        let vectors = grid(16);
        let small = DistanceMatrix::from_vectors(&vectors[..8]).unwrap();
        assert!(matches!(
            LandmarkMds::fit_with_dissim(&vectors, &small, 4, 2),
            Err(MdsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn fit_validates_parameters() {
        let vectors = grid(16);
        assert!(LandmarkMds::fit(&[], 4, 2).is_err());
        assert!(LandmarkMds::fit(&vectors, 2, 2).is_err()); // k < dim + 1
        assert!(LandmarkMds::fit(&vectors, 4, 0).is_err());
    }

    #[test]
    fn place_validates_input() {
        let vectors = grid(16);
        let lmds = LandmarkMds::fit(&vectors, 6, 2).unwrap();
        assert!(lmds.place(&[0.1, 0.2]).is_err());
        assert!(lmds.place(&[f64::NAN, 0.0, 0.0, 0.0, 0.0]).is_err());
        assert_eq!(lmds.dim(), 2);
        assert_eq!(lmds.landmark_count(), 6);
    }
}
