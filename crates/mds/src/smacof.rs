//! SMACOF — Scaling by MAjorizing a COmplicated Function.
//!
//! Minimises the raw stress `Σ_{i<j} (d_ij(X) − δ_ij)²` (the loss function
//! from §2.2 of the Stay-Away paper) by iterating the Guttman transform
//! `X ← (1/n)·B(X)·X`. Each sweep is guaranteed not to increase the stress,
//! which the property tests in this module rely on.
//!
//! Two entry points are provided:
//!
//! * [`Smacof::embed`] — cold-start embedding seeded by classical MDS;
//! * [`Smacof::embed_warm`] — warm-start from a previous configuration, the
//!   basis of the incremental per-period re-embedding used by the Stay-Away
//!   controller (new points are appended via
//!   [`warm_start_with_new_points`]).

use crate::classical::classical_mds;
use crate::distance::DistanceMatrix;
use crate::embedding::Embedding;
use crate::MdsError;

/// Configuration and entry point for the SMACOF solver.
///
/// # Example
///
/// ```
/// use stayaway_mds::{distance::DistanceMatrix, smacof::Smacof};
///
/// # fn main() -> Result<(), stayaway_mds::MdsError> {
/// let d = DistanceMatrix::from_vectors(&[
///     vec![0.0, 0.0, 0.0],
///     vec![1.0, 0.0, 0.0],
///     vec![0.0, 1.0, 0.0],
///     vec![0.0, 0.0, 1.0],
/// ])?;
/// let e = Smacof::new(2).max_iterations(200).embed(&d)?;
/// assert!(e.stress(&d)? < 0.2); // a 3-simplex cannot be flat, but close
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Smacof {
    dim: usize,
    max_iterations: usize,
    tolerance: f64,
}

impl Smacof {
    /// Creates a solver targeting `dim` dimensions with default iteration
    /// budget (300) and relative stress tolerance (1e-8).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "target dimension must be positive");
        Smacof {
            dim,
            max_iterations: 300,
            tolerance: 1e-8,
        }
    }

    /// Sets the maximum number of majorization sweeps.
    pub fn max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = iters;
        self
    }

    /// Sets the relative stress-improvement tolerance used to stop early.
    pub fn tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }

    /// Target dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Embeds `dissim` starting from a classical-MDS seed.
    ///
    /// # Errors
    ///
    /// Propagates seed/solver failures; returns [`MdsError::Empty`] for an
    /// empty matrix.
    pub fn embed(&self, dissim: &DistanceMatrix) -> Result<Embedding, MdsError> {
        let init = classical_mds(dissim, self.dim)?;
        self.embed_warm(dissim, init)
    }

    /// Like [`Smacof::embed`], but also reports how many majorization
    /// sweeps ran — the same computation, traced for observability.
    ///
    /// # Errors
    ///
    /// Propagates seed/solver failures; returns [`MdsError::Empty`] for an
    /// empty matrix.
    pub fn embed_traced(&self, dissim: &DistanceMatrix) -> Result<(Embedding, u64), MdsError> {
        let init = classical_mds(dissim, self.dim)?;
        self.embed_warm_traced(dissim, init)
    }

    /// Embeds `dissim` starting from the supplied configuration.
    ///
    /// The returned embedding's stress is never higher than the stress of
    /// `init` (majorization guarantee).
    ///
    /// # Errors
    ///
    /// Returns [`MdsError::DimensionMismatch`] when `init` has the wrong
    /// number of points or dimensionality.
    pub fn embed_warm(
        &self,
        dissim: &DistanceMatrix,
        init: Embedding,
    ) -> Result<Embedding, MdsError> {
        self.embed_warm_traced(dissim, init).map(|(e, _)| e)
    }

    /// Like [`Smacof::embed_warm`], but also reports how many
    /// majorization sweeps ran before convergence (or the iteration
    /// budget was exhausted) — the same computation, traced for
    /// observability.
    ///
    /// # Errors
    ///
    /// Returns [`MdsError::DimensionMismatch`] when `init` has the wrong
    /// number of points or dimensionality.
    pub fn embed_warm_traced(
        &self,
        dissim: &DistanceMatrix,
        init: Embedding,
    ) -> Result<(Embedding, u64), MdsError> {
        let n = dissim.len();
        if init.len() != n {
            return Err(MdsError::DimensionMismatch {
                expected: n,
                found: init.len(),
            });
        }
        if init.dim() != self.dim {
            return Err(MdsError::DimensionMismatch {
                expected: self.dim,
                found: init.dim(),
            });
        }
        if n <= 1 {
            return Ok((init, 0));
        }

        let mut x = init;
        let mut prev_stress = x.raw_stress(dissim)?;
        let mut sweeps = 0u64;
        for _ in 0..self.max_iterations {
            x = guttman_transform(&x, dissim);
            sweeps += 1;
            let stress = x.raw_stress(dissim)?;
            // Relative improvement check (stress is monotonically
            // non-increasing under the Guttman transform).
            let denom = prev_stress.max(f64::MIN_POSITIVE);
            if (prev_stress - stress) / denom < self.tolerance {
                break;
            }
            prev_stress = stress;
        }
        Ok((x, sweeps))
    }
}

impl Default for Smacof {
    fn default() -> Self {
        Smacof::new(2)
    }
}

/// One Guttman transform sweep: `X⁺ = (1/n)·B(X)·X` with
/// `b_ij = −δ_ij / d_ij(X)` for `i ≠ j` (0 when the embedded points
/// coincide) and `b_ii = −Σ_{j≠i} b_ij`.
fn guttman_transform(x: &Embedding, dissim: &DistanceMatrix) -> Embedding {
    let n = x.len();
    let dim = x.dim();
    let mut out = vec![0.0; n * dim];
    // Row i of B·X expands to Σ_{j≠i} (δ_ij / d_ij)(x_i − x_j) because the
    // diagonal entry b_ii closes each row of B to zero sum.
    for i in 0..n {
        let xi = x.point(i);
        let acc = &mut out[i * dim..(i + 1) * dim];
        for j in 0..n {
            if i == j {
                continue;
            }
            let xj = x.point(j);
            let d = x.distance(i, j);
            let ratio = if d > 1e-12 { dissim.get(i, j) / d } else { 0.0 };
            for k in 0..dim {
                acc[k] += ratio * (xi[k] - xj[k]);
            }
        }
        for v in acc.iter_mut() {
            *v /= n as f64;
        }
    }
    Embedding::from_coords(dim, out).expect("guttman transform preserves shape")
}

/// Builds a warm-start configuration for a dissimilarity matrix that extends
/// a previous one with extra trailing points.
///
/// The first `prev.len()` points keep their old coordinates; each new point
/// is placed at the coordinates of its nearest already-embedded neighbour
/// (by the dissimilarities in `dissim`), nudged by a tiny deterministic
/// offset so coincident starts can separate. This is the placement strategy
/// the Stay-Away controller uses every period so the map stays visually and
/// topologically stable (§4 of the paper relies on the map being steady
/// enough to define trajectories on).
///
/// # Errors
///
/// Returns [`MdsError::DimensionMismatch`] if `dissim` has fewer points than
/// `prev`.
pub fn warm_start_with_new_points(
    prev: &Embedding,
    dissim: &DistanceMatrix,
) -> Result<Embedding, MdsError> {
    let n_old = prev.len();
    let n = dissim.len();
    if n < n_old {
        return Err(MdsError::DimensionMismatch {
            expected: n_old,
            found: n,
        });
    }
    let mut init = prev.clone();
    for i in n_old..n {
        if i == 0 {
            init.push(&vec![0.0; prev.dim()]);
            continue;
        }
        // Nearest among points already placed (old points and previously
        // appended new points).
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for j in 0..i {
            let d = dissim.get(i, j);
            if d < best_d {
                best_d = d;
                best = j;
            }
        }
        let mut p = init.point(best).to_vec();
        // Deterministic tiny offset so two coincident points can separate
        // during majorization.
        let nudge = 1e-6 * (1.0 + (i % 7) as f64);
        p[0] += nudge;
        if p.len() > 1 {
            p[1] -= nudge * 0.5;
        }
        init.push(&p);
    }
    Ok(init)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simplex(n: usize) -> DistanceMatrix {
        DistanceMatrix::from_fn(n, |_, _| 1.0).unwrap()
    }

    #[test]
    fn embeds_planar_data_with_negligible_stress() {
        let pts = vec![
            vec![0.0, 0.0],
            vec![2.0, 0.0],
            vec![2.0, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 0.5],
        ];
        let d = DistanceMatrix::from_vectors(&pts).unwrap();
        let e = Smacof::new(2).embed(&d).unwrap();
        assert!(e.stress(&d).unwrap() < 1e-6);
    }

    #[test]
    fn stress_is_monotone_under_sweeps() {
        let d = simplex(6);
        let mut x = classical_mds(&d, 2).unwrap();
        let mut prev = x.raw_stress(&d).unwrap();
        for _ in 0..50 {
            x = guttman_transform(&x, &d);
            let s = x.raw_stress(&d).unwrap();
            assert!(s <= prev + 1e-12, "stress increased: {prev} -> {s}");
            prev = s;
        }
    }

    #[test]
    fn warm_start_matches_cold_start_quality() {
        let pts: Vec<Vec<f64>> = (0..10)
            .map(|i| {
                vec![
                    (i as f64 * 0.37).sin(),
                    (i as f64 * 0.61).cos(),
                    i as f64 * 0.1,
                ]
            })
            .collect();
        let d = DistanceMatrix::from_vectors(&pts).unwrap();
        let cold = Smacof::new(2).embed(&d).unwrap();
        let warm = Smacof::new(2).embed_warm(&d, cold.clone()).unwrap();
        assert!(warm.stress(&d).unwrap() <= cold.stress(&d).unwrap() + 1e-12);
    }

    #[test]
    fn incremental_growth_keeps_old_points_roughly_stable() {
        // Embed 8 points, then extend with 2 more near the first cluster.
        let mut pts: Vec<Vec<f64>> = (0..8)
            .map(|i| vec![i as f64 * 0.1, (i as f64 * 0.2).sin(), 0.0])
            .collect();
        let d8 = DistanceMatrix::from_vectors(&pts).unwrap();
        let e8 = Smacof::new(2).embed(&d8).unwrap();

        pts.push(vec![0.05, 0.01, 0.0]);
        pts.push(vec![0.15, 0.02, 0.0]);
        let d10 = DistanceMatrix::from_vectors(&pts).unwrap();
        let init = warm_start_with_new_points(&e8, &d10).unwrap();
        assert_eq!(init.len(), 10);
        let e10 = Smacof::new(2)
            .max_iterations(30)
            .embed_warm(&d10, init)
            .unwrap();
        assert!(e10.stress(&d10).unwrap() < 0.05);
    }

    #[test]
    fn warm_start_rejects_shrinking_matrix() {
        let d = simplex(3);
        let e = Smacof::new(2).embed(&d).unwrap();
        let d2 = simplex(2);
        assert!(warm_start_with_new_points(&e, &d2).is_err());
    }

    #[test]
    fn single_point_is_a_fixed_point() {
        let d = DistanceMatrix::from_vectors(&[vec![42.0]]).unwrap();
        let e = Smacof::new(2).embed(&d).unwrap();
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn coincident_points_do_not_produce_nan() {
        let pts = vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![2.0, 2.0]];
        let d = DistanceMatrix::from_vectors(&pts).unwrap();
        let e = Smacof::new(2).embed(&d).unwrap();
        for p in e.iter() {
            assert!(p.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn builder_configuration() {
        let s = Smacof::new(3).max_iterations(10).tolerance(1e-4);
        assert_eq!(s.dim(), 3);
        let d = simplex(4);
        assert!(s.embed(&d).is_ok());
    }

    #[test]
    fn traced_embedding_matches_untraced_and_counts_sweeps() {
        let pts: Vec<Vec<f64>> = (0..9)
            .map(|i| {
                vec![
                    (i as f64 * 0.3).sin(),
                    (i as f64 * 0.7).cos(),
                    i as f64 * 0.05,
                ]
            })
            .collect();
        let d = DistanceMatrix::from_vectors(&pts).unwrap();
        let plain = Smacof::new(2).embed(&d).unwrap();
        let (traced, sweeps) = Smacof::new(2).embed_traced(&d).unwrap();
        assert_eq!(plain, traced, "tracing must not change the embedding");
        assert!(sweeps >= 1);
        assert!(sweeps <= 300);
        // A single point converges in zero sweeps.
        let d1 = DistanceMatrix::from_vectors(&[vec![1.0]]).unwrap();
        let (_, sweeps) = Smacof::new(2).embed_traced(&d1).unwrap();
        assert_eq!(sweeps, 0);
    }

    #[test]
    fn embed_warm_validates_dimensions() {
        let d = simplex(4);
        let wrong_n = Embedding::zeros(3, 2);
        assert!(Smacof::new(2).embed_warm(&d, wrong_n).is_err());
        let wrong_dim = Embedding::zeros(4, 3);
        assert!(Smacof::new(2).embed_warm(&d, wrong_dim).is_err());
    }
}
