//! SMACOF — Scaling by MAjorizing a COmplicated Function.
//!
//! Minimises the raw stress `Σ_{i<j} (d_ij(X) − δ_ij)²` (the loss function
//! from §2.2 of the Stay-Away paper) by iterating the Guttman transform
//! `X ← (1/n)·B(X)·X`. Each sweep is guaranteed not to increase the stress,
//! which the property tests in this module rely on.
//!
//! Two entry points are provided:
//!
//! * [`Smacof::embed`] — cold-start embedding seeded by classical MDS;
//! * [`Smacof::embed_warm`] — warm-start from a previous configuration, the
//!   basis of the incremental per-period re-embedding used by the Stay-Away
//!   controller (new points are appended via
//!   [`warm_start_with_new_points`]).

use crate::classical::classical_mds;
use crate::distance::DistanceMatrix;
use crate::embedding::Embedding;
use crate::parallel;
use crate::MdsError;

/// Inter-point distances at or below this threshold are treated as
/// coincident by the f64 Guttman transform: their `δ/d` ratio is clamped
/// to zero instead of emitting a huge or non-finite coordinate update
/// that would poison the whole embedding.
const MIN_EMBED_DIST: f64 = 1e-12;

/// The f32 kernel's coincidence threshold. `1e-12` underflows the f32
/// significand's usable range, so the blocked kernel clamps earlier; the
/// difference is covered by the kernel's documented accuracy budget.
const MIN_EMBED_DIST_F32: f32 = 1e-6;

/// Rows per parallel sweep chunk. Derived only from the point count —
/// never from the worker count — so chunk boundaries (and therefore the
/// result bits) are identical however many workers run them.
const SWEEP_CHUNK_ROWS: usize = 64;

/// Columns per cache block of the f32 kernel: 64 points × 2 coordinates
/// × 4 bytes keeps a block of the coordinate array resident in L1 while
/// every row of a chunk scans it.
const F32_BLOCK: usize = 64;

/// Numeric kernel used for the Guttman-transform distance accumulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum SweepKernel {
    /// Full f64 accumulation — the reference kernel and the default. Its
    /// results are bit-for-bit those of the original serial solver, for
    /// any worker count.
    #[default]
    F64,
    /// Cache-blocked f32 kernel: coordinates and dissimilarities are
    /// demoted to f32 once per solve, pair contributions are computed in
    /// f32 over `F32_BLOCK`-column tiles, and row accumulation happens in
    /// f64. Roughly halves memory traffic on large maps at the cost of
    /// ~1e-6 relative coordinate error (stress convergence checks stay
    /// f64). Deterministic for any worker count, but *not* bit-identical
    /// to [`SweepKernel::F64`].
    F32Blocked,
}

/// Configuration and entry point for the SMACOF solver.
///
/// # Example
///
/// ```
/// use stayaway_mds::{distance::DistanceMatrix, smacof::Smacof};
///
/// # fn main() -> Result<(), stayaway_mds::MdsError> {
/// let d = DistanceMatrix::from_vectors(&[
///     vec![0.0, 0.0, 0.0],
///     vec![1.0, 0.0, 0.0],
///     vec![0.0, 1.0, 0.0],
///     vec![0.0, 0.0, 1.0],
/// ])?;
/// let e = Smacof::new(2).max_iterations(200).embed(&d)?;
/// assert!(e.stress(&d)? < 0.2); // a 3-simplex cannot be flat, but close
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Smacof {
    dim: usize,
    max_iterations: usize,
    tolerance: f64,
    workers: usize,
    kernel: SweepKernel,
}

impl Smacof {
    /// Creates a solver targeting `dim` dimensions with default iteration
    /// budget (300), relative stress tolerance (1e-8), a single worker and
    /// the f64 reference kernel.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "target dimension must be positive");
        Smacof {
            dim,
            max_iterations: 300,
            tolerance: 1e-8,
            workers: 1,
            kernel: SweepKernel::F64,
        }
    }

    /// Sets the maximum number of majorization sweeps.
    pub fn max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = iters;
        self
    }

    /// Sets the relative stress-improvement tolerance used to stop early.
    pub fn tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }

    /// Sets the worker-thread budget of the majorization sweep (clamped to
    /// ≥ 1; default 1). Sweep chunk boundaries are derived from the point
    /// count alone, so **the embedding is bit-for-bit identical for every
    /// worker count** — workers only bound how many chunks run
    /// concurrently. Small maps (≤ one chunk) always run inline.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Selects the numeric kernel of the Guttman transform (default
    /// [`SweepKernel::F64`], the bit-stable reference).
    pub fn kernel(mut self, kernel: SweepKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Target dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The worker-thread budget.
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// The configured sweep kernel.
    pub fn sweep_kernel(&self) -> SweepKernel {
        self.kernel
    }

    /// Embeds `dissim` starting from a classical-MDS seed.
    ///
    /// # Errors
    ///
    /// Propagates seed/solver failures; returns [`MdsError::Empty`] for an
    /// empty matrix.
    pub fn embed(&self, dissim: &DistanceMatrix) -> Result<Embedding, MdsError> {
        let init = classical_mds(dissim, self.dim)?;
        self.embed_warm(dissim, init)
    }

    /// Like [`Smacof::embed`], but also reports how many majorization
    /// sweeps ran — the same computation, traced for observability.
    ///
    /// # Errors
    ///
    /// Propagates seed/solver failures; returns [`MdsError::Empty`] for an
    /// empty matrix.
    pub fn embed_traced(&self, dissim: &DistanceMatrix) -> Result<(Embedding, u64), MdsError> {
        let init = classical_mds(dissim, self.dim)?;
        self.embed_warm_traced(dissim, init)
    }

    /// Embeds `dissim` starting from the supplied configuration.
    ///
    /// The returned embedding's stress is never higher than the stress of
    /// `init` (majorization guarantee).
    ///
    /// # Errors
    ///
    /// Returns [`MdsError::DimensionMismatch`] when `init` has the wrong
    /// number of points or dimensionality.
    pub fn embed_warm(
        &self,
        dissim: &DistanceMatrix,
        init: Embedding,
    ) -> Result<Embedding, MdsError> {
        self.embed_warm_traced(dissim, init).map(|(e, _)| e)
    }

    /// Like [`Smacof::embed_warm`], but also reports how many
    /// majorization sweeps ran before convergence (or the iteration
    /// budget was exhausted) — the same computation, traced for
    /// observability.
    ///
    /// # Errors
    ///
    /// Returns [`MdsError::DimensionMismatch`] when `init` has the wrong
    /// number of points or dimensionality.
    pub fn embed_warm_traced(
        &self,
        dissim: &DistanceMatrix,
        init: Embedding,
    ) -> Result<(Embedding, u64), MdsError> {
        let n = dissim.len();
        if init.len() != n {
            return Err(MdsError::DimensionMismatch {
                expected: n,
                found: init.len(),
            });
        }
        if init.dim() != self.dim {
            return Err(MdsError::DimensionMismatch {
                expected: self.dim,
                found: init.dim(),
            });
        }
        if n <= 1 {
            return Ok((init, 0));
        }

        // The f32 kernel reads dissimilarities out of a dense row-major
        // f32 copy built once per solve (they never change across sweeps).
        let dissim32 = match self.kernel {
            SweepKernel::F64 => None,
            SweepKernel::F32Blocked => Some(dense_f32(dissim)),
        };

        let mut x = init;
        let mut prev_stress = x.raw_stress(dissim)?;
        let mut sweeps = 0u64;
        for _ in 0..self.max_iterations {
            x = self.guttman_transform(&x, dissim, dissim32.as_deref());
            sweeps += 1;
            let stress = x.raw_stress(dissim)?;
            // Relative improvement check (stress is monotonically
            // non-increasing under the Guttman transform).
            let denom = prev_stress.max(f64::MIN_POSITIVE);
            if (prev_stress - stress) / denom < self.tolerance {
                break;
            }
            prev_stress = stress;
        }
        Ok((x, sweeps))
    }

    /// One Guttman transform sweep `X⁺ = (1/n)·B(X)·X`, chunk-parallel
    /// over output rows. Row computations are independent, so the result
    /// is bit-identical for any worker count and chunking.
    fn guttman_transform(
        &self,
        x: &Embedding,
        dissim: &DistanceMatrix,
        dissim32: Option<&[f32]>,
    ) -> Embedding {
        let n = x.len();
        let dim = x.dim();
        let mut out = vec![0.0; n * dim];
        match (self.kernel, dissim32) {
            (SweepKernel::F32Blocked, Some(d32)) => {
                let x32: Vec<f32> = x.iter().flatten().map(|&v| v as f32).collect();
                let pieces = parallel::row_pieces(&mut out, dim, SWEEP_CHUNK_ROWS);
                parallel::scatter(self.workers, pieces, |first_row, rows| {
                    guttman_rows_f32_blocked(&x32, d32, n, dim, first_row, rows);
                });
            }
            _ => {
                let pieces = parallel::row_pieces(&mut out, dim, SWEEP_CHUNK_ROWS);
                parallel::scatter(self.workers, pieces, |first_row, rows| {
                    guttman_rows_f64(x, dissim, first_row, rows);
                });
            }
        }
        Embedding::from_coords(dim, out).expect("guttman transform preserves shape")
    }
}

/// The dense row-major f32 copy of a dissimilarity matrix (zero
/// diagonal), the read layout of the cache-blocked kernel.
fn dense_f32(dissim: &DistanceMatrix) -> Vec<f32> {
    let n = dissim.len();
    let mut dense = vec![0.0f32; n * n];
    for j in 1..n {
        for i in 0..j {
            let d = dissim.get(i, j) as f32;
            dense[i * n + j] = d;
            dense[j * n + i] = d;
        }
    }
    dense
}

impl Default for Smacof {
    fn default() -> Self {
        Smacof::new(2)
    }
}

/// `δ/d` with the coincidence clamp: zero for (near-)coincident embedded
/// points and for any non-finite quotient, so one degenerate pair can
/// never inject inf/NaN into the whole configuration.
#[inline]
fn guarded_ratio(delta: f64, d: f64) -> f64 {
    if d > MIN_EMBED_DIST {
        let r = delta / d;
        if r.is_finite() {
            r
        } else {
            0.0
        }
    } else {
        0.0
    }
}

/// Reference kernel: rows `[first_row, first_row + rows)` of one Guttman
/// sweep, `rows = out.len() / dim`. Row i of B·X expands to
/// Σ_{j≠i} (δ_ij / d_ij)(x_i − x_j) because the diagonal entry b_ii
/// closes each row of B to zero sum.
fn guttman_rows_f64(x: &Embedding, dissim: &DistanceMatrix, first_row: usize, out: &mut [f64]) {
    let n = x.len();
    let dim = x.dim();
    for (r, acc) in out.chunks_mut(dim).enumerate() {
        let i = first_row + r;
        let xi = x.point(i);
        for j in 0..n {
            if i == j {
                continue;
            }
            let xj = x.point(j);
            let d = x.distance(i, j);
            let ratio = guarded_ratio(dissim.get(i, j), d);
            for k in 0..dim {
                acc[k] += ratio * (xi[k] - xj[k]);
            }
        }
        for v in acc.iter_mut() {
            *v /= n as f64;
        }
    }
}

/// Cache-blocked f32 kernel for the same rows: the column range is walked
/// in `F32_BLOCK`-wide tiles so a tile of the f32 coordinate array stays
/// cache-resident while every row of the chunk scans it. Pair terms are
/// f32; row accumulation is f64. Per row, contributions are added in
/// ascending column order regardless of chunking, so the result is
/// deterministic for any worker count.
fn guttman_rows_f32_blocked(
    x32: &[f32],
    dissim32: &[f32],
    n: usize,
    dim: usize,
    first_row: usize,
    out: &mut [f64],
) {
    for block_start in (0..n).step_by(F32_BLOCK) {
        let block_end = (block_start + F32_BLOCK).min(n);
        for (r, acc) in out.chunks_mut(dim).enumerate() {
            let i = first_row + r;
            let xi = &x32[i * dim..(i + 1) * dim];
            let drow = &dissim32[i * n..(i + 1) * n];
            for j in block_start..block_end {
                if i == j {
                    continue;
                }
                let xj = &x32[j * dim..(j + 1) * dim];
                let mut sq = 0.0f32;
                for k in 0..dim {
                    let t = xi[k] - xj[k];
                    sq += t * t;
                }
                let d = sq.sqrt();
                let ratio = if d > MIN_EMBED_DIST_F32 {
                    let r = drow[j] / d;
                    if r.is_finite() {
                        r
                    } else {
                        0.0
                    }
                } else {
                    0.0
                };
                for k in 0..dim {
                    acc[k] += (ratio * (xi[k] - xj[k])) as f64;
                }
            }
        }
    }
    for acc in out.chunks_mut(dim) {
        for v in acc.iter_mut() {
            *v /= n as f64;
        }
    }
}

/// Builds a warm-start configuration for a dissimilarity matrix that extends
/// a previous one with extra trailing points.
///
/// The first `prev.len()` points keep their old coordinates; each new point
/// is placed at the coordinates of its nearest already-embedded neighbour
/// (by the dissimilarities in `dissim`), nudged by a tiny deterministic
/// offset so coincident starts can separate. This is the placement strategy
/// the Stay-Away controller uses every period so the map stays visually and
/// topologically stable (§4 of the paper relies on the map being steady
/// enough to define trajectories on).
///
/// # Errors
///
/// Returns [`MdsError::DimensionMismatch`] if `dissim` has fewer points than
/// `prev`.
pub fn warm_start_with_new_points(
    prev: &Embedding,
    dissim: &DistanceMatrix,
) -> Result<Embedding, MdsError> {
    let n_old = prev.len();
    let n = dissim.len();
    if n < n_old {
        return Err(MdsError::DimensionMismatch {
            expected: n_old,
            found: n,
        });
    }
    let mut init = prev.clone();
    for i in n_old..n {
        if i == 0 {
            init.push(&vec![0.0; prev.dim()]);
            continue;
        }
        // Nearest among points already placed (old points and previously
        // appended new points).
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for j in 0..i {
            let d = dissim.get(i, j);
            if d < best_d {
                best_d = d;
                best = j;
            }
        }
        let mut p = init.point(best).to_vec();
        // Deterministic tiny offset so two coincident points can separate
        // during majorization.
        let nudge = 1e-6 * (1.0 + (i % 7) as f64);
        p[0] += nudge;
        if p.len() > 1 {
            p[1] -= nudge * 0.5;
        }
        init.push(&p);
    }
    Ok(init)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simplex(n: usize) -> DistanceMatrix {
        DistanceMatrix::from_fn(n, |_, _| 1.0).unwrap()
    }

    #[test]
    fn embeds_planar_data_with_negligible_stress() {
        let pts = vec![
            vec![0.0, 0.0],
            vec![2.0, 0.0],
            vec![2.0, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 0.5],
        ];
        let d = DistanceMatrix::from_vectors(&pts).unwrap();
        let e = Smacof::new(2).embed(&d).unwrap();
        assert!(e.stress(&d).unwrap() < 1e-6);
    }

    #[test]
    fn stress_is_monotone_under_sweeps() {
        let d = simplex(6);
        let solver = Smacof::new(2);
        let mut x = classical_mds(&d, 2).unwrap();
        let mut prev = x.raw_stress(&d).unwrap();
        for _ in 0..50 {
            x = solver.guttman_transform(&x, &d, None);
            let s = x.raw_stress(&d).unwrap();
            assert!(s <= prev + 1e-12, "stress increased: {prev} -> {s}");
            prev = s;
        }
    }

    /// A point cloud big enough to span several `SWEEP_CHUNK_ROWS` chunks.
    fn cloud(n: usize) -> DistanceMatrix {
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                vec![
                    (i as f64 * 0.37).sin(),
                    (i as f64 * 0.61).cos(),
                    (i as f64 * 0.13).sin() * 0.5,
                ]
            })
            .collect();
        DistanceMatrix::from_vectors(&pts).unwrap()
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let d = cloud(150);
        let reference = Smacof::new(2).max_iterations(15).embed(&d).unwrap();
        for workers in [2, 3, 4, 8] {
            let parallel = Smacof::new(2)
                .max_iterations(15)
                .workers(workers)
                .embed(&d)
                .unwrap();
            assert_eq!(reference, parallel, "diverged at {workers} workers");
        }
    }

    #[test]
    fn f32_kernel_is_deterministic_and_close_to_f64() {
        let d = cloud(100);
        let f64_embed = Smacof::new(2).max_iterations(25).embed(&d).unwrap();
        let f32_one = Smacof::new(2)
            .max_iterations(25)
            .kernel(SweepKernel::F32Blocked)
            .embed(&d)
            .unwrap();
        for workers in [2, 4, 7] {
            let f32_many = Smacof::new(2)
                .max_iterations(25)
                .kernel(SweepKernel::F32Blocked)
                .workers(workers)
                .embed(&d)
                .unwrap();
            assert_eq!(
                f32_one, f32_many,
                "f32 kernel diverged at {workers} workers"
            );
        }
        // Accuracy budget: the f32 kernel tracks the reference stress.
        let s64 = f64_embed.stress(&d).unwrap();
        let s32 = f32_one.stress(&d).unwrap();
        assert!(
            (s32 - s64).abs() < 1e-3,
            "f32 stress {s32} strays from f64 stress {s64}"
        );
    }

    #[test]
    fn workers_builder_clamps_to_one() {
        let s = Smacof::new(2).workers(0);
        assert_eq!(s.worker_count(), 1);
        assert_eq!(s.sweep_kernel(), SweepKernel::F64);
        let s = s.kernel(SweepKernel::F32Blocked).workers(4);
        assert_eq!(s.worker_count(), 4);
        assert_eq!(s.sweep_kernel(), SweepKernel::F32Blocked);
    }

    #[test]
    fn warm_start_matches_cold_start_quality() {
        let pts: Vec<Vec<f64>> = (0..10)
            .map(|i| {
                vec![
                    (i as f64 * 0.37).sin(),
                    (i as f64 * 0.61).cos(),
                    i as f64 * 0.1,
                ]
            })
            .collect();
        let d = DistanceMatrix::from_vectors(&pts).unwrap();
        let cold = Smacof::new(2).embed(&d).unwrap();
        let warm = Smacof::new(2).embed_warm(&d, cold.clone()).unwrap();
        assert!(warm.stress(&d).unwrap() <= cold.stress(&d).unwrap() + 1e-12);
    }

    #[test]
    fn incremental_growth_keeps_old_points_roughly_stable() {
        // Embed 8 points, then extend with 2 more near the first cluster.
        let mut pts: Vec<Vec<f64>> = (0..8)
            .map(|i| vec![i as f64 * 0.1, (i as f64 * 0.2).sin(), 0.0])
            .collect();
        let d8 = DistanceMatrix::from_vectors(&pts).unwrap();
        let e8 = Smacof::new(2).embed(&d8).unwrap();

        pts.push(vec![0.05, 0.01, 0.0]);
        pts.push(vec![0.15, 0.02, 0.0]);
        let d10 = DistanceMatrix::from_vectors(&pts).unwrap();
        let init = warm_start_with_new_points(&e8, &d10).unwrap();
        assert_eq!(init.len(), 10);
        let e10 = Smacof::new(2)
            .max_iterations(30)
            .embed_warm(&d10, init)
            .unwrap();
        assert!(e10.stress(&d10).unwrap() < 0.05);
    }

    #[test]
    fn warm_start_rejects_shrinking_matrix() {
        let d = simplex(3);
        let e = Smacof::new(2).embed(&d).unwrap();
        let d2 = simplex(2);
        assert!(warm_start_with_new_points(&e, &d2).is_err());
    }

    #[test]
    fn single_point_is_a_fixed_point() {
        let d = DistanceMatrix::from_vectors(&[vec![42.0]]).unwrap();
        let e = Smacof::new(2).embed(&d).unwrap();
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn coincident_points_do_not_produce_nan() {
        let pts = vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![2.0, 2.0]];
        let d = DistanceMatrix::from_vectors(&pts).unwrap();
        let e = Smacof::new(2).embed(&d).unwrap();
        for p in e.iter() {
            assert!(p.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn builder_configuration() {
        let s = Smacof::new(3).max_iterations(10).tolerance(1e-4);
        assert_eq!(s.dim(), 3);
        let d = simplex(4);
        assert!(s.embed(&d).is_ok());
    }

    #[test]
    fn traced_embedding_matches_untraced_and_counts_sweeps() {
        let pts: Vec<Vec<f64>> = (0..9)
            .map(|i| {
                vec![
                    (i as f64 * 0.3).sin(),
                    (i as f64 * 0.7).cos(),
                    i as f64 * 0.05,
                ]
            })
            .collect();
        let d = DistanceMatrix::from_vectors(&pts).unwrap();
        let plain = Smacof::new(2).embed(&d).unwrap();
        let (traced, sweeps) = Smacof::new(2).embed_traced(&d).unwrap();
        assert_eq!(plain, traced, "tracing must not change the embedding");
        assert!(sweeps >= 1);
        assert!(sweeps <= 300);
        // A single point converges in zero sweeps.
        let d1 = DistanceMatrix::from_vectors(&[vec![1.0]]).unwrap();
        let (_, sweeps) = Smacof::new(2).embed_traced(&d1).unwrap();
        assert_eq!(sweeps, 0);
    }

    #[test]
    fn embed_warm_validates_dimensions() {
        let d = simplex(4);
        let wrong_n = Embedding::zeros(3, 2);
        assert!(Smacof::new(2).embed_warm(&d, wrong_n).is_err());
        let wrong_dim = Embedding::zeros(4, 3);
        assert!(Smacof::new(2).embed_warm(&d, wrong_dim).is_err());
    }
}
