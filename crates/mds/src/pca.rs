//! Principal component analysis — the ablation baseline of §2.2.
//!
//! The paper argues that a projection operator such as PCA superimposes
//! points along the discarded directions, while MDS rearranges points to
//! preserve *relative distances*. We implement PCA so the
//! `ablation_pca` bench can quantify that difference (violation-cluster
//! separation under PCA vs MDS).

use crate::embedding::Embedding;
use crate::linalg::{symmetric_eigen, Matrix};
use crate::MdsError;

/// A fitted PCA projector.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    components: Matrix, // dim_out × dim_in, rows are principal axes
    explained: Vec<f64>,
}

impl Pca {
    /// Fits a PCA with `dim_out` components to the given vectors.
    ///
    /// # Errors
    ///
    /// Returns [`MdsError::Empty`] for empty input,
    /// [`MdsError::DimensionMismatch`] for ragged input,
    /// [`MdsError::InvalidDimension`] when `dim_out` is zero or exceeds the
    /// input dimensionality, and propagates eigensolver failures.
    pub fn fit(vectors: &[Vec<f64>], dim_out: usize) -> Result<Self, MdsError> {
        let first = vectors.first().ok_or(MdsError::Empty)?;
        let dim_in = first.len();
        if dim_out == 0 || dim_out > dim_in {
            return Err(MdsError::InvalidDimension { requested: dim_out });
        }
        for v in vectors {
            if v.len() != dim_in {
                return Err(MdsError::DimensionMismatch {
                    expected: dim_in,
                    found: v.len(),
                });
            }
        }
        let n = vectors.len();
        let mut mean = vec![0.0; dim_in];
        for v in vectors {
            for (m, x) in mean.iter_mut().zip(v) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }

        // Covariance matrix (biased, 1/n — the scale does not matter for
        // the eigenvectors).
        let mut cov = Matrix::zeros(dim_in, dim_in);
        for v in vectors {
            for i in 0..dim_in {
                let di = v[i] - mean[i];
                for j in i..dim_in {
                    let dj = v[j] - mean[j];
                    cov[(i, j)] += di * dj;
                }
            }
        }
        for i in 0..dim_in {
            for j in i..dim_in {
                cov[(i, j)] /= n as f64;
                cov[(j, i)] = cov[(i, j)];
            }
        }

        let eig = symmetric_eigen(&cov)?;
        let mut components = Matrix::zeros(dim_out, dim_in);
        for k in 0..dim_out {
            for j in 0..dim_in {
                components[(k, j)] = eig.eigenvectors[(j, k)];
            }
        }
        let total: f64 = eig.eigenvalues.iter().map(|v| v.max(0.0)).sum();
        let explained = eig
            .eigenvalues
            .iter()
            .take(dim_out)
            .map(|v| if total > 0.0 { v.max(0.0) / total } else { 0.0 })
            .collect();
        Ok(Pca {
            mean,
            components,
            explained,
        })
    }

    /// Output dimensionality.
    pub fn dim_out(&self) -> usize {
        self.components.rows()
    }

    /// Input dimensionality.
    pub fn dim_in(&self) -> usize {
        self.components.cols()
    }

    /// Fraction of variance explained by each retained component.
    pub fn explained_variance_ratio(&self) -> &[f64] {
        &self.explained
    }

    /// Projects a single vector.
    ///
    /// # Errors
    ///
    /// Returns [`MdsError::DimensionMismatch`] for wrong-length input.
    pub fn project(&self, vector: &[f64]) -> Result<Vec<f64>, MdsError> {
        if vector.len() != self.dim_in() {
            return Err(MdsError::DimensionMismatch {
                expected: self.dim_in(),
                found: vector.len(),
            });
        }
        let mut out = vec![0.0; self.dim_out()];
        for (k, item) in out.iter_mut().enumerate() {
            for (j, (v, m)) in vector.iter().zip(&self.mean).enumerate() {
                *item += self.components[(k, j)] * (v - m);
            }
        }
        Ok(out)
    }

    /// Projects a batch of vectors into an [`Embedding`].
    ///
    /// # Errors
    ///
    /// Propagates [`Pca::project`] failures.
    pub fn project_all(&self, vectors: &[Vec<f64>]) -> Result<Embedding, MdsError> {
        let mut e = Embedding::zeros(0, self.dim_out());
        for v in vectors {
            e.push(&self.project(v)?);
        }
        Ok(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_dominant_axis() {
        // Points along the diagonal with small orthogonal noise: PC1 must be
        // ±(1,1)/√2.
        let vectors: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                let t = i as f64 * 0.5;
                let noise = ((i * 7919) % 13) as f64 * 0.001;
                vec![t + noise, t - noise]
            })
            .collect();
        let pca = Pca::fit(&vectors, 1).unwrap();
        let p0 = pca.project(&vectors[0]).unwrap();
        let p19 = pca.project(&vectors[19]).unwrap();
        let spread = (p19[0] - p0[0]).abs();
        // Projection along the diagonal must capture ~√2 × range of t.
        assert!((spread - 9.5 * 2.0_f64.sqrt()).abs() < 0.1);
        assert!(pca.explained_variance_ratio()[0] > 0.999);
    }

    #[test]
    fn project_is_mean_centred() {
        let vectors = vec![vec![1.0, 1.0], vec![3.0, 3.0]];
        let pca = Pca::fit(&vectors, 2).unwrap();
        let a = pca.project(&vectors[0]).unwrap();
        let b = pca.project(&vectors[1]).unwrap();
        // Symmetric about the origin after centring.
        assert!((a[0] + b[0]).abs() < 1e-9);
    }

    #[test]
    fn rejects_invalid_dim() {
        let vectors = vec![vec![1.0, 2.0]];
        assert!(Pca::fit(&vectors, 0).is_err());
        assert!(Pca::fit(&vectors, 3).is_err());
        assert!(Pca::fit(&[], 1).is_err());
    }

    #[test]
    fn project_all_builds_embedding() {
        let vectors = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![2.0, 0.0]];
        let pca = Pca::fit(&vectors, 2).unwrap();
        let e = pca.project_all(&vectors).unwrap();
        assert_eq!(e.len(), 3);
        // Collinear input keeps its spacing along PC1.
        assert!((e.distance(0, 1) - 1.0).abs() < 1e-9);
        assert!((e.distance(0, 2) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn superposition_weakness_vs_mds() {
        // Two clusters separated only along a direction PCA will discard
        // when the variance budget is dominated by another axis. This is the
        // §2.2 argument: PCA superimposes in the projection direction.
        let mut vectors = Vec::new();
        for i in 0..10 {
            let t = i as f64;
            vectors.push(vec![t, 0.0, 0.0]); // big variance on x
            vectors.push(vec![t, 0.0, 0.4]); // small offset on z
        }
        let pca = Pca::fit(&vectors, 1).unwrap();
        let a = pca.project(&vectors[0]).unwrap();
        let b = pca.project(&vectors[1]).unwrap();
        // The z-offset pair collapses onto the same 1-D coordinate.
        assert!((a[0] - b[0]).abs() < 1e-9);
    }
}
