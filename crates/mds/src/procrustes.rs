//! Orthogonal Procrustes alignment between successive embeddings.
//!
//! SMACOF's solution is unique only up to rotation, reflection and
//! translation. When the Stay-Away controller re-embeds the (grown) sample
//! set each period, the new layout must be expressed in the *previous
//! period's frame* — otherwise violation-ranges and trajectory angles would
//! jump arbitrarily between periods. This module computes the rigid
//! transform (rotation/reflection + translation, **no scaling**, so relative
//! distances are untouched) that best aligns the shared prefix of two
//! embeddings, and applies it to the whole new embedding.

use crate::embedding::Embedding;
use crate::linalg::{determinant, svd_small, Matrix};
use crate::MdsError;

/// A rigid transform `y ≈ R·x + t` in `dim` dimensions, with `R` orthogonal.
#[derive(Debug, Clone, PartialEq)]
pub struct RigidTransform {
    rotation: Matrix,
    translation: Vec<f64>,
}

impl RigidTransform {
    /// The identity transform in `dim` dimensions.
    pub fn identity(dim: usize) -> Self {
        RigidTransform {
            rotation: Matrix::identity(dim),
            translation: vec![0.0; dim],
        }
    }

    /// Dimensionality this transform operates in.
    pub fn dim(&self) -> usize {
        self.translation.len()
    }

    /// Applies the transform to a single point, returning the image.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.dim()`.
    pub fn apply_point(&self, point: &[f64]) -> Vec<f64> {
        assert_eq!(point.len(), self.dim(), "point dimension mismatch");
        let d = self.dim();
        let mut out = self.translation.clone();
        for (r, item) in out.iter_mut().enumerate().take(d) {
            for (c, p) in point.iter().enumerate() {
                *item += self.rotation[(r, c)] * p;
            }
        }
        out
    }

    /// Applies the transform to every point of an embedding in place.
    ///
    /// # Panics
    ///
    /// Panics if the embedding's dimensionality differs from the transform's.
    pub fn apply(&self, embedding: &mut Embedding) {
        assert_eq!(embedding.dim(), self.dim(), "dimension mismatch");
        for i in 0..embedding.len() {
            let img = self.apply_point(embedding.point(i));
            embedding.point_mut(i).copy_from_slice(&img);
        }
    }
}

/// Computes the rigid transform that best maps the first `shared` points of
/// `source` onto the first `shared` points of `target` (least squares),
/// allowing reflection.
///
/// # Errors
///
/// Returns [`MdsError::DimensionMismatch`] when the embeddings differ in
/// dimensionality or either has fewer than `shared` points, and
/// [`MdsError::Empty`] when `shared == 0`.
pub fn align_prefix(
    source: &Embedding,
    target: &Embedding,
    shared: usize,
) -> Result<RigidTransform, MdsError> {
    if shared == 0 {
        return Err(MdsError::Empty);
    }
    if source.dim() != target.dim() {
        return Err(MdsError::DimensionMismatch {
            expected: target.dim(),
            found: source.dim(),
        });
    }
    if source.len() < shared || target.len() < shared {
        return Err(MdsError::DimensionMismatch {
            expected: shared,
            found: source.len().min(target.len()),
        });
    }
    let dim = source.dim();

    // Centroids of the shared prefixes.
    let mut cs = vec![0.0; dim];
    let mut ct = vec![0.0; dim];
    for i in 0..shared {
        for k in 0..dim {
            cs[k] += source.point(i)[k];
            ct[k] += target.point(i)[k];
        }
    }
    for k in 0..dim {
        cs[k] /= shared as f64;
        ct[k] /= shared as f64;
    }

    if shared == 1 {
        // Pure translation.
        let translation = (0..dim).map(|k| ct[k] - cs[k]).collect();
        return Ok(RigidTransform {
            rotation: Matrix::identity(dim),
            translation,
        });
    }

    // Cross-covariance H = Σ (s_i − cs)(t_i − ct)ᵀ.
    let mut h = Matrix::zeros(dim, dim);
    for i in 0..shared {
        let s = source.point(i);
        let t = target.point(i);
        for r in 0..dim {
            for c in 0..dim {
                h[(r, c)] += (s[r] - cs[r]) * (t[c] - ct[c]);
            }
        }
    }

    // Degenerate prefix (all points coincident): no rotation is defined;
    // fall back to pure translation.
    if h.frobenius_norm() < 1e-12 {
        let translation = (0..dim).map(|k| ct[k] - cs[k]).collect();
        return Ok(RigidTransform {
            rotation: Matrix::identity(dim),
            translation,
        });
    }

    // R = V·Uᵀ from H = U·Σ·Vᵀ maps source onto target. Reflections are
    // allowed: MDS solutions are defined only up to reflection, so we take
    // whichever orthogonal map fits best.
    let svd = svd_small(&h)?;
    let rotation = svd.v.matmul(&svd.u.transpose());
    debug_assert!(
        (determinant(&rotation).abs() - 1.0).abs() < 1e-6,
        "procrustes rotation must be orthogonal"
    );

    // t = ct − R·cs.
    let mut translation = ct.clone();
    for (r, item) in translation.iter_mut().enumerate().take(dim) {
        for c in 0..dim {
            *item -= rotation[(r, c)] * cs[c];
        }
    }
    Ok(RigidTransform {
        rotation,
        translation,
    })
}

/// Aligns `new` to `previous` over their shared prefix (the length of
/// `previous`) and returns the aligned embedding.
///
/// This is the operation the controller performs after every incremental
/// re-embedding.
///
/// # Errors
///
/// Propagates [`align_prefix`] failures.
pub fn align_to_previous(new: &Embedding, previous: &Embedding) -> Result<Embedding, MdsError> {
    let shared = previous.len().min(new.len());
    if shared == 0 {
        return Ok(new.clone());
    }
    let transform = align_prefix(new, previous, shared)?;
    let mut aligned = new.clone();
    transform.apply(&mut aligned);
    Ok(aligned)
}

/// Root-mean-square deviation between the first `shared` points of two
/// embeddings — used in tests and diagnostics to quantify map drift.
///
/// # Panics
///
/// Panics if either embedding has fewer than `shared` points or the
/// dimensionalities differ.
pub fn prefix_rmsd(a: &Embedding, b: &Embedding, shared: usize) -> f64 {
    assert!(a.len() >= shared && b.len() >= shared);
    assert_eq!(a.dim(), b.dim());
    if shared == 0 {
        return 0.0;
    }
    let mut sum = 0.0;
    for i in 0..shared {
        sum += a
            .point(i)
            .iter()
            .zip(b.point(i))
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>();
    }
    (sum / shared as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rotate(e: &Embedding, theta: f64) -> Embedding {
        let mut out = e.clone();
        for i in 0..out.len() {
            let (x, y) = out.xy(i);
            let p = out.point_mut(i);
            p[0] = theta.cos() * x - theta.sin() * y;
            p[1] = theta.sin() * x + theta.cos() * y;
        }
        out
    }

    fn sample_embedding() -> Embedding {
        Embedding::from_coords(2, vec![0.0, 0.0, 1.0, 0.2, 0.3, 1.5, -0.7, 0.9, 2.0, -1.0]).unwrap()
    }

    #[test]
    fn recovers_pure_rotation() {
        let orig = sample_embedding();
        let rotated = rotate(&orig, 1.1);
        let aligned = align_to_previous(&rotated, &orig).unwrap();
        assert!(prefix_rmsd(&aligned, &orig, orig.len()) < 1e-9);
    }

    #[test]
    fn recovers_rotation_plus_translation() {
        let orig = sample_embedding();
        let mut moved = rotate(&orig, -0.6);
        for i in 0..moved.len() {
            let p = moved.point_mut(i);
            p[0] += 3.0;
            p[1] -= 2.0;
        }
        let aligned = align_to_previous(&moved, &orig).unwrap();
        assert!(prefix_rmsd(&aligned, &orig, orig.len()) < 1e-9);
    }

    #[test]
    fn recovers_reflection() {
        let orig = sample_embedding();
        let mut flipped = orig.clone();
        for i in 0..flipped.len() {
            flipped.point_mut(i)[0] *= -1.0;
        }
        let aligned = align_to_previous(&flipped, &orig).unwrap();
        assert!(prefix_rmsd(&aligned, &orig, orig.len()) < 1e-9);
    }

    #[test]
    fn alignment_is_an_isometry() {
        let orig = sample_embedding();
        let rotated = rotate(&orig, 0.8);
        let aligned = align_to_previous(&rotated, &orig).unwrap();
        for i in 0..orig.len() {
            for j in (i + 1)..orig.len() {
                assert!(
                    (aligned.distance(i, j) - rotated.distance(i, j)).abs() < 1e-9,
                    "alignment distorted pair ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn aligns_prefix_and_carries_new_points_along() {
        let orig = sample_embedding();
        let mut grown = rotate(&orig, 0.5);
        grown.push(&[5.0, 5.0]);
        let aligned = align_to_previous(&grown, &orig).unwrap();
        assert_eq!(aligned.len(), 6);
        assert!(prefix_rmsd(&aligned, &orig, orig.len()) < 1e-9);
        // The new point keeps its relative distance to point 0.
        assert!((aligned.distance(0, 5) - grown.distance(0, 5)).abs() < 1e-9);
    }

    #[test]
    fn single_shared_point_translates() {
        let a = Embedding::from_coords(2, vec![1.0, 1.0, 9.0, 9.0]).unwrap();
        let b = Embedding::from_coords(2, vec![4.0, 4.0]).unwrap();
        let t = align_prefix(&a, &b, 1).unwrap();
        let img = t.apply_point(&[1.0, 1.0]);
        assert!((img[0] - 4.0).abs() < 1e-12 && (img[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_zero_shared_points() {
        let a = sample_embedding();
        assert!(matches!(align_prefix(&a, &a, 0), Err(MdsError::Empty)));
    }

    #[test]
    fn identity_transform_is_a_noop() {
        let t = RigidTransform::identity(2);
        assert_eq!(t.apply_point(&[3.0, -4.0]), vec![3.0, -4.0]);
    }
}
