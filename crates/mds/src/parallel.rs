//! Deterministic fixed-chunk parallelism for the mapping kernels.
//!
//! The mapping hot path (SMACOF majorization sweeps, distance-matrix
//! maintenance) parallelizes over *chunks of output* whose boundaries are
//! derived **only from the problem size**, never from the worker count.
//! Each chunk is computed by exactly the same sequential code regardless
//! of which thread runs it, and chunks are disjoint output slices carved
//! out of one buffer in index order — so the assembled result is
//! bit-for-bit identical for any worker count, including the inline
//! single-worker path. The fleet determinism suites rely on this.
//!
//! Workers are plain scoped threads (`std::thread::scope`): no unsafe, no
//! persistent pool, no shared mutable state. Chunks are assigned to
//! workers round-robin by chunk index; assignment affects only *who*
//! computes a chunk, never *what* is computed.

/// One unit of parallel work: a tag (first output index covered) plus the
/// disjoint output slice the chunk owns.
type Piece<'a, T> = (usize, &'a mut [T]);

/// Runs `body` over every piece, distributing pieces round-robin across at
/// most `workers` scoped threads (the calling thread counts as one).
///
/// With `workers <= 1` or a single piece, everything runs inline on the
/// calling thread — the results are identical either way because each
/// piece's computation is self-contained.
pub(crate) fn scatter<T, F>(workers: usize, pieces: Vec<Piece<'_, T>>, body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let workers = workers.max(1).min(pieces.len());
    if workers <= 1 {
        for (tag, slice) in pieces {
            body(tag, slice);
        }
        return;
    }
    let mut shares: Vec<Vec<Piece<'_, T>>> = (0..workers).map(|_| Vec::new()).collect();
    for (index, piece) in pieces.into_iter().enumerate() {
        shares[index % workers].push(piece);
    }
    std::thread::scope(|scope| {
        let body = &body;
        let mut shares = shares.into_iter();
        let mine = shares.next().expect("workers >= 1");
        for share in shares {
            scope.spawn(move || {
                for (tag, slice) in share {
                    body(tag, slice);
                }
            });
        }
        for (tag, slice) in mine {
            body(tag, slice);
        }
    });
}

/// Splits a row-major buffer of `row_len`-wide rows into chunks of
/// `chunk_rows` rows (the last chunk may be shorter). Boundaries depend
/// only on the buffer shape.
pub(crate) fn row_pieces(
    out: &mut [f64],
    row_len: usize,
    chunk_rows: usize,
) -> Vec<Piece<'_, f64>> {
    let chunk_elems = (chunk_rows * row_len).max(1);
    out.chunks_mut(chunk_elems)
        .enumerate()
        .map(|(ci, slice)| (ci * chunk_rows, slice))
        .collect()
}

/// Splits the packed strict-upper-triangle buffer of an `n`-point distance
/// matrix (column-grouped: column `j` is the contiguous run of `j`
/// entries) into chunks of whole columns holding roughly `target_entries`
/// entries each. Boundaries depend only on `n` and `target_entries`.
///
/// Each piece is tagged with its first column index `j` (`j >= 1`).
pub(crate) fn tri_column_pieces(
    n: usize,
    upper: &mut [f64],
    target_entries: usize,
) -> Vec<Piece<'_, f64>> {
    debug_assert_eq!(upper.len(), n * n.saturating_sub(1) / 2);
    let target = target_entries.max(1);
    let mut pieces = Vec::new();
    let mut rest = upper;
    let mut col = 1usize;
    while col < n {
        let first_col = col;
        let mut entries = 0usize;
        while col < n && entries < target {
            entries += col; // column j holds j entries
            col += 1;
        }
        let (piece, tail) = rest.split_at_mut(entries);
        pieces.push((first_col, piece));
        rest = tail;
    }
    pieces
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_is_identical_for_any_worker_count() {
        let reference: Vec<f64> = (0..1000).map(|i| (i as f64).sin()).collect();
        for workers in [1, 2, 3, 8] {
            let mut out = vec![0.0; 1000];
            let pieces = row_pieces(&mut out, 4, 16);
            scatter(workers, pieces, |first_row, slice| {
                for (k, v) in slice.iter_mut().enumerate() {
                    *v = ((first_row * 4 + k) as f64).sin();
                }
            });
            assert_eq!(out, reference, "diverged at {workers} workers");
        }
    }

    #[test]
    fn row_pieces_cover_the_buffer_in_order() {
        let mut out = vec![0.0; 7 * 3];
        let pieces = row_pieces(&mut out, 3, 2);
        let tags: Vec<usize> = pieces.iter().map(|p| p.0).collect();
        assert_eq!(tags, vec![0, 2, 4, 6]);
        let total: usize = pieces.iter().map(|p| p.1.len()).sum();
        assert_eq!(total, 21);
    }

    #[test]
    fn tri_column_pieces_cover_every_column_once() {
        for n in [2usize, 3, 9, 40] {
            let mut upper = vec![0.0; n * (n - 1) / 2];
            let pieces = tri_column_pieces(n, &mut upper, 25);
            let mut covered = 0usize;
            let mut next_col = 1usize;
            for (first_col, slice) in &pieces {
                assert_eq!(*first_col, next_col, "columns out of order");
                let mut entries = 0;
                while entries < slice.len() {
                    entries += next_col;
                    next_col += 1;
                }
                assert_eq!(entries, slice.len(), "piece splits a column");
                covered += slice.len();
            }
            assert_eq!(covered, n * (n - 1) / 2);
            assert_eq!(next_col, n);
        }
    }

    #[test]
    fn empty_input_is_a_no_op() {
        let mut out: Vec<f64> = Vec::new();
        scatter(4, row_pieces(&mut out, 2, 8), |_, _| panic!("no work"));
        let pieces = tri_column_pieces(1, &mut out, 10);
        assert!(pieces.is_empty());
    }
}
