//! Minimal dense linear algebra: symmetric eigendecomposition via the cyclic
//! Jacobi method, and small-matrix helpers.
//!
//! Stay-Away only ever decomposes small-to-moderate symmetric matrices (the
//! double-centred Gram matrix of the deduplicated sample set and 2×2 / k×k
//! cross-covariance matrices for Procrustes), so a from-scratch Jacobi solver
//! is both sufficient and dependency-free.

use crate::MdsError;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from nested rows.
    ///
    /// # Errors
    ///
    /// Returns [`MdsError::Empty`] when `rows` is empty and
    /// [`MdsError::DimensionMismatch`] when rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, MdsError> {
        let first = rows.first().ok_or(MdsError::Empty)?;
        let cols = first.len();
        if cols == 0 {
            return Err(MdsError::Empty);
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(MdsError::DimensionMismatch {
                    expected: cols,
                    found: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow a row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "inner dimensions must agree for matmul"
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Returns true when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

/// Result of a symmetric eigendecomposition: `a = V · diag(λ) · Vᵀ`.
///
/// Eigenpairs are sorted by descending eigenvalue.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues in descending order.
    pub eigenvalues: Vec<f64>,
    /// Eigenvectors as columns, in the same order as [`Self::eigenvalues`].
    pub eigenvectors: Matrix,
}

/// Computes the eigendecomposition of a symmetric matrix with the cyclic
/// Jacobi rotation method.
///
/// # Errors
///
/// Returns [`MdsError::DimensionMismatch`] for non-square input,
/// [`MdsError::NonFinite`] when the matrix contains NaN/inf, and
/// [`MdsError::NoConvergence`] if the off-diagonal mass does not vanish
/// within the sweep budget (does not happen for well-posed symmetric input).
pub fn symmetric_eigen(a: &Matrix) -> Result<SymmetricEigen, MdsError> {
    if a.rows != a.cols {
        return Err(MdsError::DimensionMismatch {
            expected: a.rows,
            found: a.cols,
        });
    }
    if !a.is_finite() {
        return Err(MdsError::NonFinite {
            context: "symmetric_eigen input",
        });
    }
    let n = a.rows;
    let mut m = a.clone();
    let mut v = Matrix::identity(n);

    // Scale-aware convergence threshold.
    let scale = m.frobenius_norm().max(f64::MIN_POSITIVE);
    let tol = 1e-14 * scale;
    const MAX_SWEEPS: usize = 100;

    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() <= tol {
            let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[(i, i)], i)).collect();
            pairs.sort_by(|a, b| b.0.total_cmp(&a.0));
            let eigenvalues: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let mut eigenvectors = Matrix::zeros(n, n);
            for (new_col, &(_, old_col)) in pairs.iter().enumerate() {
                for r in 0..n {
                    eigenvectors[(r, new_col)] = v[(r, old_col)];
                }
            }
            return Ok(SymmetricEigen {
                eigenvalues,
                eigenvectors,
            });
        }

        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                // Stable computation of tan of the rotation angle.
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply rotation J(p, q, θ) on both sides: m = Jᵀ m J.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    Err(MdsError::NoConvergence {
        iterations: MAX_SWEEPS,
        stress: f64::NAN,
    })
}

/// Singular value decomposition of a small matrix `a = U · diag(σ) · Vᵀ`,
/// computed via the eigendecomposition of `aᵀa` (adequate for the tiny k×k
/// cross-covariance matrices used in Procrustes alignment).
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (columns).
    pub u: Matrix,
    /// Singular values, descending.
    pub singular_values: Vec<f64>,
    /// Right singular vectors (columns).
    pub v: Matrix,
}

/// Computes the SVD of `a` (any shape, intended for small matrices).
///
/// # Errors
///
/// Propagates errors from [`symmetric_eigen`].
pub fn svd_small(a: &Matrix) -> Result<Svd, MdsError> {
    let ata = a.transpose().matmul(a);
    let eig = symmetric_eigen(&ata)?;
    let k = ata.rows();
    let mut singular_values = Vec::with_capacity(k);
    let v = eig.eigenvectors.clone();
    let mut u = Matrix::zeros(a.rows(), k);
    let av = a.matmul(&v);
    let m = a.rows();
    let sigma_max = eig
        .eigenvalues
        .first()
        .map(|e| e.max(0.0).sqrt())
        .unwrap_or(0.0);
    let sigma_tol = (1e-9 * sigma_max).max(1e-300);
    for j in 0..k {
        let sigma = eig.eigenvalues[j].max(0.0).sqrt();
        singular_values.push(sigma);
        // Columns computed as A·v/σ lose orthogonality when σ is tiny
        // relative to σ_max; re-derive their norm and fall back to basis
        // completion when degenerate.
        let norm: f64 = if sigma > sigma_tol {
            (0..m).map(|i| av[(i, j)] * av[(i, j)]).sum::<f64>().sqrt()
        } else {
            0.0
        };
        if norm > sigma_tol {
            for i in 0..m {
                u[(i, j)] = av[(i, j)] / norm;
            }
        } else {
            // Degenerate direction: complete the orthonormal basis by
            // Gram-Schmidt over canonical vectors against the columns
            // already placed (Procrustes requires U to stay orthogonal
            // even for rank-deficient input).
            'candidates: for c in 0..m {
                let mut cand = vec![0.0; m];
                cand[c] = 1.0;
                for prev in 0..j {
                    let dot: f64 = (0..m).map(|i| cand[i] * u[(i, prev)]).sum();
                    for (i, item) in cand.iter_mut().enumerate() {
                        *item -= dot * u[(i, prev)];
                    }
                }
                let norm: f64 = cand.iter().map(|x| x * x).sum::<f64>().sqrt();
                if norm > 1e-8 {
                    for i in 0..m {
                        u[(i, j)] = cand[i] / norm;
                    }
                    break 'candidates;
                }
            }
        }
    }
    Ok(Svd {
        u,
        singular_values,
        v,
    })
}

/// Determinant of a square matrix via LU elimination (partial pivoting).
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn determinant(a: &Matrix) -> f64 {
    assert_eq!(a.rows, a.cols, "determinant requires a square matrix");
    let n = a.rows;
    let mut m = a.clone();
    let mut det = 1.0;
    for col in 0..n {
        // Find pivot.
        let mut pivot = col;
        for r in (col + 1)..n {
            if m[(r, col)].abs() > m[(pivot, col)].abs() {
                pivot = r;
            }
        }
        if m[(pivot, col)].abs() < 1e-300 {
            return 0.0;
        }
        if pivot != col {
            for c in 0..n {
                let tmp = m[(pivot, c)];
                m[(pivot, c)] = m[(col, c)];
                m[(col, c)] = tmp;
            }
            det = -det;
        }
        det *= m[(col, col)];
        for r in (col + 1)..n {
            let f = m[(r, col)] / m[(col, col)];
            for c in col..n {
                m[(r, c)] -= f * m[(col, c)];
            }
        }
    }
    det
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() <= eps
    }

    #[test]
    fn identity_has_unit_eigenvalues() {
        let eig = symmetric_eigen(&Matrix::identity(4)).unwrap();
        for ev in eig.eigenvalues {
            assert!(approx(ev, 1.0, 1e-12));
        }
    }

    #[test]
    fn known_2x2_eigenvalues() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let eig = symmetric_eigen(&m).unwrap();
        assert!(approx(eig.eigenvalues[0], 3.0, 1e-12));
        assert!(approx(eig.eigenvalues[1], 1.0, 1e-12));
    }

    #[test]
    fn eigenvectors_reconstruct_matrix() {
        let m = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 1.0],
        ])
        .unwrap();
        let eig = symmetric_eigen(&m).unwrap();
        // Reconstruct V · diag(λ) · Vᵀ.
        let n = 3;
        let mut lam = Matrix::zeros(n, n);
        for i in 0..n {
            lam[(i, i)] = eig.eigenvalues[i];
        }
        let recon = eig
            .eigenvectors
            .matmul(&lam)
            .matmul(&eig.eigenvectors.transpose());
        for i in 0..n {
            for j in 0..n {
                assert!(
                    approx(recon[(i, j)], m[(i, j)], 1e-10),
                    "entry ({i},{j}): {} vs {}",
                    recon[(i, j)],
                    m[(i, j)]
                );
            }
        }
    }

    #[test]
    fn eigen_rejects_non_square() {
        let m = Matrix::zeros(2, 3);
        assert!(matches!(
            symmetric_eigen(&m),
            Err(MdsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn eigen_rejects_nan() {
        let mut m = Matrix::identity(2);
        m[(0, 1)] = f64::NAN;
        assert!(matches!(
            symmetric_eigen(&m),
            Err(MdsError::NonFinite { .. })
        ));
    }

    #[test]
    fn svd_of_rotation_has_unit_singular_values() {
        let theta: f64 = 0.7;
        let r = Matrix::from_rows(&[
            vec![theta.cos(), -theta.sin()],
            vec![theta.sin(), theta.cos()],
        ])
        .unwrap();
        let svd = svd_small(&r).unwrap();
        for s in svd.singular_values {
            assert!(approx(s, 1.0, 1e-10));
        }
    }

    #[test]
    fn svd_reconstructs_input() {
        let a = Matrix::from_rows(&[vec![3.0, 1.0], vec![1.0, 2.0], vec![0.0, 1.0]]).unwrap();
        let svd = svd_small(&a).unwrap();
        let k = 2;
        let mut sig = Matrix::zeros(k, k);
        for i in 0..k {
            sig[(i, i)] = svd.singular_values[i];
        }
        let recon = svd.u.matmul(&sig).matmul(&svd.v.transpose());
        for i in 0..3 {
            for j in 0..2 {
                assert!(approx(recon[(i, j)], a[(i, j)], 1e-9));
            }
        }
    }

    #[test]
    fn determinant_of_known_matrices() {
        assert!(approx(determinant(&Matrix::identity(3)), 1.0, 1e-12));
        let m = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        assert!(approx(determinant(&m), -1.0, 1e-12));
        let m = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 5.0]]).unwrap();
        assert!(approx(determinant(&m), 10.0, 1e-12));
    }

    #[test]
    fn matmul_against_hand_computed() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn from_rows_validates_shape() {
        assert!(matches!(Matrix::from_rows(&[]), Err(MdsError::Empty)));
        assert!(matches!(
            Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]),
            Err(MdsError::DimensionMismatch { .. })
        ));
    }
}
