//! Dissimilarity matrices over measurement vectors.

use crate::parallel;
use crate::MdsError;

/// Entries per parallel chunk when appending a point's column. Derived
/// only from the matrix size, so chunk boundaries — and the result bits —
/// are independent of the worker count.
const APPEND_CHUNK: usize = 256;

/// Target entries per whole-column chunk when building a matrix in
/// parallel. Same determinism rule as [`APPEND_CHUNK`].
const BUILD_CHUNK: usize = 4096;

/// Pairwise distance metric between measurement vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum Metric {
    /// Standard Euclidean (L2) distance — the metric used by the paper.
    #[default]
    Euclidean,
    /// Manhattan (L1) distance.
    Manhattan,
    /// Chebyshev (L∞) distance.
    Chebyshev,
}

impl Metric {
    /// Computes the distance between two equal-length vectors.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the lengths differ; in release builds the
    /// shorter length is used.
    pub fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "vectors must share a dimension");
        match self {
            Metric::Euclidean => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt(),
            Metric::Manhattan => a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum(),
            Metric::Chebyshev => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max),
        }
    }

    /// Computes the distance with per-coordinate early exit: returns `None`
    /// as soon as the partial accumulation proves the result exceeds
    /// `bound`.
    ///
    /// The pruning threshold carries a small safety factor, so a candidate
    /// is abandoned only when its distance provably exceeds `bound`;
    /// whenever `Some(d)` is returned, `d` is bit-for-bit the value
    /// [`Metric::distance`] would produce. Callers can therefore use this
    /// as a drop-in scan kernel without changing any comparison outcome.
    pub fn distance_pruned(&self, a: &[f64], b: &[f64], bound: f64) -> Option<f64> {
        debug_assert_eq!(a.len(), b.len(), "vectors must share a dimension");
        // One part in 2^40 over-admits boundary candidates rather than ever
        // mispruning one; their exact distance decides as in the full scan.
        const SLACK: f64 = 1.0 + 1e-12;
        match self {
            Metric::Euclidean => {
                let limit = bound * bound * SLACK;
                let mut sum = 0.0;
                for (x, y) in a.iter().zip(b) {
                    sum += (x - y) * (x - y);
                    if sum > limit {
                        return None;
                    }
                }
                Some(sum.sqrt())
            }
            Metric::Manhattan => {
                let limit = bound * SLACK;
                let mut sum = 0.0;
                for (x, y) in a.iter().zip(b) {
                    sum += (x - y).abs();
                    if sum > limit {
                        return None;
                    }
                }
                Some(sum)
            }
            Metric::Chebyshev => {
                let limit = bound * SLACK;
                let mut max = 0.0f64;
                for (x, y) in a.iter().zip(b) {
                    max = max.max((x - y).abs());
                    if max > limit {
                        return None;
                    }
                }
                Some(max)
            }
        }
    }
}

/// A symmetric matrix of pairwise dissimilarities with a zero diagonal.
///
/// Only the strict upper triangle is stored, grouped by column: entry
/// (i, j) with i < j lives at index `j*(j-1)/2 + i`. Column-major grouping
/// makes [`DistanceMatrix::append_point`] a contiguous push of the new
/// point's column — O(n·dim) — where a row-major layout would have to
/// splice an entry into every existing row.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    upper: Vec<f64>,
}

impl DistanceMatrix {
    /// Builds the Euclidean distance matrix of a set of vectors.
    ///
    /// # Errors
    ///
    /// Returns [`MdsError::Empty`] for an empty input,
    /// [`MdsError::DimensionMismatch`] if the vectors have differing lengths
    /// and [`MdsError::NonFinite`] if any coordinate is NaN or infinite.
    pub fn from_vectors(vectors: &[Vec<f64>]) -> Result<Self, MdsError> {
        Self::from_vectors_with(vectors, Metric::Euclidean)
    }

    /// Builds the distance matrix of a set of vectors under `metric`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DistanceMatrix::from_vectors`].
    pub fn from_vectors_with(vectors: &[Vec<f64>], metric: Metric) -> Result<Self, MdsError> {
        Self::from_vectors_with_workers(vectors, metric, 1)
    }

    /// [`DistanceMatrix::from_vectors_with`] with the pairwise scan spread
    /// over up to `workers` threads. Chunks are whole columns of the packed
    /// triangle whose boundaries depend only on the point count, and every
    /// entry is an independent distance evaluation, so **the result is
    /// bit-for-bit identical for any worker count** (including 1, the
    /// inline path).
    ///
    /// # Errors
    ///
    /// Same conditions as [`DistanceMatrix::from_vectors`].
    pub fn from_vectors_with_workers(
        vectors: &[Vec<f64>],
        metric: Metric,
        workers: usize,
    ) -> Result<Self, MdsError> {
        let first = vectors.first().ok_or(MdsError::Empty)?;
        let dim = first.len();
        for v in vectors {
            if v.len() != dim {
                return Err(MdsError::DimensionMismatch {
                    expected: dim,
                    found: v.len(),
                });
            }
            if v.iter().any(|x| !x.is_finite()) {
                return Err(MdsError::NonFinite {
                    context: "distance matrix input vector",
                });
            }
        }
        let n = vectors.len();
        let mut upper = vec![0.0; n * (n - 1) / 2];
        let pieces = parallel::tri_column_pieces(n, &mut upper, BUILD_CHUNK);
        parallel::scatter(workers, pieces, |first_col, slice| {
            // Walk the packed column-grouped layout: column j holds the
            // entries (0, j) .. (j-1, j) contiguously.
            let mut j = first_col;
            let mut i = 0usize;
            for v in slice.iter_mut() {
                *v = metric.distance(&vectors[i], &vectors[j]);
                i += 1;
                if i == j {
                    i = 0;
                    j += 1;
                }
            }
        });
        Ok(DistanceMatrix { n, upper })
    }

    /// Extends the matrix in place with one new point, given the vectors
    /// of the points already covered. Computes only the new point's column
    /// — O(n·dim) — instead of rebuilding all n(n+1)/2 entries.
    ///
    /// # Errors
    ///
    /// Returns [`MdsError::DimensionMismatch`] unless `existing.len()`
    /// equals [`DistanceMatrix::len`] and `point` has the common dimension,
    /// and [`MdsError::NonFinite`] if `point` has a NaN or infinite
    /// coordinate.
    pub fn append_point(&mut self, existing: &[Vec<f64>], point: &[f64]) -> Result<(), MdsError> {
        self.append_point_with(existing, point, Metric::Euclidean)
    }

    /// [`DistanceMatrix::append_point`] under an explicit `metric`. The
    /// metric must match the one the matrix was built with for the result
    /// to stay consistent.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DistanceMatrix::append_point`].
    pub fn append_point_with(
        &mut self,
        existing: &[Vec<f64>],
        point: &[f64],
        metric: Metric,
    ) -> Result<(), MdsError> {
        self.append_point_with_workers(existing, point, metric, 1)
    }

    /// [`DistanceMatrix::append_point_with`] with the new column's distance
    /// evaluations spread over up to `workers` threads. Chunk boundaries
    /// depend only on the current point count and every entry is an
    /// independent distance evaluation, so **the result is bit-for-bit
    /// identical for any worker count** (including 1, the inline path).
    ///
    /// # Errors
    ///
    /// Same conditions as [`DistanceMatrix::append_point`]; a failed append
    /// leaves the matrix untouched.
    pub fn append_point_with_workers(
        &mut self,
        existing: &[Vec<f64>],
        point: &[f64],
        metric: Metric,
        workers: usize,
    ) -> Result<(), MdsError> {
        if existing.len() != self.n {
            return Err(MdsError::DimensionMismatch {
                expected: self.n,
                found: existing.len(),
            });
        }
        let dim = existing.first().map_or(point.len(), Vec::len);
        if point.len() != dim {
            return Err(MdsError::DimensionMismatch {
                expected: dim,
                found: point.len(),
            });
        }
        if point.iter().any(|x| !x.is_finite()) {
            return Err(MdsError::NonFinite {
                context: "distance matrix appended point",
            });
        }
        let base = self.upper.len();
        self.upper.resize(base + self.n, 0.0);
        let pieces = parallel::row_pieces(&mut self.upper[base..], 1, APPEND_CHUNK);
        parallel::scatter(workers, pieces, |first, slice| {
            for (k, v) in slice.iter_mut().enumerate() {
                *v = metric.distance(&existing[first + k], point);
            }
        });
        self.n += 1;
        Ok(())
    }

    /// Builds a distance matrix directly from precomputed pairwise values.
    ///
    /// `get(i, j)` is only called for `i < j`.
    ///
    /// # Errors
    ///
    /// Returns [`MdsError::NonFinite`] if any produced distance is negative,
    /// NaN or infinite, and [`MdsError::Empty`] when `n == 0`.
    pub fn from_fn<F>(n: usize, mut get: F) -> Result<Self, MdsError>
    where
        F: FnMut(usize, usize) -> f64,
    {
        if n == 0 {
            return Err(MdsError::Empty);
        }
        let mut upper = Vec::with_capacity(n * (n - 1) / 2);
        for j in 1..n {
            for i in 0..j {
                let d = get(i, j);
                if !d.is_finite() || d < 0.0 {
                    return Err(MdsError::NonFinite {
                        context: "distance matrix entry",
                    });
                }
                upper.push(d);
            }
        }
        Ok(DistanceMatrix { n, upper })
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns true when the matrix covers zero points (never constructed so,
    /// but required for a well-behaved API).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The dissimilarity between points `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        if i == j {
            return 0.0;
        }
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        self.upper[j * (j - 1) / 2 + i]
    }

    /// Largest pairwise dissimilarity (0.0 for a single point).
    pub fn max(&self) -> f64 {
        self.upper.iter().copied().fold(0.0, f64::max)
    }

    /// Mean pairwise dissimilarity (0.0 for a single point).
    pub fn mean(&self) -> f64 {
        if self.upper.is_empty() {
            0.0
        } else {
            self.upper.iter().sum::<f64>() / self.upper.len() as f64
        }
    }

    /// Sum of squared dissimilarities over the strict upper triangle.
    pub fn sum_squares(&self) -> f64 {
        self.upper.iter().map(|d| d * d).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_distance_matches_hand_computation() {
        let m = Metric::Euclidean;
        assert_eq!(m.distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(m.distance(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn manhattan_and_chebyshev() {
        assert_eq!(Metric::Manhattan.distance(&[0.0, 0.0], &[3.0, 4.0]), 7.0);
        assert_eq!(Metric::Chebyshev.distance(&[0.0, 0.0], &[3.0, 4.0]), 4.0);
    }

    #[test]
    fn distance_pruned_matches_full_distance_or_proves_excess() {
        let a = [0.1, 0.9, 0.4, 0.7];
        let b = [0.3, 0.2, 0.8, 0.1];
        for metric in [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev] {
            let d = metric.distance(&a, &b);
            // Generous bound: completes and matches exactly.
            assert_eq!(metric.distance_pruned(&a, &b, d), Some(d));
            assert_eq!(metric.distance_pruned(&a, &b, f64::INFINITY), Some(d));
            // Bound provably below the distance: pruned.
            assert_eq!(metric.distance_pruned(&a, &b, d * 0.5), None);
            // Zero distance survives a zero bound.
            assert_eq!(metric.distance_pruned(&a, &a, 0.0), Some(0.0));
        }
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let vectors = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 2.0]];
        let d = DistanceMatrix::from_vectors(&vectors).unwrap();
        assert_eq!(d.len(), 3);
        for i in 0..3 {
            assert_eq!(d.get(i, i), 0.0);
            for j in 0..3 {
                assert_eq!(d.get(i, j), d.get(j, i));
            }
        }
        assert_eq!(d.get(0, 1), 1.0);
        assert_eq!(d.get(0, 2), 2.0);
        assert!((d.get(1, 2) - 5.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rejects_ragged_input() {
        let vectors = vec![vec![0.0, 0.0], vec![1.0]];
        assert!(matches!(
            DistanceMatrix::from_vectors(&vectors),
            Err(MdsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rejects_nan_input() {
        let vectors = vec![vec![f64::NAN]];
        assert!(matches!(
            DistanceMatrix::from_vectors(&vectors),
            Err(MdsError::NonFinite { .. })
        ));
    }

    #[test]
    fn from_fn_rejects_negative_distances() {
        assert!(matches!(
            DistanceMatrix::from_fn(3, |_, _| -1.0),
            Err(MdsError::NonFinite { .. })
        ));
    }

    #[test]
    fn single_point_matrix() {
        let d = DistanceMatrix::from_vectors(&[vec![1.0, 2.0]]).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.max(), 0.0);
        assert_eq!(d.mean(), 0.0);
    }

    #[test]
    fn append_point_matches_full_rebuild() {
        let mut vectors = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 2.0]];
        let mut incremental = DistanceMatrix::from_vectors(&vectors).unwrap();
        for new in [vec![3.0, 4.0], vec![-1.0, 0.5], vec![2.0, 2.0]] {
            incremental.append_point(&vectors, &new).unwrap();
            vectors.push(new);
            let rebuilt = DistanceMatrix::from_vectors(&vectors).unwrap();
            assert_eq!(incremental, rebuilt);
        }
        assert_eq!(incremental.len(), 6);
    }

    #[test]
    fn append_point_validates_input() {
        let vectors = vec![vec![0.0, 0.0], vec![1.0, 0.0]];
        let mut d = DistanceMatrix::from_vectors(&vectors).unwrap();
        assert!(matches!(
            d.append_point(&vectors[..1], &[1.0, 1.0]),
            Err(MdsError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            d.append_point(&vectors, &[1.0]),
            Err(MdsError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            d.append_point(&vectors, &[f64::NAN, 0.0]),
            Err(MdsError::NonFinite { .. })
        ));
        // Failed appends leave the matrix untouched.
        assert_eq!(d, DistanceMatrix::from_vectors(&vectors).unwrap());
    }

    #[test]
    fn parallel_build_and_append_are_bit_identical_to_serial() {
        // Enough points to span several BUILD_CHUNK / APPEND_CHUNK chunks.
        let vectors: Vec<Vec<f64>> = (0..300)
            .map(|i| vec![(i as f64 * 0.37).sin(), (i as f64 * 0.61).cos()])
            .collect();
        let serial = DistanceMatrix::from_vectors(&vectors).unwrap();
        for workers in [2, 3, 4, 8] {
            let par =
                DistanceMatrix::from_vectors_with_workers(&vectors, Metric::Euclidean, workers)
                    .unwrap();
            assert_eq!(serial, par, "build diverged at {workers} workers");

            let mut appended = DistanceMatrix::from_vectors(&vectors[..299]).unwrap();
            appended
                .append_point_with_workers(
                    &vectors[..299],
                    &vectors[299],
                    Metric::Euclidean,
                    workers,
                )
                .unwrap();
            assert_eq!(serial, appended, "append diverged at {workers} workers");
        }
    }

    #[test]
    fn parallel_append_validates_and_leaves_matrix_untouched() {
        let vectors = vec![vec![0.0, 0.0], vec![1.0, 0.0]];
        let mut d = DistanceMatrix::from_vectors(&vectors).unwrap();
        assert!(matches!(
            d.append_point_with_workers(&vectors, &[f64::INFINITY, 0.0], Metric::Euclidean, 4),
            Err(MdsError::NonFinite { .. })
        ));
        assert_eq!(d, DistanceMatrix::from_vectors(&vectors).unwrap());
    }

    #[test]
    fn summary_statistics() {
        let vectors = vec![vec![0.0], vec![1.0], vec![3.0]];
        let d = DistanceMatrix::from_vectors(&vectors).unwrap();
        assert_eq!(d.max(), 3.0);
        assert!((d.mean() - 2.0).abs() < 1e-12); // (1 + 3 + 2) / 3
        assert_eq!(d.sum_squares(), 1.0 + 9.0 + 4.0);
    }
}
