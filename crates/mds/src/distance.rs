//! Dissimilarity matrices over measurement vectors.

use crate::MdsError;

/// Pairwise distance metric between measurement vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum Metric {
    /// Standard Euclidean (L2) distance — the metric used by the paper.
    #[default]
    Euclidean,
    /// Manhattan (L1) distance.
    Manhattan,
    /// Chebyshev (L∞) distance.
    Chebyshev,
}

impl Metric {
    /// Computes the distance between two equal-length vectors.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the lengths differ; in release builds the
    /// shorter length is used.
    pub fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "vectors must share a dimension");
        match self {
            Metric::Euclidean => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt(),
            Metric::Manhattan => a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum(),
            Metric::Chebyshev => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max),
        }
    }
}

/// A symmetric matrix of pairwise dissimilarities with a zero diagonal.
///
/// Only the strict upper triangle is stored.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    // Upper triangle, row-major: entry (i, j) with i < j at index
    // i*n - i*(i+1)/2 + (j - i - 1).
    upper: Vec<f64>,
}

impl DistanceMatrix {
    /// Builds the Euclidean distance matrix of a set of vectors.
    ///
    /// # Errors
    ///
    /// Returns [`MdsError::Empty`] for an empty input,
    /// [`MdsError::DimensionMismatch`] if the vectors have differing lengths
    /// and [`MdsError::NonFinite`] if any coordinate is NaN or infinite.
    pub fn from_vectors(vectors: &[Vec<f64>]) -> Result<Self, MdsError> {
        Self::from_vectors_with(vectors, Metric::Euclidean)
    }

    /// Builds the distance matrix of a set of vectors under `metric`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DistanceMatrix::from_vectors`].
    pub fn from_vectors_with(vectors: &[Vec<f64>], metric: Metric) -> Result<Self, MdsError> {
        let first = vectors.first().ok_or(MdsError::Empty)?;
        let dim = first.len();
        for v in vectors {
            if v.len() != dim {
                return Err(MdsError::DimensionMismatch {
                    expected: dim,
                    found: v.len(),
                });
            }
            if v.iter().any(|x| !x.is_finite()) {
                return Err(MdsError::NonFinite {
                    context: "distance matrix input vector",
                });
            }
        }
        let n = vectors.len();
        let mut upper = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                upper.push(metric.distance(&vectors[i], &vectors[j]));
            }
        }
        Ok(DistanceMatrix { n, upper })
    }

    /// Builds a distance matrix directly from precomputed pairwise values.
    ///
    /// `get(i, j)` is only called for `i < j`.
    ///
    /// # Errors
    ///
    /// Returns [`MdsError::NonFinite`] if any produced distance is negative,
    /// NaN or infinite, and [`MdsError::Empty`] when `n == 0`.
    pub fn from_fn<F>(n: usize, mut get: F) -> Result<Self, MdsError>
    where
        F: FnMut(usize, usize) -> f64,
    {
        if n == 0 {
            return Err(MdsError::Empty);
        }
        let mut upper = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                let d = get(i, j);
                if !d.is_finite() || d < 0.0 {
                    return Err(MdsError::NonFinite {
                        context: "distance matrix entry",
                    });
                }
                upper.push(d);
            }
        }
        Ok(DistanceMatrix { n, upper })
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns true when the matrix covers zero points (never constructed so,
    /// but required for a well-behaved API).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The dissimilarity between points `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        if i == j {
            return 0.0;
        }
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        self.upper[i * self.n - i * (i + 1) / 2 + (j - i - 1)]
    }

    /// Largest pairwise dissimilarity (0.0 for a single point).
    pub fn max(&self) -> f64 {
        self.upper.iter().copied().fold(0.0, f64::max)
    }

    /// Mean pairwise dissimilarity (0.0 for a single point).
    pub fn mean(&self) -> f64 {
        if self.upper.is_empty() {
            0.0
        } else {
            self.upper.iter().sum::<f64>() / self.upper.len() as f64
        }
    }

    /// Sum of squared dissimilarities over the strict upper triangle.
    pub fn sum_squares(&self) -> f64 {
        self.upper.iter().map(|d| d * d).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_distance_matches_hand_computation() {
        let m = Metric::Euclidean;
        assert_eq!(m.distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(m.distance(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn manhattan_and_chebyshev() {
        assert_eq!(Metric::Manhattan.distance(&[0.0, 0.0], &[3.0, 4.0]), 7.0);
        assert_eq!(Metric::Chebyshev.distance(&[0.0, 0.0], &[3.0, 4.0]), 4.0);
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let vectors = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 2.0]];
        let d = DistanceMatrix::from_vectors(&vectors).unwrap();
        assert_eq!(d.len(), 3);
        for i in 0..3 {
            assert_eq!(d.get(i, i), 0.0);
            for j in 0..3 {
                assert_eq!(d.get(i, j), d.get(j, i));
            }
        }
        assert_eq!(d.get(0, 1), 1.0);
        assert_eq!(d.get(0, 2), 2.0);
        assert!((d.get(1, 2) - 5.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rejects_ragged_input() {
        let vectors = vec![vec![0.0, 0.0], vec![1.0]];
        assert!(matches!(
            DistanceMatrix::from_vectors(&vectors),
            Err(MdsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rejects_nan_input() {
        let vectors = vec![vec![f64::NAN]];
        assert!(matches!(
            DistanceMatrix::from_vectors(&vectors),
            Err(MdsError::NonFinite { .. })
        ));
    }

    #[test]
    fn from_fn_rejects_negative_distances() {
        assert!(matches!(
            DistanceMatrix::from_fn(3, |_, _| -1.0),
            Err(MdsError::NonFinite { .. })
        ));
    }

    #[test]
    fn single_point_matrix() {
        let d = DistanceMatrix::from_vectors(&[vec![1.0, 2.0]]).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.max(), 0.0);
        assert_eq!(d.mean(), 0.0);
    }

    #[test]
    fn summary_statistics() {
        let vectors = vec![vec![0.0], vec![1.0], vec![3.0]];
        let d = DistanceMatrix::from_vectors(&vectors).unwrap();
        assert_eq!(d.max(), 3.0);
        assert!((d.mean() - 2.0).abs() < 1e-12); // (1 + 3 + 2) / 3
        assert_eq!(d.sum_squares(), 1.0 + 9.0 + 4.0);
    }
}
