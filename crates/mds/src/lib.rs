//! Multidimensional scaling for Stay-Away.
//!
//! This crate implements the dimensionality-reduction pipeline that the
//! Stay-Away controller (Rameshan et al., Middleware 2014, §2.2 and §4) uses
//! to turn high-dimensional resource-usage measurement vectors into a stable
//! 2-D *state space*:
//!
//! * [`normalize`] — per-metric min-max normalisation into `[0, 1]` so that
//!   metrics with large ranges do not bias the embedding (§4);
//! * [`dedup`] — representative-sample deduplication that keeps the SMACOF
//!   observation matrix small (§4's optimisation);
//! * [`distance`] — dissimilarity matrices over measurement vectors;
//! * [`classical`] — classical (Torgerson) MDS used to seed the iterative
//!   solver, built on a from-scratch Jacobi eigensolver ([`linalg`]);
//! * [`smacof`] — the SMACOF stress-majorization solver referenced by the
//!   paper, with warm-start support for incremental embedding;
//! * [`procrustes`] — orthogonal Procrustes alignment that keeps successive
//!   embeddings in the same frame so trajectories stay meaningful;
//! * [`pca`] — a PCA projector used only as an ablation baseline (§2.2
//!   argues MDS is preferable to projection operators such as PCA);
//! * [`landmark`] — landmark MDS, the fast incremental approximation the
//!   paper's §4 points to as an alternative to its dedup optimisation.
//!
//! # Example
//!
//! Embed a handful of 4-D measurement vectors into the plane:
//!
//! ```
//! use stayaway_mds::{distance::DistanceMatrix, smacof::Smacof};
//!
//! # fn main() -> Result<(), stayaway_mds::MdsError> {
//! let vectors = vec![
//!     vec![0.0, 0.0, 0.1, 0.0],
//!     vec![0.9, 0.8, 0.1, 0.0],
//!     vec![0.1, 0.1, 0.0, 0.1],
//!     vec![0.8, 0.9, 0.2, 0.1],
//! ];
//! let dist = DistanceMatrix::from_vectors(&vectors)?;
//! let embedding = Smacof::new(2).embed(&dist)?;
//! assert_eq!(embedding.len(), 4);
//! // Similar vectors land near each other: 0 and 2 are closer than 0 and 1.
//! let d02 = embedding.distance(0, 2);
//! let d01 = embedding.distance(0, 1);
//! assert!(d02 < d01);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classical;
pub mod dedup;
pub mod distance;
pub mod embedding;
pub mod landmark;
pub mod linalg;
pub mod normalize;
pub mod pca;
pub mod procrustes;
pub mod smacof;

mod error;
mod parallel;

pub use embedding::Embedding;
pub use error::MdsError;
pub use smacof::SweepKernel;
