//! Low-dimensional point configurations produced by MDS/PCA.

use crate::distance::DistanceMatrix;
use crate::MdsError;

/// A configuration of `n` points in a `dim`-dimensional space.
///
/// This is the output type of the classical and SMACOF solvers; for
/// Stay-Away `dim` is 2 (the paper's mapped state space), but higher target
/// dimensions are supported for the scalability escape hatch described in §5
/// of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct Embedding {
    dim: usize,
    coords: Vec<f64>, // row-major, n × dim
}

impl Embedding {
    /// Creates an embedding from row-major coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`MdsError::InvalidDimension`] when `dim == 0` and
    /// [`MdsError::DimensionMismatch`] when `coords.len()` is not a multiple
    /// of `dim`.
    pub fn from_coords(dim: usize, coords: Vec<f64>) -> Result<Self, MdsError> {
        if dim == 0 {
            return Err(MdsError::InvalidDimension { requested: 0 });
        }
        if !coords.len().is_multiple_of(dim) {
            return Err(MdsError::DimensionMismatch {
                expected: dim,
                found: coords.len() % dim,
            });
        }
        Ok(Embedding { dim, coords })
    }

    /// An embedding of `n` points at the origin of a `dim`-space.
    pub fn zeros(n: usize, dim: usize) -> Self {
        Embedding {
            dim,
            coords: vec![0.0; n * dim],
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.coords.len().checked_div(self.dim).unwrap_or(0)
    }

    /// True when the embedding holds no points.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Dimensionality of the target space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrows the coordinates of point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn point(&self, i: usize) -> &[f64] {
        &self.coords[i * self.dim..(i + 1) * self.dim]
    }

    /// Mutably borrows the coordinates of point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn point_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.coords[i * self.dim..(i + 1) * self.dim]
    }

    /// Convenience accessor for 2-D embeddings: `(x, y)` of point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds or `dim < 2`.
    pub fn xy(&self, i: usize) -> (f64, f64) {
        let p = self.point(i);
        (p[0], p[1])
    }

    /// Appends a point.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.dim()`.
    pub fn push(&mut self, point: &[f64]) {
        assert_eq!(point.len(), self.dim, "point dimension mismatch");
        self.coords.extend_from_slice(point);
    }

    /// Euclidean distance between embedded points `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        self.point(i)
            .iter()
            .zip(self.point(j))
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Iterates over points as coordinate slices.
    pub fn iter(&self) -> impl Iterator<Item = &[f64]> + '_ {
        self.coords.chunks_exact(self.dim)
    }

    /// Translates the configuration so its centroid is at the origin.
    pub fn center(&mut self) {
        let n = self.len();
        if n == 0 {
            return;
        }
        let mut centroid = vec![0.0; self.dim];
        for p in self.iter() {
            for (c, v) in centroid.iter_mut().zip(p) {
                *c += v;
            }
        }
        for c in &mut centroid {
            *c /= n as f64;
        }
        for i in 0..n {
            let p = self.point_mut(i);
            for (v, c) in p.iter_mut().zip(&centroid) {
                *v -= c;
            }
        }
    }

    /// The centroid of the configuration.
    pub fn centroid(&self) -> Vec<f64> {
        let n = self.len();
        let mut centroid = vec![0.0; self.dim];
        if n == 0 {
            return centroid;
        }
        for p in self.iter() {
            for (c, v) in centroid.iter_mut().zip(p) {
                *c += v;
            }
        }
        for c in &mut centroid {
            *c /= n as f64;
        }
        centroid
    }

    /// Normalized Kruskal stress-1 of this configuration against a target
    /// dissimilarity matrix:
    /// `sqrt( Σ (d_ij − δ_ij)² / Σ δ_ij² )`.
    ///
    /// Returns 0.0 when the matrix has no off-diagonal mass.
    ///
    /// # Errors
    ///
    /// Returns [`MdsError::DimensionMismatch`] if the number of points
    /// differs from the matrix size.
    pub fn stress(&self, dissim: &DistanceMatrix) -> Result<f64, MdsError> {
        if dissim.len() != self.len() {
            return Err(MdsError::DimensionMismatch {
                expected: dissim.len(),
                found: self.len(),
            });
        }
        let denom = dissim.sum_squares();
        if denom == 0.0 {
            return Ok(0.0);
        }
        let mut num = 0.0;
        for i in 0..self.len() {
            for j in (i + 1)..self.len() {
                let diff = self.distance(i, j) - dissim.get(i, j);
                num += diff * diff;
            }
        }
        Ok((num / denom).sqrt())
    }

    /// Raw (unnormalized) stress: `Σ_{i<j} (d_ij − δ_ij)²` — the loss
    /// function from §2.2 of the paper.
    ///
    /// # Errors
    ///
    /// Returns [`MdsError::DimensionMismatch`] if the number of points
    /// differs from the matrix size.
    pub fn raw_stress(&self, dissim: &DistanceMatrix) -> Result<f64, MdsError> {
        if dissim.len() != self.len() {
            return Err(MdsError::DimensionMismatch {
                expected: dissim.len(),
                found: self.len(),
            });
        }
        let mut s = 0.0;
        for i in 0..self.len() {
            for j in (i + 1)..self.len() {
                let diff = self.distance(i, j) - dissim.get(i, j);
                s += diff * diff;
            }
        }
        Ok(s)
    }

    /// The per-axis coordinate ranges `(min, max)`.
    pub fn axis_ranges(&self) -> Vec<(f64, f64)> {
        let mut ranges = vec![(f64::INFINITY, f64::NEG_INFINITY); self.dim];
        for p in self.iter() {
            for (r, v) in ranges.iter_mut().zip(p) {
                r.0 = r.0.min(*v);
                r.1 = r.1.max(*v);
            }
        }
        ranges
    }

    /// Median of the per-axis coordinate extents — the paper's constant `c`
    /// in the Rayleigh violation-range radius (§3.2.2).
    ///
    /// Returns 0.0 for an empty embedding.
    pub fn median_coordinate_range(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let mut extents: Vec<f64> = self
            .axis_ranges()
            .into_iter()
            .map(|(lo, hi)| (hi - lo).max(0.0))
            .collect();
        extents.sort_by(f64::total_cmp);
        let n = extents.len();
        if n % 2 == 1 {
            extents[n / 2]
        } else {
            0.5 * (extents[n / 2 - 1] + extents[n / 2])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Embedding {
        Embedding::from_coords(2, vec![0.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0]).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let e = square();
        assert_eq!(e.len(), 4);
        assert_eq!(e.dim(), 2);
        assert_eq!(e.xy(2), (1.0, 1.0));
        assert_eq!(e.distance(0, 2), 2.0_f64.sqrt());
    }

    #[test]
    fn from_coords_validates() {
        assert!(matches!(
            Embedding::from_coords(0, vec![]),
            Err(MdsError::InvalidDimension { .. })
        ));
        assert!(matches!(
            Embedding::from_coords(2, vec![1.0, 2.0, 3.0]),
            Err(MdsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn centering_moves_centroid_to_origin() {
        let mut e = square();
        e.center();
        let c = e.centroid();
        assert!(c.iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn stress_zero_for_perfect_embedding() {
        let e = square();
        let d = DistanceMatrix::from_fn(4, |i, j| e.distance(i, j)).unwrap();
        assert!(e.stress(&d).unwrap() < 1e-12);
        assert!(e.raw_stress(&d).unwrap() < 1e-12);
    }

    #[test]
    fn stress_positive_for_distorted_embedding() {
        let e = square();
        let d = DistanceMatrix::from_fn(4, |i, j| 2.0 * e.distance(i, j)).unwrap();
        assert!(e.stress(&d).unwrap() > 0.1);
    }

    #[test]
    fn stress_checks_size() {
        let e = square();
        let d = DistanceMatrix::from_fn(3, |_, _| 1.0).unwrap();
        assert!(e.stress(&d).is_err());
    }

    #[test]
    fn median_coordinate_range_of_square_is_one() {
        assert!((square().median_coordinate_range() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn push_appends_points() {
        let mut e = Embedding::zeros(0, 2);
        e.push(&[1.0, 2.0]);
        e.push(&[3.0, 4.0]);
        assert_eq!(e.len(), 2);
        assert_eq!(e.xy(1), (3.0, 4.0));
    }

    #[test]
    fn axis_ranges_of_square() {
        let ranges = square().axis_ranges();
        assert_eq!(ranges, vec![(0.0, 1.0), (0.0, 1.0)]);
    }
}
