//! Representative-sample deduplication (§4 of the paper).
//!
//! The SMACOF cost is quadratic in the number of samples, so the paper keeps
//! one *representative* per group of near-identical measurement vectors and
//! discards the rest. [`ReprSet`] implements that policy: a new vector
//! within `epsilon` (Euclidean) of an existing representative is *merged*
//! into it (a hit count is kept), otherwise it becomes a new representative.
//!
//! The controller maps each raw time-series sample to a representative index
//! so that trajectories (which are defined over raw samples) can still be
//! traced through the deduplicated embedding.

use std::collections::HashMap;

use crate::distance::Metric;
use crate::MdsError;

/// Uniform-grid bucket index over the first two coordinates of the
/// (normalized, `[0, 1]`-ish) measurement space.
///
/// Buckets hold representative indices keyed by the cell of their 2-D
/// projection. Because every supported metric dominates the per-coordinate
/// difference (L∞ ≤ L2, L1), a vector within `epsilon` of a representative
/// differs by at most `epsilon` in each projected coordinate, so with a
/// cell side ≥ `epsilon` the 3×3 neighbourhood of the query cell covers
/// every merge candidate. Likewise, any representative whose projected
/// cell is `r` cells away (Chebyshev) is at full distance > `(r-1)·side`,
/// which drives the expanding-ring nearest search. The index only ever
/// *prunes* — surviving candidates are compared by their exact distance —
/// so results are identical to the linear scan.
#[derive(Debug, Clone)]
struct GridIndex {
    side: f64,
    buckets: HashMap<(i64, i64), Vec<usize>>,
    /// Occupied-cell bounding box, `None` while empty.
    bounds: Option<((i64, i64), (i64, i64))>,
}

impl GridIndex {
    fn new(epsilon: f64) -> Self {
        GridIndex {
            // The cell side must be ≥ epsilon for the 3×3 insert
            // neighbourhood to be sound; for tiny/zero epsilon a coarser
            // side keeps the bucket count bounded instead.
            side: epsilon.max(0.05),
            buckets: HashMap::new(),
            bounds: None,
        }
    }

    fn cell_of(&self, vector: &[f64]) -> (i64, i64) {
        let x = vector.first().copied().unwrap_or(0.0);
        let y = vector.get(1).copied().unwrap_or(0.0);
        (
            (x / self.side).floor() as i64,
            (y / self.side).floor() as i64,
        )
    }

    fn add(&mut self, index: usize, vector: &[f64]) {
        let cell = self.cell_of(vector);
        self.buckets.entry(cell).or_default().push(index);
        self.bounds = Some(match self.bounds {
            None => (cell, cell),
            Some((lo, hi)) => (
                (lo.0.min(cell.0), lo.1.min(cell.1)),
                (hi.0.max(cell.0), hi.1.max(cell.1)),
            ),
        });
    }

    /// Visits the bucket of each cell in the ring at Chebyshev offset
    /// `r` around `center`, clipped to the occupied bounding box.
    fn visit_ring<F: FnMut(&[usize])>(&self, center: (i64, i64), r: i64, mut visit: F) {
        let Some((lo, hi)) = self.bounds else {
            return;
        };
        let mut call = |x: i64, y: i64| {
            if x >= lo.0 && x <= hi.0 && y >= lo.1 && y <= hi.1 {
                if let Some(bucket) = self.buckets.get(&(x, y)) {
                    visit(bucket);
                }
            }
        };
        if r == 0 {
            call(center.0, center.1);
            return;
        }
        for x in (center.0 - r)..=(center.0 + r) {
            call(x, center.1 - r);
            call(x, center.1 + r);
        }
        for y in (center.1 - r + 1)..=(center.1 + r - 1) {
            call(center.0 - r, y);
            call(center.0 + r, y);
        }
    }

    /// True when the box at Chebyshev radius `r` around `center` covers
    /// every occupied cell — nothing remains beyond ring `r`.
    fn ring_exhausts(&self, center: (i64, i64), r: i64) -> bool {
        match self.bounds {
            None => true,
            Some((lo, hi)) => {
                center.0 - r <= lo.0
                    && center.1 - r <= lo.1
                    && center.0 + r >= hi.0
                    && center.1 + r >= hi.1
            }
        }
    }
}

/// Outcome of inserting a vector into a [`ReprSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DedupOutcome {
    /// The vector became a new representative with this index.
    New(usize),
    /// The vector merged into the existing representative with this index.
    Merged(usize),
}

impl DedupOutcome {
    /// Index of the representative this vector now maps to.
    pub fn index(&self) -> usize {
        match *self {
            DedupOutcome::New(i) | DedupOutcome::Merged(i) => i,
        }
    }

    /// True when a new representative was created.
    pub fn is_new(&self) -> bool {
        matches!(self, DedupOutcome::New(_))
    }
}

/// A growing set of representative measurement vectors.
#[derive(Debug, Clone)]
pub struct ReprSet {
    epsilon: f64,
    metric: Metric,
    dim: Option<usize>,
    representatives: Vec<Vec<f64>>,
    hits: Vec<u64>,
    grid: Option<GridIndex>,
}

impl ReprSet {
    /// Creates an empty set that merges vectors within `epsilon` of an
    /// existing representative.
    ///
    /// The threshold is **closed** — see [`ReprSet::merges`]. In
    /// particular `ReprSet::new(0.0)` is a valid exact-duplicate
    /// deduplicator: bit-equal vectors (distance 0) merge, any
    /// perturbation however small (e.g. 1e-7 in one coordinate) starts a
    /// new representative. This holds identically on the grid-indexed
    /// path.
    ///
    /// # Errors
    ///
    /// Returns [`MdsError::NonFinite`] if `epsilon` is negative or not
    /// finite.
    pub fn new(epsilon: f64) -> Result<Self, MdsError> {
        if !epsilon.is_finite() || epsilon < 0.0 {
            return Err(MdsError::NonFinite {
                context: "dedup epsilon",
            });
        }
        Ok(ReprSet {
            epsilon,
            metric: Metric::Euclidean,
            dim: None,
            representatives: Vec::new(),
            hits: Vec::new(),
            grid: None,
        })
    }

    /// Sets the distance metric used for merging (default Euclidean).
    pub fn metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Enables the uniform-grid bucket index, pruning [`ReprSet::insert`]
    /// and [`ReprSet::nearest`] scans to nearby candidates. Results are
    /// identical to the unindexed scans; only the work done changes. Any
    /// representatives already held are indexed.
    pub fn grid_indexed(mut self) -> Self {
        let mut grid = GridIndex::new(self.epsilon);
        for (i, rep) in self.representatives.iter().enumerate() {
            grid.add(i, rep);
        }
        self.grid = Some(grid);
        self
    }

    /// True when the grid bucket index is enabled.
    pub fn is_grid_indexed(&self) -> bool {
        self.grid.is_some()
    }

    /// The merge radius.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The merge predicate: a vector at `distance` from a representative
    /// merges into it exactly when `distance <= epsilon` (**closed**
    /// threshold, both ends). Consequences, enforced by regression tests:
    ///
    /// * a distance of exactly `epsilon` merges (not a new
    ///   representative);
    /// * with `epsilon == 0.0` only exact duplicates merge — `-0.0`
    ///   coordinates count as duplicates of `0.0` because their distance
    ///   is zero;
    /// * any `distance > epsilon`, however slightly, starts a new
    ///   representative.
    pub fn merges(&self, distance: f64) -> bool {
        distance <= self.epsilon
    }

    /// Number of representatives currently held.
    pub fn len(&self) -> usize {
        self.representatives.len()
    }

    /// True when no representative has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.representatives.is_empty()
    }

    /// Total number of vectors inserted (representatives + merged).
    pub fn total_inserted(&self) -> u64 {
        self.hits.iter().sum()
    }

    /// Borrow the representative vectors.
    pub fn representatives(&self) -> &[Vec<f64>] {
        &self.representatives
    }

    /// Borrow the representative with index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn representative(&self, i: usize) -> &[f64] {
        &self.representatives[i]
    }

    /// Number of vectors merged into representative `i` (including itself).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn hit_count(&self, i: usize) -> u64 {
        self.hits[i]
    }

    /// Inserts a vector, merging it into the nearest representative when one
    /// lies within `epsilon`.
    ///
    /// # Errors
    ///
    /// Returns [`MdsError::DimensionMismatch`] for wrong-length input and
    /// [`MdsError::NonFinite`] for vectors with NaN/inf coordinates.
    pub fn insert(&mut self, vector: &[f64]) -> Result<DedupOutcome, MdsError> {
        if let Some(dim) = self.dim {
            if vector.len() != dim {
                return Err(MdsError::DimensionMismatch {
                    expected: dim,
                    found: vector.len(),
                });
            }
        } else if vector.is_empty() {
            return Err(MdsError::Empty);
        }
        if vector.iter().any(|v| !v.is_finite()) {
            return Err(MdsError::NonFinite {
                context: "dedup input vector",
            });
        }
        self.dim = Some(vector.len());

        // Nearest representative within epsilon, if any. The scan prunes
        // with squared-distance early exit (and the grid neighbourhood when
        // indexed) but every accepted candidate is judged by its exact
        // distance, so the outcome matches the plain linear scan.
        let mut best: Option<(usize, f64)> = None;
        let consider = |i: usize, rep: &[f64], best: &mut Option<(usize, f64)>| {
            let bound = best.map_or(self.epsilon, |(_, bd)| bd);
            if let Some(d) = self.metric.distance_pruned(rep, vector, bound) {
                if self.merges(d) && best.is_none_or(|(bi, bd)| d < bd || (d == bd && i < bi)) {
                    *best = Some((i, d));
                }
            }
        };
        if let Some(grid) = &self.grid {
            // Cell side ≥ epsilon: all merge candidates live in rings 0-1.
            let center = grid.cell_of(vector);
            for r in 0..=1 {
                grid.visit_ring(center, r, |bucket| {
                    for &i in bucket {
                        consider(i, &self.representatives[i], &mut best);
                    }
                });
            }
        } else {
            for (i, rep) in self.representatives.iter().enumerate() {
                consider(i, rep, &mut best);
            }
        }
        match best {
            Some((i, _)) => {
                self.hits[i] += 1;
                Ok(DedupOutcome::Merged(i))
            }
            None => {
                self.representatives.push(vector.to_vec());
                self.hits.push(1);
                let index = self.representatives.len() - 1;
                if let Some(grid) = &mut self.grid {
                    grid.add(index, &self.representatives[index]);
                }
                Ok(DedupOutcome::New(index))
            }
        }
    }

    /// Index of the representative nearest to `vector` and its distance, or
    /// `None` when the set is empty.
    ///
    /// Ties go to the lowest index. With the grid index enabled the search
    /// expands cell rings outward until no unvisited cell can hold a closer
    /// representative; the result is identical to the linear scan.
    pub fn nearest(&self, vector: &[f64]) -> Option<(usize, f64)> {
        match &self.grid {
            Some(grid) if !self.representatives.is_empty() => {
                let mut best: Option<(usize, f64)> = None;
                let center = grid.cell_of(vector);
                let mut r = 0i64;
                loop {
                    grid.visit_ring(center, r, |bucket| {
                        for &i in bucket {
                            self.consider_nearest(i, vector, &mut best);
                        }
                    });
                    if grid.ring_exhausts(center, r) {
                        break;
                    }
                    if let Some((_, bd)) = best {
                        // A representative in ring r+1 or beyond is farther
                        // than r·side, which already exceeds the best: no
                        // closer candidate (nor an equal-distance one with a
                        // lower index) can remain.
                        if r as f64 * grid.side > bd {
                            break;
                        }
                    }
                    r += 1;
                }
                best
            }
            _ => {
                let mut best: Option<(usize, f64)> = None;
                for i in 0..self.representatives.len() {
                    self.consider_nearest(i, vector, &mut best);
                }
                best
            }
        }
    }

    fn consider_nearest(&self, i: usize, vector: &[f64], best: &mut Option<(usize, f64)>) {
        let bound = best.map_or(f64::INFINITY, |(_, bd)| bd);
        let rep = &self.representatives[i];
        if let Some(d) = self.metric.distance_pruned(rep, vector, bound) {
            if best.is_none_or(|(bi, bd)| d < bd || (d == bd && i < bi)) {
                *best = Some((i, d));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_insert_is_new() {
        let mut set = ReprSet::new(0.1).unwrap();
        let out = set.insert(&[0.5, 0.5]).unwrap();
        assert_eq!(out, DedupOutcome::New(0));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn nearby_vectors_merge() {
        let mut set = ReprSet::new(0.1).unwrap();
        set.insert(&[0.5, 0.5]).unwrap();
        let out = set.insert(&[0.55, 0.5]).unwrap();
        assert_eq!(out, DedupOutcome::Merged(0));
        assert_eq!(set.len(), 1);
        assert_eq!(set.hit_count(0), 2);
        assert_eq!(set.total_inserted(), 2);
    }

    #[test]
    fn distant_vectors_become_new_representatives() {
        let mut set = ReprSet::new(0.1).unwrap();
        set.insert(&[0.0, 0.0]).unwrap();
        let out = set.insert(&[1.0, 1.0]).unwrap();
        assert_eq!(out, DedupOutcome::New(1));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn merges_into_nearest_of_several() {
        let mut set = ReprSet::new(0.5).unwrap();
        set.insert(&[0.0]).unwrap();
        set.insert(&[1.0]).unwrap();
        let out = set.insert(&[0.9]).unwrap();
        assert_eq!(out, DedupOutcome::Merged(1));
    }

    #[test]
    fn zero_epsilon_only_merges_exact_duplicates() {
        let mut set = ReprSet::new(0.0).unwrap();
        set.insert(&[0.3, 0.3]).unwrap();
        assert!(set.insert(&[0.3, 0.3]).unwrap().index() == 0);
        assert!(set.insert(&[0.3, 0.3000001]).unwrap().is_new());
    }

    #[test]
    fn threshold_is_closed_at_epsilon() {
        // d == epsilon exactly: merges, on both the linear and grid paths.
        for indexed in [false, true] {
            let mut set = ReprSet::new(0.5).unwrap();
            if indexed {
                set = set.grid_indexed();
            }
            set.insert(&[0.0, 0.0]).unwrap();
            assert_eq!(
                set.insert(&[0.5, 0.0]).unwrap(),
                DedupOutcome::Merged(0),
                "exactly-at-epsilon must merge (indexed = {indexed})"
            );
            // The next representable distance above epsilon is new.
            let just_over = 0.5f64.next_up();
            assert!(
                set.insert(&[just_over, 0.0]).unwrap().is_new(),
                "just over epsilon must be new (indexed = {indexed})"
            );
        }
    }

    #[test]
    fn zero_epsilon_treats_negative_zero_as_duplicate() {
        for indexed in [false, true] {
            let mut set = ReprSet::new(0.0).unwrap();
            if indexed {
                set = set.grid_indexed();
            }
            set.insert(&[0.0, 0.3]).unwrap();
            // -0.0 == 0.0, so the distance is exactly zero: a duplicate.
            assert_eq!(
                set.insert(&[-0.0, 0.3]).unwrap(),
                DedupOutcome::Merged(0),
                "-0.0 must dedup against 0.0 (indexed = {indexed})"
            );
            // A 1e-7 perturbation is a genuinely new representative.
            assert!(set.insert(&[0.0, 0.3 + 1e-7]).unwrap().is_new());
            assert_eq!(set.len(), 2);
        }
    }

    #[test]
    fn merges_predicate_matches_documented_semantics() {
        let set = ReprSet::new(0.25).unwrap();
        assert!(set.merges(0.0));
        assert!(set.merges(0.25));
        assert!(!set.merges(0.25f64.next_up()));
        let exact = ReprSet::new(0.0).unwrap();
        assert!(exact.merges(0.0));
        assert!(!exact.merges(f64::MIN_POSITIVE));
    }

    #[test]
    fn rejects_dimension_changes() {
        let mut set = ReprSet::new(0.1).unwrap();
        set.insert(&[0.0, 0.0]).unwrap();
        assert!(matches!(
            set.insert(&[0.0]),
            Err(MdsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rejects_nan_and_negative_epsilon() {
        assert!(ReprSet::new(-1.0).is_err());
        assert!(ReprSet::new(f64::NAN).is_err());
        let mut set = ReprSet::new(0.1).unwrap();
        assert!(set.insert(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn nearest_reports_distance() {
        let mut set = ReprSet::new(0.01).unwrap();
        assert!(set.nearest(&[0.0]).is_none());
        set.insert(&[0.0]).unwrap();
        set.insert(&[2.0]).unwrap();
        let (i, d) = set.nearest(&[1.8]).unwrap();
        assert_eq!(i, 1);
        assert!((d - 0.2).abs() < 1e-12);
    }

    #[test]
    fn grid_index_matches_linear_scan_on_deterministic_stream() {
        let mut plain = ReprSet::new(0.07).unwrap();
        let mut indexed = ReprSet::new(0.07).unwrap().grid_indexed();
        assert!(indexed.is_grid_indexed());
        let stream: Vec<Vec<f64>> = (0..200)
            .map(|i| {
                let t = i as f64;
                vec![
                    (t * 0.61).sin().abs(),
                    (t * 0.37).cos().abs(),
                    (t * 0.23).sin().abs(),
                    (t * 0.11).cos().abs(),
                ]
            })
            .collect();
        for v in &stream {
            assert_eq!(plain.insert(v).unwrap(), indexed.insert(v).unwrap());
        }
        assert_eq!(plain.len(), indexed.len());
        for v in &stream {
            assert_eq!(plain.nearest(v), indexed.nearest(v));
        }
        // Probes far outside the occupied region exercise ring expansion.
        for probe in [
            vec![5.0, 5.0, 0.0, 0.0],
            vec![-3.0, 0.5, 0.2, 0.9],
            vec![0.5, -4.0, 1.0, 1.0],
        ] {
            assert_eq!(plain.nearest(&probe), indexed.nearest(&probe));
        }
    }

    #[test]
    fn grid_indexed_after_growth_indexes_existing_representatives() {
        let mut set = ReprSet::new(0.1).unwrap();
        set.insert(&[0.1, 0.1]).unwrap();
        set.insert(&[0.9, 0.9]).unwrap();
        let mut set = set.grid_indexed();
        // Pre-existing representatives are found through the grid.
        assert_eq!(set.insert(&[0.12, 0.1]).unwrap(), DedupOutcome::Merged(0));
        assert_eq!(set.nearest(&[0.85, 0.92]).unwrap().0, 1);
    }

    #[test]
    fn zero_epsilon_grid_still_merges_exact_duplicates() {
        let mut set = ReprSet::new(0.0).unwrap().grid_indexed();
        set.insert(&[0.3, 0.3]).unwrap();
        assert!(set.insert(&[0.3, 0.3]).unwrap().index() == 0);
        assert!(set.insert(&[0.3, 0.3000001]).unwrap().is_new());
    }

    #[test]
    fn coverage_property_every_insert_within_epsilon_of_its_representative() {
        let mut set = ReprSet::new(0.25).unwrap();
        let inputs: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i as f64 * 0.61).sin().abs(), (i as f64 * 0.37).cos().abs()])
            .collect();
        for v in &inputs {
            let out = set.insert(v).unwrap();
            let rep = set.representative(out.index());
            let d = Metric::Euclidean.distance(rep, v);
            assert!(d <= 0.25 + 1e-12, "vector not covered: d = {d}");
        }
        assert!(set.len() < inputs.len(), "dedup should compress the stream");
    }
}
