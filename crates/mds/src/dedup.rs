//! Representative-sample deduplication (§4 of the paper).
//!
//! The SMACOF cost is quadratic in the number of samples, so the paper keeps
//! one *representative* per group of near-identical measurement vectors and
//! discards the rest. [`ReprSet`] implements that policy: a new vector
//! within `epsilon` (Euclidean) of an existing representative is *merged*
//! into it (a hit count is kept), otherwise it becomes a new representative.
//!
//! The controller maps each raw time-series sample to a representative index
//! so that trajectories (which are defined over raw samples) can still be
//! traced through the deduplicated embedding.

use crate::distance::Metric;
use crate::MdsError;

/// Outcome of inserting a vector into a [`ReprSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DedupOutcome {
    /// The vector became a new representative with this index.
    New(usize),
    /// The vector merged into the existing representative with this index.
    Merged(usize),
}

impl DedupOutcome {
    /// Index of the representative this vector now maps to.
    pub fn index(&self) -> usize {
        match *self {
            DedupOutcome::New(i) | DedupOutcome::Merged(i) => i,
        }
    }

    /// True when a new representative was created.
    pub fn is_new(&self) -> bool {
        matches!(self, DedupOutcome::New(_))
    }
}

/// A growing set of representative measurement vectors.
#[derive(Debug, Clone)]
pub struct ReprSet {
    epsilon: f64,
    metric: Metric,
    dim: Option<usize>,
    representatives: Vec<Vec<f64>>,
    hits: Vec<u64>,
}

impl ReprSet {
    /// Creates an empty set that merges vectors within `epsilon` of an
    /// existing representative.
    ///
    /// # Errors
    ///
    /// Returns [`MdsError::NonFinite`] if `epsilon` is negative or not
    /// finite.
    pub fn new(epsilon: f64) -> Result<Self, MdsError> {
        if !epsilon.is_finite() || epsilon < 0.0 {
            return Err(MdsError::NonFinite {
                context: "dedup epsilon",
            });
        }
        Ok(ReprSet {
            epsilon,
            metric: Metric::Euclidean,
            dim: None,
            representatives: Vec::new(),
            hits: Vec::new(),
        })
    }

    /// Sets the distance metric used for merging (default Euclidean).
    pub fn metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// The merge radius.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of representatives currently held.
    pub fn len(&self) -> usize {
        self.representatives.len()
    }

    /// True when no representative has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.representatives.is_empty()
    }

    /// Total number of vectors inserted (representatives + merged).
    pub fn total_inserted(&self) -> u64 {
        self.hits.iter().sum()
    }

    /// Borrow the representative vectors.
    pub fn representatives(&self) -> &[Vec<f64>] {
        &self.representatives
    }

    /// Borrow the representative with index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn representative(&self, i: usize) -> &[f64] {
        &self.representatives[i]
    }

    /// Number of vectors merged into representative `i` (including itself).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn hit_count(&self, i: usize) -> u64 {
        self.hits[i]
    }

    /// Inserts a vector, merging it into the nearest representative when one
    /// lies within `epsilon`.
    ///
    /// # Errors
    ///
    /// Returns [`MdsError::DimensionMismatch`] for wrong-length input and
    /// [`MdsError::NonFinite`] for vectors with NaN/inf coordinates.
    pub fn insert(&mut self, vector: &[f64]) -> Result<DedupOutcome, MdsError> {
        if let Some(dim) = self.dim {
            if vector.len() != dim {
                return Err(MdsError::DimensionMismatch {
                    expected: dim,
                    found: vector.len(),
                });
            }
        } else if vector.is_empty() {
            return Err(MdsError::Empty);
        }
        if vector.iter().any(|v| !v.is_finite()) {
            return Err(MdsError::NonFinite {
                context: "dedup input vector",
            });
        }
        self.dim = Some(vector.len());

        // Nearest representative within epsilon, if any.
        let mut best: Option<(usize, f64)> = None;
        for (i, rep) in self.representatives.iter().enumerate() {
            let d = self.metric.distance(rep, vector);
            if d <= self.epsilon && best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        match best {
            Some((i, _)) => {
                self.hits[i] += 1;
                Ok(DedupOutcome::Merged(i))
            }
            None => {
                self.representatives.push(vector.to_vec());
                self.hits.push(1);
                Ok(DedupOutcome::New(self.representatives.len() - 1))
            }
        }
    }

    /// Index of the representative nearest to `vector` and its distance, or
    /// `None` when the set is empty.
    pub fn nearest(&self, vector: &[f64]) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, rep) in self.representatives.iter().enumerate() {
            let d = self.metric.distance(rep, vector);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_insert_is_new() {
        let mut set = ReprSet::new(0.1).unwrap();
        let out = set.insert(&[0.5, 0.5]).unwrap();
        assert_eq!(out, DedupOutcome::New(0));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn nearby_vectors_merge() {
        let mut set = ReprSet::new(0.1).unwrap();
        set.insert(&[0.5, 0.5]).unwrap();
        let out = set.insert(&[0.55, 0.5]).unwrap();
        assert_eq!(out, DedupOutcome::Merged(0));
        assert_eq!(set.len(), 1);
        assert_eq!(set.hit_count(0), 2);
        assert_eq!(set.total_inserted(), 2);
    }

    #[test]
    fn distant_vectors_become_new_representatives() {
        let mut set = ReprSet::new(0.1).unwrap();
        set.insert(&[0.0, 0.0]).unwrap();
        let out = set.insert(&[1.0, 1.0]).unwrap();
        assert_eq!(out, DedupOutcome::New(1));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn merges_into_nearest_of_several() {
        let mut set = ReprSet::new(0.5).unwrap();
        set.insert(&[0.0]).unwrap();
        set.insert(&[1.0]).unwrap();
        let out = set.insert(&[0.9]).unwrap();
        assert_eq!(out, DedupOutcome::Merged(1));
    }

    #[test]
    fn zero_epsilon_only_merges_exact_duplicates() {
        let mut set = ReprSet::new(0.0).unwrap();
        set.insert(&[0.3, 0.3]).unwrap();
        assert!(set.insert(&[0.3, 0.3]).unwrap().index() == 0);
        assert!(set.insert(&[0.3, 0.3000001]).unwrap().is_new());
    }

    #[test]
    fn rejects_dimension_changes() {
        let mut set = ReprSet::new(0.1).unwrap();
        set.insert(&[0.0, 0.0]).unwrap();
        assert!(matches!(
            set.insert(&[0.0]),
            Err(MdsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rejects_nan_and_negative_epsilon() {
        assert!(ReprSet::new(-1.0).is_err());
        assert!(ReprSet::new(f64::NAN).is_err());
        let mut set = ReprSet::new(0.1).unwrap();
        assert!(set.insert(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn nearest_reports_distance() {
        let mut set = ReprSet::new(0.01).unwrap();
        assert!(set.nearest(&[0.0]).is_none());
        set.insert(&[0.0]).unwrap();
        set.insert(&[2.0]).unwrap();
        let (i, d) = set.nearest(&[1.8]).unwrap();
        assert_eq!(i, 1);
        assert!((d - 0.2).abs() < 1e-12);
    }

    #[test]
    fn coverage_property_every_insert_within_epsilon_of_its_representative() {
        let mut set = ReprSet::new(0.25).unwrap();
        let inputs: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i as f64 * 0.61).sin().abs(), (i as f64 * 0.37).cos().abs()])
            .collect();
        for v in &inputs {
            let out = set.insert(v).unwrap();
            let rep = set.representative(out.index());
            let d = Metric::Euclidean.distance(rep, v);
            assert!(d <= 0.25 + 1e-12, "vector not covered: d = {d}");
        }
        assert!(set.len() < inputs.len(), "dedup should compress the stream");
    }
}
