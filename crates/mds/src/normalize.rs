//! Per-metric min-max normalisation (§4 of the paper).
//!
//! Metric values span wildly different ranges (CPU in `[0, cores·100]`,
//! memory in megabytes, I/O in MB/s, …); feeding them to MDS unnormalised
//! would let large-valued metrics dominate every distance. The paper
//! normalises all metrics into `[0, 1]`. We do this against *configured
//! bounds* (host capacities) rather than the observed min/max, so the
//! mapping from raw value to normalised value is stable over the lifetime of
//! an execution — a requirement for the state map to be reusable as a
//! template (§6).

use crate::MdsError;
use serde::{Deserialize, Serialize};

/// Inclusive value bounds for one metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricBounds {
    min: f64,
    max: f64,
}

impl MetricBounds {
    /// Creates bounds `[min, max]`.
    ///
    /// # Errors
    ///
    /// Returns [`MdsError::NonFinite`] if either bound is not finite or
    /// `max <= min`.
    pub fn new(min: f64, max: f64) -> Result<Self, MdsError> {
        if !min.is_finite() || !max.is_finite() || max <= min {
            return Err(MdsError::NonFinite {
                context: "metric bounds",
            });
        }
        Ok(MetricBounds { min, max })
    }

    /// Bounds `[0, max]` — the common case for resource usage metrics.
    ///
    /// # Errors
    ///
    /// Returns [`MdsError::NonFinite`] if `max` is not finite or `<= 0`.
    pub fn zero_to(max: f64) -> Result<Self, MdsError> {
        MetricBounds::new(0.0, max)
    }

    /// Lower bound.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Upper bound.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Maps `value` into `[0, 1]`, clamping values outside the bounds.
    pub fn normalize(&self, value: f64) -> f64 {
        if value.is_nan() {
            return 0.0;
        }
        ((value - self.min) / (self.max - self.min)).clamp(0.0, 1.0)
    }

    /// Inverse of [`MetricBounds::normalize`] for in-range inputs.
    pub fn denormalize(&self, unit: f64) -> f64 {
        self.min + unit.clamp(0.0, 1.0) * (self.max - self.min)
    }
}

/// Normalises fixed-layout measurement vectors metric-by-metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    bounds: Vec<MetricBounds>,
}

impl Normalizer {
    /// Creates a normaliser for vectors whose `i`-th entry obeys
    /// `bounds[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`MdsError::Empty`] when `bounds` is empty.
    pub fn new(bounds: Vec<MetricBounds>) -> Result<Self, MdsError> {
        if bounds.is_empty() {
            return Err(MdsError::Empty);
        }
        Ok(Normalizer { bounds })
    }

    /// Creates a normaliser that maps every entry through `[0, 1]` bounds —
    /// an identity-with-clamping for already-normalised inputs.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn unit(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Normalizer {
            bounds: vec![MetricBounds { min: 0.0, max: 1.0 }; dim],
        }
    }

    /// Expected vector dimensionality.
    pub fn dim(&self) -> usize {
        self.bounds.len()
    }

    /// Borrow the per-metric bounds.
    pub fn bounds(&self) -> &[MetricBounds] {
        &self.bounds
    }

    /// Normalises a measurement vector into `[0, 1]^dim`.
    ///
    /// # Errors
    ///
    /// Returns [`MdsError::DimensionMismatch`] for wrong-length input.
    pub fn normalize(&self, vector: &[f64]) -> Result<Vec<f64>, MdsError> {
        if vector.len() != self.bounds.len() {
            return Err(MdsError::DimensionMismatch {
                expected: self.bounds.len(),
                found: vector.len(),
            });
        }
        Ok(vector
            .iter()
            .zip(&self.bounds)
            .map(|(v, b)| b.normalize(*v))
            .collect())
    }
}

/// An online min-max tracker for metrics without a priori bounds.
///
/// The paper's prototype knows host capacities, but some metrics (e.g.
/// network traffic on an uncapped NIC) have no natural upper bound. This
/// tracker observes values and exposes the running range; the normalised
/// value of `v` is `v / max_seen` (with `min` pinned to 0 when requested).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineRange {
    min: f64,
    max: f64,
    count: u64,
}

impl OnlineRange {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        OnlineRange {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            count: 0,
        }
    }

    /// Observes a value (NaN values are ignored).
    pub fn observe(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.count += 1;
    }

    /// Number of observed values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Normalises `value` against the observed range; returns 0.0 when fewer
    /// than two distinct values have been seen.
    pub fn normalize(&self, value: f64) -> f64 {
        if self.count == 0 || self.max <= self.min {
            return 0.0;
        }
        ((value - self.min) / (self.max - self.min)).clamp(0.0, 1.0)
    }
}

impl Default for OnlineRange {
    fn default() -> Self {
        OnlineRange::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_normalize_and_clamp() {
        let b = MetricBounds::zero_to(400.0).unwrap();
        assert_eq!(b.normalize(0.0), 0.0);
        assert_eq!(b.normalize(200.0), 0.5);
        assert_eq!(b.normalize(400.0), 1.0);
        assert_eq!(b.normalize(500.0), 1.0);
        assert_eq!(b.normalize(-5.0), 0.0);
    }

    #[test]
    fn denormalize_round_trips() {
        let b = MetricBounds::new(10.0, 30.0).unwrap();
        for v in [10.0, 17.5, 30.0] {
            assert!((b.denormalize(b.normalize(v)) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn invalid_bounds_are_rejected() {
        assert!(MetricBounds::new(1.0, 1.0).is_err());
        assert!(MetricBounds::new(2.0, 1.0).is_err());
        assert!(MetricBounds::new(f64::NAN, 1.0).is_err());
        assert!(MetricBounds::zero_to(0.0).is_err());
    }

    #[test]
    fn normalizer_maps_vectors() {
        let n = Normalizer::new(vec![
            MetricBounds::zero_to(400.0).unwrap(),
            MetricBounds::zero_to(8192.0).unwrap(),
        ])
        .unwrap();
        let out = n.normalize(&[100.0, 4096.0]).unwrap();
        assert_eq!(out, vec![0.25, 0.5]);
    }

    #[test]
    fn normalizer_rejects_wrong_length() {
        let n = Normalizer::unit(3);
        assert!(n.normalize(&[0.1, 0.2]).is_err());
    }

    #[test]
    fn nan_input_normalizes_to_zero() {
        let b = MetricBounds::zero_to(1.0).unwrap();
        assert_eq!(b.normalize(f64::NAN), 0.0);
    }

    #[test]
    fn online_range_tracks_and_normalizes() {
        let mut r = OnlineRange::new();
        assert_eq!(r.normalize(5.0), 0.0);
        r.observe(0.0);
        r.observe(10.0);
        r.observe(f64::NAN); // ignored
        assert_eq!(r.count(), 2);
        assert_eq!(r.normalize(5.0), 0.5);
        assert_eq!(r.normalize(20.0), 1.0);
    }

    #[test]
    fn unit_normalizer_clamps_only() {
        let n = Normalizer::unit(2);
        let out = n.normalize(&[0.5, 1.5]).unwrap();
        assert_eq!(out, vec![0.5, 1.0]);
    }
}
