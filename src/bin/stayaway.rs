//! `stayaway` — command-line front end to the reproduction.
//!
//! ```text
//! stayaway list
//! stayaway run --scenario vlc+cpu-bomb --policy stay-away --ticks 384 --seed 7
//! stayaway run --source trace:trace.jsonl
//! stayaway compare --scenario web-mem+twitter-analysis --ticks 300
//! stayaway capture --scenario vlc+cpu-bomb --out template.json
//! stayaway reuse --scenario vlc+soplex --template template.json
//! stayaway record --scenario vlc+cpu-bomb --out trace.jsonl
//! stayaway replay --trace trace.jsonl
//! stayaway fleet --cells 64 --workers 4 --seed 7 --share-templates --json
//! ```
//!
//! Scenario names are `<sensitive>+<batch>` with sensitive ∈ {vlc,
//! web-cpu, web-mem, web-mix} and batch ∈ {cpu-bomb, memory-bomb, soplex,
//! twitter-analysis, vlc-transcode}.

use stay_away::core::{ControlPolicy, ControllerConfig, ControllerStats, Observability};
use stay_away::fleet::{Fleet, FleetConfig, PolicySpec, SourceSpec};
use stay_away::obs::{to_json, to_prometheus, MetricsRegistry, MetricsSnapshot};
use stay_away::sim::apps::WebWorkload;
use stay_away::sim::scenario::{BatchKind, Scenario, SensitiveKind};
use stay_away::sim::workload::{DiurnalParams, Trace};
use stay_away::sim::{RunOutcome, SimSource};
use stay_away::statespace::Template;
use stay_away::telemetry::{drive, RecordingSource, TraceSource};

const USAGE: &str = "\
usage: stayaway <command> [options]

commands:
  list                       list scenarios and policies
  run                        run one scenario under one policy
  compare                    run one scenario under every policy
  capture                    run stay-away and export the learned template
  reuse                      run stay-away seeded from a template
  record                     run one scenario and record the observation
                             stream to a JSONL trace file
  replay                     drive a policy from a recorded trace
  fleet                      run many co-location cells over a worker pool
  metrics                    run one scenario with full instrumentation and
                             print the metrics exposition

options:
  --scenario <sens>+<batch>  e.g. vlc+cpu-bomb, web-mem+twitter-analysis
                             (fleet default: a 4-scenario mix)
  --policy <name>            stayaway | reactive | static | always | null
                             (fleet: comma-separated list round-robined
                             across cells, e.g. stayaway,reactive)
  --source <spec>            observation substrate for run/compare/fleet:
                             sim | trace:<path> | procfs (default sim;
                             fleet: comma-separated list round-robined
                             across cells)
  --trace <path>             recorded trace file for replay
  --ticks <n>                simulation length (default 384)
  --seed <n>                 deterministic seed (default 7)
  --template <path>          template file for capture/reuse
  --out <path>               output path for capture (template.json) and
                             record (trace.jsonl)
  --cells <n>                fleet: number of co-location cells (default 8)
  --workers <n>              fleet: worker threads (default 1; results are
                             identical for any value)
  --share-templates          fleet: warm-start cells from the registry
  --metrics-out <path>       run/fleet/metrics: export the run's metrics
                             snapshot; `-` writes pretty JSON to stdout,
                             a `.json` path writes pretty JSON, any other
                             path writes Prometheus text exposition
  --json                     print a JSON summary instead of text
";

#[derive(Debug, Clone)]
struct Args {
    command: String,
    /// None means "not given on the command line": single-run commands
    /// default to vlc+cpu-bomb, the fleet to its standard scenario mix.
    scenario: Option<String>,
    policy: String,
    source: String,
    trace: Option<String>,
    ticks: u64,
    seed: u64,
    template: Option<String>,
    out: Option<String>,
    cells: usize,
    workers: usize,
    share_templates: bool,
    metrics_out: Option<String>,
    json: bool,
}

/// Scenario used by the single-run commands when `--scenario` is omitted.
const DEFAULT_SCENARIO: &str = "vlc+cpu-bomb";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        command: argv.first().cloned().ok_or("missing command")?,
        scenario: None,
        policy: "stay-away".into(),
        source: "sim".into(),
        trace: None,
        ticks: 384,
        seed: 7,
        template: None,
        out: None,
        cells: 8,
        workers: 1,
        share_templates: false,
        metrics_out: None,
        json: false,
    };
    let mut it = argv[1..].iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} expects a value"))
        };
        match flag.as_str() {
            "--scenario" => args.scenario = Some(value("--scenario")?),
            "--policy" => args.policy = value("--policy")?,
            "--source" => args.source = value("--source")?,
            "--trace" => args.trace = Some(value("--trace")?),
            "--ticks" => {
                args.ticks = value("--ticks")?
                    .parse()
                    .map_err(|_| "--ticks expects an integer".to_string())?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?
            }
            "--template" => args.template = Some(value("--template")?),
            "--out" => args.out = Some(value("--out")?),
            "--cells" => {
                args.cells = value("--cells")?
                    .parse()
                    .map_err(|_| "--cells expects an integer".to_string())?
            }
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers expects an integer".to_string())?
            }
            "--share-templates" => args.share_templates = true,
            "--metrics-out" => args.metrics_out = Some(value("--metrics-out")?),
            "--json" => args.json = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn parse_scenario(name: &str, seed: u64) -> Result<Scenario, String> {
    let (sens, batch) = name
        .split_once('+')
        .ok_or_else(|| format!("scenario `{name}` is not of the form <sensitive>+<batch>"))?;
    let batch_kind = BatchKind::ALL
        .into_iter()
        .find(|k| k.name() == batch)
        .ok_or_else(|| {
            format!(
                "unknown batch app `{batch}` (expected one of {})",
                BatchKind::ALL.map(|k| k.name()).join(", ")
            )
        })?;
    let trace = Trace::diurnal(DiurnalParams::default(), seed.wrapping_add(1));
    let sensitive = match sens {
        "vlc" => SensitiveKind::VlcStreaming { trace },
        "web-cpu" => SensitiveKind::Webservice {
            workload: WebWorkload::CpuIntensive,
            trace,
        },
        "web-mem" => SensitiveKind::Webservice {
            workload: WebWorkload::MemIntensive,
            trace,
        },
        "web-mix" => SensitiveKind::Webservice {
            workload: WebWorkload::Mix,
            trace,
        },
        other => {
            return Err(format!(
                "unknown sensitive app `{other}` (expected vlc, web-cpu, web-mem or web-mix)"
            ))
        }
    };
    Ok(Scenario::builder(name)
        .seed(seed)
        .sensitive(sensitive)
        .batch(batch_kind, 20)
        .build())
}

fn summarize(
    label: &str,
    scenario_name: &str,
    cpu_capacity: f64,
    out: &RunOutcome,
    stats: Option<&ControllerStats>,
    json: bool,
) {
    let cap = cpu_capacity;
    if json {
        let mut doc = serde_json::json!({
            "scenario": scenario_name,
            "policy": label,
            "ticks": out.timeline.len(),
            "violations": out.qos.violations,
            "satisfaction": out.qos.satisfaction(),
            "mean_qos": out.qos.mean_qos(),
            "gained_utilization": out.mean_gained_utilization(cap),
            "batch_work": out.batch_work,
        });
        if let (Some(stats), serde_json::Value::Object(pairs)) = (stats, &mut doc) {
            pairs.push(("controller".to_string(), serde_json::to_value(stats)));
        }
        println!("{}", serde_json::to_string_pretty(&doc).expect("json"));
    } else {
        println!(
            "{label:<16} violations {:>4}  satisfaction {:>5.1}%  gained util {:>5.1}%  batch work {:>6.0}",
            out.qos.violations,
            100.0 * out.qos.satisfaction(),
            100.0 * out.mean_gained_utilization(cap),
            out.batch_work,
        );
        if let Some(stats) = stats {
            println!(
                "controller: {} states ({} violation), {} throttles, {} resumes, prediction accuracy {}",
                stats.states,
                stats.violation_states,
                stats.throttles,
                stats.resumes,
                format_accuracy(stats.prediction_accuracy()),
            );
            let t = &stats.stage_timing;
            println!(
                "stages: sense {}x/{}µs, map {}x/{}µs, predict {}x/{}µs, act {}x/{}µs",
                t.sense.invocations,
                t.sense.nanos / 1_000,
                t.map.invocations,
                t.map.nanos / 1_000,
                t.predict.invocations,
                t.predict.nanos / 1_000,
                t.act.invocations,
                t.act.nanos / 1_000,
            );
        }
    }
}

/// Prediction accuracy for humans: a percentage, or "n/a" before any
/// prediction has been checked (never a made-up 100%).
fn format_accuracy(accuracy: Option<f64>) -> String {
    match accuracy {
        Some(a) => format!("{:.1}%", 100.0 * a),
        None => "n/a".to_string(),
    }
}

/// Writes a metrics snapshot to `path`: `-` prints pretty JSON to
/// stdout, a `.json` path gets pretty JSON, anything else gets the
/// Prometheus text exposition.
fn write_metrics(snapshot: &MetricsSnapshot, path: &str) -> Result<(), String> {
    if path == "-" {
        println!(
            "{}",
            serde_json::to_string_pretty(&to_json(snapshot)).expect("metrics json")
        );
        return Ok(());
    }
    let rendered = if path.ends_with(".json") {
        let mut text = serde_json::to_string_pretty(&to_json(snapshot)).expect("metrics json");
        text.push('\n');
        text
    } else {
        to_prometheus(snapshot)
    };
    std::fs::write(path, rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("metrics written to {path}");
    Ok(())
}

/// Runs the named policy against the selected observation substrate via
/// the unified [`ControlPolicy`] surface; returns the outcome, the
/// post-run policy (for introspection: stats, template export) and the
/// CPU capacity of the sensed host (for utilisation summaries). When a
/// `registry` is given, the policy and substrate register their
/// instruments into it (decision-inert).
fn run_policy_by_name(
    scenario: &Scenario,
    policy: &str,
    source_spec: &SourceSpec,
    seed: u64,
    ticks: u64,
    registry: Option<&MetricsRegistry>,
) -> Result<(RunOutcome, Box<dyn ControlPolicy>, f64), String> {
    let spec = PolicySpec::parse(policy).map_err(|e| e.to_string())?;
    let mut source = source_spec
        .build_observed(scenario, seed, registry)
        .map_err(|e| e.to_string())?;
    let host_spec = source.meta().host.unwrap_or_else(|| *scenario.host_spec());
    let obs = match registry {
        Some(registry) => Observability::enabled(registry.clone()),
        None => Observability::disabled(),
    };
    let mut policy = spec
        .build_observed(&ControllerConfig::default(), &host_spec, obs)
        .map_err(|e| e.to_string())?;
    let out = drive(source.as_mut(), policy.as_mut(), ticks).map_err(|e| e.to_string())?;
    Ok((out, policy, host_spec.cpu_cores))
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "-h" || argv[0] == "help" {
        print!("{USAGE}");
        return;
    }
    if let Err(e) = run(&argv) {
        eprintln!("error: {e}");
        eprint!("{USAGE}");
        std::process::exit(2);
    }
}

fn fleet_summary(outcome: &stay_away::fleet::FleetOutcome) {
    println!(
        "fleet: {} cells x {} ticks, seed {}, template sharing {}",
        outcome.cells,
        outcome.ticks_per_cell,
        outcome.fleet_seed,
        if outcome.share_templates { "on" } else { "off" },
    );
    println!(
        "qos: {} violations / {} active ticks ({:.1}% satisfaction), worst {:.3}",
        outcome.qos.violations,
        outcome.qos.active_ticks,
        100.0 * outcome.satisfaction(),
        outcome.qos.worst,
    );
    println!(
        "utilization: mean {:.1}%, gained from batch {:.1}%, total batch work {:.0}",
        100.0 * outcome.mean_utilization,
        100.0 * outcome.mean_gained_utilization,
        outcome.total_batch_work,
    );
    println!(
        "control: {} throttles, {} resumes, prediction accuracy {}, {} log events dropped",
        outcome.throttles,
        outcome.resumes,
        format_accuracy(outcome.prediction_accuracy()),
        outcome.events_dropped,
    );
    println!(
        "templates: {} cells imported, {} proactive first throttles",
        outcome.cells_imported, outcome.proactive_first_throttles,
    );
    if outcome.per_policy.len() > 1 {
        for r in &outcome.per_policy {
            println!(
                "  {:<16} {} cells  satisfaction {:>5.1}%  gained util {:>5.1}%  {} throttles / {} resumes",
                r.policy,
                r.cells,
                100.0 * r.satisfaction(),
                100.0 * r.mean_gained_utilization,
                r.throttles,
                r.resumes,
            );
        }
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let args = parse_args(argv)?;
    let scenario_name = args.scenario.clone().unwrap_or(DEFAULT_SCENARIO.into());
    match args.command.as_str() {
        "list" => {
            println!("sensitive applications: vlc, web-cpu, web-mem, web-mix");
            println!(
                "batch applications:     {}",
                BatchKind::ALL.map(|k| k.name()).join(", ")
            );
            println!("policies:               stayaway, reactive, static, always, null");
            Ok(())
        }
        "run" => {
            let scenario = parse_scenario(&scenario_name, args.seed)?;
            let source = SourceSpec::parse(&args.source).map_err(|e| e.to_string())?;
            let registry = args.metrics_out.as_ref().map(|_| MetricsRegistry::new());
            let (out, policy, cap) = run_policy_by_name(
                &scenario,
                &args.policy,
                &source,
                args.seed,
                args.ticks,
                registry.as_ref(),
            )?;
            let stats = policy.stats();
            // Baselines track nothing; only show controller internals when
            // the policy actually counted its periods.
            let stats = (stats.periods > 0).then_some(&stats);
            summarize(policy.name(), scenario.name(), cap, &out, stats, args.json);
            if let (Some(path), Some(registry)) = (&args.metrics_out, &registry) {
                write_metrics(&registry.snapshot(), path)?;
            }
            Ok(())
        }
        "metrics" => {
            let scenario = parse_scenario(&scenario_name, args.seed)?;
            let source = SourceSpec::parse(&args.source).map_err(|e| e.to_string())?;
            let registry = MetricsRegistry::new();
            run_policy_by_name(
                &scenario,
                &args.policy,
                &source,
                args.seed,
                args.ticks,
                Some(&registry),
            )?;
            let snapshot = registry.snapshot();
            match &args.metrics_out {
                Some(path) => write_metrics(&snapshot, path)?,
                // Default exposition: JSON with --json, Prometheus text
                // otherwise, both to stdout.
                None if args.json => println!(
                    "{}",
                    serde_json::to_string_pretty(&to_json(&snapshot)).expect("metrics json")
                ),
                None => print!("{}", to_prometheus(&snapshot)),
            }
            Ok(())
        }
        "compare" => {
            let scenario = parse_scenario(&scenario_name, args.seed)?;
            let source = SourceSpec::parse(&args.source).map_err(|e| e.to_string())?;
            println!(
                "scenario: {} ({} ticks, seed {}, source {})\n",
                scenario.name(),
                args.ticks,
                args.seed,
                source.name(),
            );
            for policy in ["null", "always", "reactive", "static", "stayaway"] {
                let (out, built, cap) =
                    run_policy_by_name(&scenario, policy, &source, args.seed, args.ticks, None)?;
                summarize(built.name(), scenario.name(), cap, &out, None, args.json);
            }
            Ok(())
        }
        "capture" => {
            let scenario = parse_scenario(&scenario_name, args.seed)?;
            let (out, policy, cap) = run_policy_by_name(
                &scenario,
                "stay-away",
                &SourceSpec::Sim,
                args.seed,
                args.ticks,
                None,
            )?;
            let sens_name = scenario_name.split('+').next().unwrap_or("sensitive");
            let template = policy
                .export_template(sens_name)
                .map_err(|e| e.to_string())?
                .ok_or("the selected policy does not learn templates")?;
            let path = args.out.unwrap_or_else(|| "template.json".into());
            template.save_to_path(&path).map_err(|e| e.to_string())?;
            summarize("stay-away", scenario.name(), cap, &out, None, args.json);
            println!(
                "template with {} states ({} violation) written to {path}",
                template.len(),
                template.violation_count()
            );
            Ok(())
        }
        "reuse" => {
            let path = args.template.ok_or("reuse requires --template <path>")?;
            let template = Template::load_from_path(&path).map_err(|e| e.to_string())?;
            let scenario = parse_scenario(&scenario_name, args.seed)?;
            let mut harness = scenario.build_harness().map_err(|e| e.to_string())?;
            let mut policy = PolicySpec::StayAway
                .build(&ControllerConfig::default(), harness.host().spec())
                .map_err(|e| e.to_string())?;
            policy
                .import_template(&template)
                .map_err(|e| e.to_string())?;
            let out = harness.run(policy.as_mut(), args.ticks);
            println!(
                "seeded with {} template states ({} violation) from {path}",
                template.len(),
                template.violation_count()
            );
            summarize(
                "stay-away+tpl",
                scenario.name(),
                scenario.host_spec().cpu_cores,
                &out,
                None,
                args.json,
            );
            Ok(())
        }
        "record" => {
            let scenario = parse_scenario(&scenario_name, args.seed)?;
            let spec = PolicySpec::parse(&args.policy).map_err(|e| e.to_string())?;
            let harness = scenario.build_harness().map_err(|e| e.to_string())?;
            let host_spec = *harness.host().spec();
            let mut policy = spec
                .build(&ControllerConfig::default(), &host_spec)
                .map_err(|e| e.to_string())?;
            let path = args.out.unwrap_or_else(|| "trace.jsonl".into());
            let file = std::fs::File::create(&path).map_err(|e| e.to_string())?;
            let mut recorder =
                RecordingSource::new(SimSource::new(harness), std::io::BufWriter::new(file))
                    .map_err(|e| e.to_string())?;
            let out =
                drive(&mut recorder, policy.as_mut(), args.ticks).map_err(|e| e.to_string())?;
            recorder.finish().map_err(|e| e.to_string())?;
            summarize(
                policy.name(),
                scenario.name(),
                host_spec.cpu_cores,
                &out,
                None,
                args.json,
            );
            println!(
                "trace with {} observations written to {path}",
                out.timeline.len()
            );
            Ok(())
        }
        "replay" => {
            let path = args.trace.ok_or("replay requires --trace <path>")?;
            let mut source = TraceSource::open(&path).map_err(|e| e.to_string())?;
            let recorded_from = source.header().recorded_from;
            // The controller runs against the capacities the trace was
            // recorded on; traces without a host spec get the defaults.
            let host_spec = source.header().host.unwrap_or_default();
            let spec = PolicySpec::parse(&args.policy).map_err(|e| e.to_string())?;
            let mut policy = spec
                .build(&ControllerConfig::default(), &host_spec)
                .map_err(|e| e.to_string())?;
            let out = drive(&mut source, policy.as_mut(), args.ticks).map_err(|e| e.to_string())?;
            println!(
                "replayed {} observations from {path} (recorded from {recorded_from})",
                out.timeline.len(),
            );
            let stats = policy.stats();
            let stats = (stats.periods > 0).then_some(&stats);
            summarize(
                policy.name(),
                &format!("replay:{path}"),
                host_spec.cpu_cores,
                &out,
                stats,
                args.json,
            );
            Ok(())
        }
        "fleet" => {
            let scenarios = match &args.scenario {
                Some(name) => vec![parse_scenario(name, args.seed)?],
                None => FleetConfig::standard_mix(args.seed),
            };
            let policies = PolicySpec::parse_list(&args.policy).map_err(|e| e.to_string())?;
            let sources = SourceSpec::parse_list(&args.source).map_err(|e| e.to_string())?;
            let config = FleetConfig {
                cells: args.cells,
                workers: args.workers,
                ticks: args.ticks,
                fleet_seed: args.seed,
                share_templates: args.share_templates,
                scenarios,
                policies,
                sources,
                controller: ControllerConfig::default(),
                collect_metrics: args.metrics_out.is_some(),
                mapping_workers: 1,
            };
            let fleet = Fleet::new(config).map_err(|e| e.to_string())?;
            let outcome = fleet.run().map_err(|e| e.to_string())?;
            if args.json {
                println!("{}", outcome.to_json().map_err(|e| e.to_string())?);
            } else {
                fleet_summary(&outcome);
            }
            if let Some(path) = &args.metrics_out {
                let rollup = outcome
                    .metrics
                    .as_ref()
                    .ok_or("fleet produced no metrics rollup")?;
                write_metrics(rollup, path)?;
            }
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_full_flag_set() {
        let a = parse_args(&argv(
            "run --scenario web-mem+soplex --policy reactive --ticks 100 --seed 3 --json",
        ))
        .unwrap();
        assert_eq!(a.command, "run");
        assert_eq!(a.scenario.as_deref(), Some("web-mem+soplex"));
        assert_eq!(a.policy, "reactive");
        assert_eq!(a.ticks, 100);
        assert_eq!(a.seed, 3);
        assert!(a.json);
    }

    #[test]
    fn parses_fleet_flags() {
        let a = parse_args(&argv(
            "fleet --cells 64 --workers 4 --seed 7 --share-templates --json",
        ))
        .unwrap();
        assert_eq!(a.command, "fleet");
        assert_eq!(a.cells, 64);
        assert_eq!(a.workers, 4);
        assert_eq!(a.seed, 7);
        assert!(a.share_templates);
        assert!(a.json);
        // No --scenario means the fleet runs its standard mix.
        assert_eq!(a.scenario, None);
    }

    #[test]
    fn fleet_defaults_are_modest() {
        let a = parse_args(&argv("fleet")).unwrap();
        assert_eq!(a.cells, 8);
        assert_eq!(a.workers, 1);
        assert!(!a.share_templates);
    }

    #[test]
    fn rejects_unknown_flags_and_bad_values() {
        assert!(parse_args(&argv("run --bogus 1")).is_err());
        assert!(parse_args(&argv("run --ticks abc")).is_err());
        assert!(parse_args(&argv("run --scenario")).is_err());
        assert!(parse_args(&argv("fleet --cells abc")).is_err());
        assert!(parse_args(&argv("fleet --workers")).is_err());
        assert!(parse_args(&argv("replay --trace")).is_err());
        assert!(parse_args(&[]).is_err());
    }

    #[test]
    fn parses_source_and_trace_flags() {
        let a = parse_args(&argv("run --source trace:/tmp/t.jsonl")).unwrap();
        assert_eq!(a.source, "trace:/tmp/t.jsonl");
        assert_eq!(
            SourceSpec::parse(&a.source).unwrap(),
            SourceSpec::Trace {
                path: "/tmp/t.jsonl".into()
            }
        );
        let a = parse_args(&argv("replay --trace out.jsonl --policy reactive")).unwrap();
        assert_eq!(a.trace.as_deref(), Some("out.jsonl"));
        // The default substrate is the simulator.
        let a = parse_args(&argv("run")).unwrap();
        assert_eq!(SourceSpec::parse(&a.source).unwrap(), SourceSpec::Sim);
    }

    #[test]
    fn record_then_replay_reproduces_the_run_through_the_cli_paths() {
        // Exercise the same code paths the `record` and `replay` commands
        // use, against an in-memory trace.
        let scenario = parse_scenario("vlc+cpu-bomb", 3).unwrap();
        let harness = scenario.build_harness().unwrap();
        let host_spec = *harness.host().spec();
        let mut recorder = RecordingSource::new(SimSource::new(harness), Vec::new()).unwrap();
        let mut live = PolicySpec::StayAway
            .build(&ControllerConfig::default(), &host_spec)
            .unwrap();
        let live_out = drive(&mut recorder, live.as_mut(), 60).unwrap();
        let (_, trace) = recorder.finish().unwrap();

        let mut source = TraceSource::new(trace.as_slice()).unwrap();
        let replay_host = source.header().host.unwrap();
        assert_eq!(replay_host, host_spec);
        let mut replayed = PolicySpec::StayAway
            .build(&ControllerConfig::default(), &replay_host)
            .unwrap();
        let replay_out = drive(&mut source, replayed.as_mut(), 60).unwrap();
        assert_eq!(live_out.qos, replay_out.qos);
        assert_eq!(live.stats(), replayed.stats());
    }

    #[test]
    fn parses_all_scenario_names() {
        for sens in ["vlc", "web-cpu", "web-mem", "web-mix"] {
            for batch in BatchKind::ALL {
                let name = format!("{sens}+{batch}");
                let s = parse_scenario(&name, 1).unwrap();
                assert_eq!(s.name(), name);
            }
        }
    }

    #[test]
    fn rejects_malformed_scenarios() {
        assert!(parse_scenario("vlc", 1).is_err());
        assert!(parse_scenario("vlc+unknown", 1).is_err());
        assert!(parse_scenario("nope+soplex", 1).is_err());
    }

    #[test]
    fn run_policy_by_name_covers_all_policies() {
        let scenario = parse_scenario("vlc+soplex", 1).unwrap();
        for p in ["stay-away", "none", "always", "reactive", "static", "null"] {
            let (out, policy, cap) =
                run_policy_by_name(&scenario, p, &SourceSpec::Sim, 1, 30, None).unwrap();
            assert_eq!(out.timeline.len(), 30);
            assert_eq!(cap, scenario.host_spec().cpu_cores);
            // Only the controller counts its periods and learns templates.
            let is_stayaway = p == "stay-away";
            assert_eq!(policy.stats().periods > 0, is_stayaway);
            assert_eq!(policy.supports_templates(), is_stayaway);
        }
        assert!(run_policy_by_name(&scenario, "bogus", &SourceSpec::Sim, 1, 10, None).is_err());
    }
}
