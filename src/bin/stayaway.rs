//! `stayaway` — command-line front end to the reproduction.
//!
//! ```text
//! stayaway list
//! stayaway scenarios --json
//! stayaway run --scenario vlc+cpu-bomb --policy stay-away --ticks 384 --seed 7
//! stayaway run --source trace:trace.jsonl
//! stayaway run --source workload:multi-tenant-storm --policy stayaway
//! stayaway bench-scenarios --ticks 120
//! stayaway compare --scenario web-mem+twitter-analysis --ticks 300
//! stayaway capture --scenario vlc+cpu-bomb --out template.json
//! stayaway reuse --scenario vlc+soplex --template template.json
//! stayaway record --scenario vlc+cpu-bomb --out trace.jsonl
//! stayaway replay --trace trace.jsonl
//! stayaway fleet --cells 64 --workers 4 --seed 7 --share-templates --json
//! stayaway fleet --predictor kde,xapp,denoise,last-tick --json
//! stayaway tournament --json
//! stayaway tournament --scenario cpu-bomb,flash-crowd --predictor kde,xapp
//! stayaway cluster --cluster-scenario hotspot --cluster-policy score --json
//! stayaway cluster --compare --cluster-scenario storm-cluster
//! ```
//!
//! Scenario names are `<sensitive>+<batch>` with sensitive ∈ {vlc,
//! web-cpu, web-mem, web-mix} and batch ∈ {cpu-bomb, memory-bomb, soplex,
//! twitter-analysis, vlc-transcode}.

use stay_away::core::{ControlPolicy, ControllerConfig, ControllerStats, Observability};
use stay_away::fleet::{
    cluster_by_name, cluster_library, run_tournament, Cluster, ClusterConfig, ClusterOutcome,
    ClusterPolicySpec, Fleet, FleetConfig, PolicySpec, PredictorSpec, SourceSpec, TournamentConfig,
    TournamentOutcome,
};
use stay_away::obs::{
    events_from_jsonl, events_to_jsonl, promlint, to_json, to_prometheus, EventId, EventKind,
    EventRecord, FlightRecorder, HttpServer, Introspection, MetricsRegistry, MetricsSnapshot,
    StateCell,
};
use stay_away::sim::apps::WebWorkload;
use stay_away::sim::scenario::{BatchKind, Scenario, SensitiveKind};
use stay_away::sim::workload::{DiurnalParams, Trace};
use stay_away::sim::{RunOutcome, SimSource};
use stay_away::statespace::Template;
use stay_away::telemetry::{drive, RecordingSource, TraceSource};
use stay_away::workload::{bench_scenario, BenchTable, WorkloadSource};

const USAGE: &str = "\
usage: stayaway <command> [options]

commands:
  list                       list scenarios and policies
  run                        run one scenario under one policy
  compare                    run one scenario under every policy
  capture                    run stay-away and export the learned template
  reuse                      run stay-away seeded from a template
  record                     run one scenario and record the observation
                             stream to a JSONL trace file
  replay                     drive a policy from a recorded trace
  fleet                      run many co-location cells over a worker pool
  tournament                 rank every prediction plane over a set of
                             workload scenarios (the full predictor x
                             scenario cross-product, with bootstrap
                             confidence intervals)
  cluster                    run movable batch jobs over an open cluster of
                             workload hosts (placement + admission queue +
                             migration above per-host controllers)
  metrics                    run one scenario with full instrumentation and
                             print the metrics exposition
  events                     run with the flight recorder on and print the
                             causal event timeline (or inspect a JSONL file
                             via --events-in); --cause <scope:seq> renders
                             one event's causal chain
  metrics-diff <a> <b>       compare two metrics snapshot JSON files (as
                             written by --metrics-out x.json) with relative
                             per-metric thresholds; exits 1 on regression
  promlint <file>            validate a Prometheus text exposition file
                             (`-` reads stdin); exits 1 on lint errors
  scenarios                  list the request-driven workload scenario
                             library (use with run --source workload:<name>)
  bench-scenarios            run every workload scenario under a list of
                             policies and print the per-request QoS table

options:
  --scenario <sens>+<batch>  e.g. vlc+cpu-bomb, web-mem+twitter-analysis
                             (fleet default: a 4-scenario mix; tournament:
                             comma-separated workload scenario names,
                             default cpu-bomb,memory-bomb,flash-crowd)
  --policy <name>            stayaway | reactive | static | always | null
                             (fleet/bench-scenarios: comma-separated list,
                             e.g. stayaway,reactive; bench-scenarios
                             default stayaway,reactive,null)
  --predictor <name>         prediction plane for the stay-away controller:
                             kde | xapp | denoise | last-tick (default kde;
                             fleet/tournament: comma-separated list — the
                             fleet round-robins it across cells, the
                             tournament enters every listed plane)
  --resamples <n>            tournament: bootstrap resamples behind each
                             confidence interval (default 1000)
  --source <spec>            observation substrate for run/compare/fleet:
                             sim | trace:<path> | procfs |
                             workload:<scenario> (default sim; fleet:
                             comma-separated list round-robined across
                             cells)
  --trace <path>             recorded trace file for replay
  --ticks <n>                simulation length (default 384)
  --seed <n>                 deterministic seed (default 7)
  --template <path>          template file for capture/reuse
  --out <path>               output path for capture (template.json) and
                             record (trace.jsonl)
  --cells <n>                fleet: number of co-location cells (default 8);
                             tournament: cells per predictor x scenario
                             combination (default 3)
  --workers <n>              fleet/cluster: worker threads (default 1;
                             results are identical for any value)
  --share-templates          fleet: warm-start cells from the registry
  --cluster-scenario <name>  cluster: hotspot | storm-cluster
                             (default hotspot)
  --cluster-policy <name>    cluster: score | random | least-loaded | none
                             (default score; none = throttle-only
                             round-robin Stay-Away)
  --epochs <n>               cluster: placement epochs (default 24)
  --epoch-ticks <n>          cluster: control ticks per epoch (default 8)
  --no-migration             cluster: disable the Migrate verb
  --compare                  cluster: run every cluster policy and print
                             the comparison table
  --metrics-out <path>       run/fleet/cluster/tournament/metrics: export
                             the run's metrics snapshot; `-` writes pretty
                             JSON to stdout, a `.json` path writes pretty
                             JSON, any other path writes Prometheus text
                             exposition
  --events-out <path>        run/fleet/cluster: write the canonical event
                             stream as JSON Lines (`-` writes to stdout)
  --events-in <path>         events: read a recorded JSONL stream instead
                             of running a scenario
  --http <addr>              run/fleet/cluster: serve /health /metrics
                             /state /events?tail=N on <addr> (port 0 binds
                             an ephemeral port; the bound address is
                             printed)
  --http-linger <secs>       keep the HTTP server up this many seconds
                             after the run completes (default 0)
  --kind <name>              events: only show this event kind
  --host <n>                 events: only show this recorder scope
  --tick-from <n>            events: drop events before this tick
  --tick-to <n>              events: drop events after this tick
  --cause <scope:seq>        events: render the causal chain ending at
                             this event id
  --threshold <f>            metrics-diff: relative tolerance applied to
                             every metric (default 0, exact match)
  --threshold-for <m=f>      metrics-diff: per-metric override, repeatable
  --json                     print a JSON summary instead of text
";

#[derive(Debug, Clone)]
struct Args {
    command: String,
    /// None means "not given on the command line": single-run commands
    /// default to vlc+cpu-bomb, the fleet to its standard scenario mix.
    scenario: Option<String>,
    /// None means "not given on the command line": most commands default
    /// to stay-away, bench-scenarios to its baseline-comparison list.
    policy: Option<String>,
    /// None means "not given": every predictive command defaults to the
    /// reference KDE plane.
    predictor: Option<String>,
    source: String,
    trace: Option<String>,
    ticks: u64,
    seed: u64,
    template: Option<String>,
    out: Option<String>,
    /// None means "not given": the fleet defaults to 8 cells, the
    /// tournament to 3 cells per predictor × scenario combination.
    cells: Option<usize>,
    workers: usize,
    resamples: usize,
    share_templates: bool,
    /// None means "not given": the cluster defaults to hotspot.
    cluster_scenario: Option<String>,
    /// None means "not given": the cluster defaults to scoring placement.
    cluster_policy: Option<String>,
    epochs: u64,
    epoch_ticks: u64,
    no_migration: bool,
    compare: bool,
    metrics_out: Option<String>,
    events_out: Option<String>,
    events_in: Option<String>,
    /// None means "don't serve": `--http <addr>` starts the introspection
    /// server (DESIGN.md §16) for the duration of the run.
    http: Option<String>,
    /// Seconds the HTTP server outlives the run (0 = stop immediately).
    http_linger: u64,
    kind: Option<String>,
    host: Option<u32>,
    tick_from: Option<u64>,
    tick_to: Option<u64>,
    cause: Option<String>,
    /// metrics-diff: global relative tolerance (0 = exact).
    threshold: f64,
    /// metrics-diff: per-metric overrides, `name=tolerance`.
    threshold_for: Vec<(String, f64)>,
    /// Non-flag operands after the command (metrics-diff paths, a
    /// promlint file).
    positional: Vec<String>,
    json: bool,
}

/// Scenario used by the single-run commands when `--scenario` is omitted.
const DEFAULT_SCENARIO: &str = "vlc+cpu-bomb";

impl Args {
    /// The `--policy` value, or `default` when the flag was omitted.
    fn policy_or<'a>(&'a self, default: &'a str) -> &'a str {
        self.policy.as_deref().unwrap_or(default)
    }

    /// The controller configuration single-run commands build policies
    /// with: the defaults, with `--predictor` applied when given.
    fn controller_config(&self) -> Result<ControllerConfig, String> {
        let config = ControllerConfig::default();
        match &self.predictor {
            Some(token) => Ok(PredictorSpec::parse(token)
                .map_err(|e| e.to_string())?
                .apply(&config)),
            None => Ok(config),
        }
    }
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        command: argv.first().cloned().ok_or("missing command")?,
        scenario: None,
        policy: None,
        predictor: None,
        source: "sim".into(),
        trace: None,
        ticks: 384,
        seed: 7,
        template: None,
        out: None,
        cells: None,
        workers: 1,
        resamples: 1000,
        share_templates: false,
        cluster_scenario: None,
        cluster_policy: None,
        epochs: 24,
        epoch_ticks: 8,
        no_migration: false,
        compare: false,
        metrics_out: None,
        events_out: None,
        events_in: None,
        http: None,
        http_linger: 0,
        kind: None,
        host: None,
        tick_from: None,
        tick_to: None,
        cause: None,
        threshold: 0.0,
        threshold_for: Vec::new(),
        positional: Vec::new(),
        json: false,
    };
    let mut it = argv[1..].iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} expects a value"))
        };
        match flag.as_str() {
            "--scenario" => args.scenario = Some(value("--scenario")?),
            "--policy" => args.policy = Some(value("--policy")?),
            "--predictor" => args.predictor = Some(value("--predictor")?),
            "--resamples" => {
                args.resamples = value("--resamples")?
                    .parse()
                    .map_err(|_| "--resamples expects an integer".to_string())?
            }
            "--source" => args.source = value("--source")?,
            "--trace" => args.trace = Some(value("--trace")?),
            "--ticks" => {
                args.ticks = value("--ticks")?
                    .parse()
                    .map_err(|_| "--ticks expects an integer".to_string())?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?
            }
            "--template" => args.template = Some(value("--template")?),
            "--out" => args.out = Some(value("--out")?),
            "--cells" => {
                args.cells = Some(
                    value("--cells")?
                        .parse()
                        .map_err(|_| "--cells expects an integer".to_string())?,
                )
            }
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers expects an integer".to_string())?
            }
            "--share-templates" => args.share_templates = true,
            "--cluster-scenario" => args.cluster_scenario = Some(value("--cluster-scenario")?),
            "--cluster-policy" => args.cluster_policy = Some(value("--cluster-policy")?),
            "--epochs" => {
                args.epochs = value("--epochs")?
                    .parse()
                    .map_err(|_| "--epochs expects an integer".to_string())?
            }
            "--epoch-ticks" => {
                args.epoch_ticks = value("--epoch-ticks")?
                    .parse()
                    .map_err(|_| "--epoch-ticks expects an integer".to_string())?
            }
            "--no-migration" => args.no_migration = true,
            "--compare" => args.compare = true,
            "--metrics-out" => args.metrics_out = Some(value("--metrics-out")?),
            "--events-out" => args.events_out = Some(value("--events-out")?),
            "--events-in" => args.events_in = Some(value("--events-in")?),
            "--http" => args.http = Some(value("--http")?),
            "--http-linger" => {
                args.http_linger = value("--http-linger")?
                    .parse()
                    .map_err(|_| "--http-linger expects seconds".to_string())?
            }
            "--kind" => args.kind = Some(value("--kind")?),
            "--host" => {
                args.host = Some(
                    value("--host")?
                        .parse()
                        .map_err(|_| "--host expects an integer scope".to_string())?,
                )
            }
            "--tick-from" => {
                args.tick_from = Some(
                    value("--tick-from")?
                        .parse()
                        .map_err(|_| "--tick-from expects an integer".to_string())?,
                )
            }
            "--tick-to" => {
                args.tick_to = Some(
                    value("--tick-to")?
                        .parse()
                        .map_err(|_| "--tick-to expects an integer".to_string())?,
                )
            }
            "--cause" => args.cause = Some(value("--cause")?),
            "--threshold" => {
                args.threshold = value("--threshold")?
                    .parse()
                    .map_err(|_| "--threshold expects a number".to_string())?
            }
            "--threshold-for" => {
                let spec = value("--threshold-for")?;
                let (name, tol) = spec.split_once('=').ok_or_else(|| {
                    format!("--threshold-for `{spec}` is not <metric>=<tolerance>")
                })?;
                let tol: f64 = tol
                    .parse()
                    .map_err(|_| format!("--threshold-for tolerance `{tol}` is not a number"))?;
                args.threshold_for.push((name.to_string(), tol));
            }
            "--json" => args.json = true,
            other if !other.starts_with('-') => args.positional.push(other.to_string()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn parse_scenario(name: &str, seed: u64) -> Result<Scenario, String> {
    let (sens, batch) = name
        .split_once('+')
        .ok_or_else(|| format!("scenario `{name}` is not of the form <sensitive>+<batch>"))?;
    let batch_kind = BatchKind::ALL
        .into_iter()
        .find(|k| k.name() == batch)
        .ok_or_else(|| {
            format!(
                "unknown batch app `{batch}` (expected one of {})",
                BatchKind::ALL.map(|k| k.name()).join(", ")
            )
        })?;
    let trace = Trace::diurnal(DiurnalParams::default(), seed.wrapping_add(1));
    let sensitive = match sens {
        "vlc" => SensitiveKind::VlcStreaming { trace },
        "web-cpu" => SensitiveKind::Webservice {
            workload: WebWorkload::CpuIntensive,
            trace,
        },
        "web-mem" => SensitiveKind::Webservice {
            workload: WebWorkload::MemIntensive,
            trace,
        },
        "web-mix" => SensitiveKind::Webservice {
            workload: WebWorkload::Mix,
            trace,
        },
        other => {
            return Err(format!(
                "unknown sensitive app `{other}` (expected vlc, web-cpu, web-mem or web-mix)"
            ))
        }
    };
    Ok(Scenario::builder(name)
        .seed(seed)
        .sensitive(sensitive)
        .batch(batch_kind, 20)
        .build())
}

fn summarize(
    label: &str,
    scenario_name: &str,
    cpu_capacity: f64,
    out: &RunOutcome,
    stats: Option<&ControllerStats>,
    json: bool,
) {
    let cap = cpu_capacity;
    if json {
        let mut doc = serde_json::json!({
            "scenario": scenario_name,
            "policy": label,
            "ticks": out.timeline.len(),
            "violations": out.qos.violations,
            "satisfaction": out.qos.satisfaction(),
            "mean_qos": out.qos.mean_qos(),
            "gained_utilization": out.mean_gained_utilization(cap),
            "batch_work": out.batch_work,
        });
        if let (Some(stats), serde_json::Value::Object(pairs)) = (stats, &mut doc) {
            pairs.push(("controller".to_string(), serde_json::to_value(stats)));
        }
        println!("{}", serde_json::to_string_pretty(&doc).expect("json"));
    } else {
        println!(
            "{label:<16} violations {:>4}  satisfaction {:>5.1}%  gained util {:>5.1}%  batch work {:>6.0}",
            out.qos.violations,
            100.0 * out.qos.satisfaction(),
            100.0 * out.mean_gained_utilization(cap),
            out.batch_work,
        );
        if let Some(stats) = stats {
            println!(
                "controller: {} states ({} violation), {} throttles, {} resumes, prediction accuracy {}",
                stats.states,
                stats.violation_states,
                stats.throttles,
                stats.resumes,
                format_accuracy(stats.prediction_accuracy()),
            );
            let t = &stats.stage_timing;
            println!(
                "stages: sense {}x/{}µs, map {}x/{}µs, predict {}x/{}µs, act {}x/{}µs",
                t.sense.invocations,
                t.sense.nanos / 1_000,
                t.map.invocations,
                t.map.nanos / 1_000,
                t.predict.invocations,
                t.predict.nanos / 1_000,
                t.act.invocations,
                t.act.nanos / 1_000,
            );
        }
    }
}

/// Prediction accuracy for humans: a percentage, or "n/a" before any
/// prediction has been checked (never a made-up 100%).
fn format_accuracy(accuracy: Option<f64>) -> String {
    match accuracy {
        Some(a) => format!("{:.1}%", 100.0 * a),
        None => "n/a".to_string(),
    }
}

/// Writes a metrics snapshot to `path`: `-` prints pretty JSON to
/// stdout, a `.json` path gets pretty JSON, anything else gets the
/// Prometheus text exposition.
fn write_metrics(snapshot: &MetricsSnapshot, path: &str) -> Result<(), String> {
    if path == "-" {
        println!(
            "{}",
            serde_json::to_string_pretty(&to_json(snapshot)).expect("metrics json")
        );
        return Ok(());
    }
    let rendered = if path.ends_with(".json") {
        let mut text = serde_json::to_string_pretty(&to_json(snapshot)).expect("metrics json");
        text.push('\n');
        text
    } else {
        to_prometheus(snapshot)
    };
    std::fs::write(path, rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("metrics written to {path}");
    Ok(())
}

/// The live observability handles a single-host run shares between the
/// controller, the workload source and the HTTP introspection server:
/// one flight recorder (scope 0), the `/state` cell the controller
/// publishes into, and — when `--http` was given — the running server.
struct RunIntrospection {
    recorder: FlightRecorder,
    state: StateCell,
    server: Option<HttpServer>,
}

/// Builds the single-run introspection plane when `--http` or
/// `--events-out` asks for it. With `--http` the server starts before
/// the run (live observation) and the bound address is printed —
/// ephemeral ports resolve here, scripts scrape this line.
fn run_introspection(
    args: &Args,
    registry: Option<&MetricsRegistry>,
) -> Result<Option<RunIntrospection>, String> {
    if args.http.is_none() && args.events_out.is_none() {
        return Ok(None);
    }
    let recorder = FlightRecorder::for_scope(0, "run");
    let (state, server) = match &args.http {
        Some(addr) => {
            let mut intro = Introspection::new().with_recorder(recorder.clone());
            if let Some(registry) = registry {
                intro = intro.with_registry(registry.clone());
            }
            // The server's own cell doubles as the controller's `/state`
            // sink — one handle, no copying.
            let state = intro.state();
            let server = HttpServer::serve(addr, intro)
                .map_err(|e| format!("cannot serve on {addr}: {e}"))?;
            println!(
                "introspection server listening on http://{}",
                server.local_addr()
            );
            (state, Some(server))
        }
        None => (StateCell::new(), None),
    };
    Ok(Some(RunIntrospection {
        recorder,
        state,
        server,
    }))
}

/// Post-run: exports the event stream when `--events-out` asked for it,
/// honours `--http-linger`, then stops the server.
fn finish_introspection(
    args: &Args,
    introspection: Option<RunIntrospection>,
) -> Result<(), String> {
    let Some(intro) = introspection else {
        return Ok(());
    };
    if let Some(path) = &args.events_out {
        write_events(&intro.recorder.events(), path)?;
    }
    linger_and_shutdown(args, intro.server);
    Ok(())
}

/// Honours `--http-linger`, then stops the server.
fn linger_and_shutdown(args: &Args, server: Option<HttpServer>) {
    let Some(server) = server else { return };
    if args.http_linger > 0 {
        println!(
            "introspection server lingering for {}s (ctrl-c to abort)",
            args.http_linger
        );
        std::thread::sleep(std::time::Duration::from_secs(args.http_linger));
    }
    server.shutdown();
}

/// Writes the canonical event stream to `path` as JSON Lines (`-`
/// prints to stdout).
fn write_events(events: &[EventRecord], path: &str) -> Result<(), String> {
    let jsonl = events_to_jsonl(events);
    if path == "-" {
        print!("{jsonl}");
        return Ok(());
    }
    std::fs::write(path, jsonl).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("{} events written to {path}", events.len());
    Ok(())
}

/// Reads a whole text input: `-` means stdin, anything else a path.
fn read_text_input(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut buf = String::new();
        std::io::Read::read_to_string(&mut std::io::stdin(), &mut buf)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    }
}

/// Serves a *completed* fleet or cluster outcome over `--http`: the
/// frozen metrics rollup on `/metrics`, a summary document on `/state`
/// and the merged canonical event stream on `/events`. The server only
/// exists for the `--http-linger` window — multi-cell planes publish
/// after the run rather than live, so their streams stay canonical.
fn serve_outcome_http(
    args: &Args,
    metrics: Option<&MetricsSnapshot>,
    events: Option<Vec<EventRecord>>,
    state: serde_json::Value,
) -> Result<(), String> {
    let Some(addr) = &args.http else {
        return Ok(());
    };
    let intro = Introspection::new();
    if let Some(snapshot) = metrics {
        intro.set_metrics(snapshot.clone());
    }
    if let Some(events) = events {
        intro.set_events(events);
    }
    intro.state().set(state);
    let server =
        HttpServer::serve(addr, intro).map_err(|e| format!("cannot serve on {addr}: {e}"))?;
    println!(
        "introspection server listening on http://{}",
        server.local_addr()
    );
    linger_and_shutdown(args, Some(server));
    Ok(())
}

/// The `/state` summary a post-run fleet server publishes.
fn fleet_state_json(outcome: &stay_away::fleet::FleetOutcome) -> serde_json::Value {
    serde_json::json!({
        "plane": "fleet",
        "cells": outcome.cells as u64,
        "ticks_per_cell": outcome.ticks_per_cell,
        "fleet_seed": outcome.fleet_seed,
        "total_batch_work": outcome.total_batch_work,
        "mean_utilization": outcome.mean_utilization,
        "mean_gained_utilization": outcome.mean_gained_utilization,
        "throttles": outcome.throttles,
        "resumes": outcome.resumes,
        "violations_predicted": outcome.violations_predicted,
        "events_dropped": outcome.events_dropped,
        "metric_unit_mismatches": outcome.metric_unit_mismatches
    })
}

/// The `/state` summary a post-run cluster server publishes.
fn cluster_state_json(outcome: &ClusterOutcome) -> serde_json::Value {
    serde_json::json!({
        "plane": "cluster",
        "scenario": outcome.scenario.clone(),
        "cluster_policy": outcome.cluster_policy.clone(),
        "host_policy": outcome.host_policy.clone(),
        "seed": outcome.seed,
        "epochs": outcome.epochs,
        "ticks_per_epoch": outcome.ticks_per_epoch,
        "slo_violation_rate": outcome.slo_violation_rate,
        "total_batch_work": outcome.total_batch_work,
        "admissions": outcome.admissions,
        "migrations": outcome.migrations,
        "deferrals": outcome.deferrals,
        "queue_actions": outcome.queue_actions,
        "metric_unit_mismatches": outcome.metric_unit_mismatches
    })
}

/// One human-readable timeline line:
/// `scope:seq t=<tick> [layer] kind subject k=v ... <- cause`.
fn render_event(e: &EventRecord) -> String {
    let mut line = format!(
        "{} t={} [{}] {} {}",
        e.id(),
        e.tick,
        e.layer,
        e.kind,
        e.subject
    );
    for (name, value) in &e.attrs {
        line.push_str(&format!(" {name}={}", value.render()));
    }
    if let Some(cause) = e.cause {
        line.push_str(&format!(" <- {cause}"));
    }
    line
}

/// The event stream the `events` command inspects: `--events-in` reads
/// a JSONL export, otherwise a demo cluster run records one live.
/// storm-cluster is the demo default because it exercises every cluster
/// verb including migration (hotspot under scoring placement admits
/// cleanly and never migrates).
fn load_or_record_events(args: &Args) -> Result<Vec<EventRecord>, String> {
    if let Some(path) = &args.events_in {
        let text = read_text_input(path)?;
        return events_from_jsonl(&text).map_err(|e| format!("{path}: {e}"));
    }
    let mut demo = args.clone();
    if demo.cluster_scenario.is_none() {
        demo.cluster_scenario = Some("storm-cluster".into());
    }
    let policy = ClusterPolicySpec::parse(demo.cluster_policy.as_deref().unwrap_or("score"))
        .map_err(|e| e.to_string())?;
    let outcome = run_cluster_policy(&demo, policy)?;
    outcome
        .events
        .ok_or_else(|| "cluster run recorded no events".to_string())
}

/// Walks `--cause` links from `id` back to the root, printing each hop.
fn print_causal_chain(events: &[EventRecord], id: EventId) -> Result<(), String> {
    let find = |id: EventId| {
        events
            .iter()
            .find(|e| e.scope == id.scope && e.seq == id.seq)
    };
    let mut next = Some(id);
    let mut depth = 0usize;
    while let Some(id) = next {
        let event = find(id).ok_or_else(|| format!("event {id} not found in the stream"))?;
        if depth == 0 {
            println!("{}", render_event(event));
        } else {
            println!(
                "{:indent$}caused by {}",
                "",
                render_event(event),
                indent = depth * 2
            );
        }
        next = event.cause;
        depth += 1;
    }
    Ok(())
}

/// One comparable series extracted from a metrics snapshot JSON:
/// histograms expand to one series per statistic; `metric` names the
/// owning metric so `--threshold-for` overrides attach to all of them.
struct MetricSeries {
    key: String,
    metric: String,
    value: f64,
}

/// A numeric JSON field, whatever integer/float shape it parsed as.
fn number_field(value: &serde_json::Value) -> Option<f64> {
    value
        .as_f64()
        .or_else(|| value.as_u64().map(|u| u as f64))
        .or_else(|| value.as_i64().map(|i| i as f64))
}

/// Wall-clock series are nondeterministic by nature and excluded from
/// the regression gate.
fn is_wall_clock(name: &str, unit: Option<&str>) -> bool {
    name.ends_with("_nanos") || name.contains("_nanos_") || unit == Some("nanos")
}

/// Extracts the comparable series from a `--metrics-out *.json`
/// snapshot, skipping wall-clock series and null quantiles.
fn load_metric_values(path: &str) -> Result<Vec<MetricSeries>, String> {
    let text = read_text_input(path)?;
    let doc: serde_json::Value = serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
    let mut out = Vec::new();
    for section in ["counters", "gauges"] {
        let Some(entries) = doc.get(section).and_then(|v| v.as_array()) else {
            continue;
        };
        for entry in entries {
            let Some(name) = entry.get("name").and_then(|v| v.as_str()) else {
                continue;
            };
            if is_wall_clock(name, None) {
                continue;
            }
            let Some(value) = entry.get("value").and_then(number_field) else {
                continue;
            };
            out.push(MetricSeries {
                key: name.to_string(),
                metric: name.to_string(),
                value,
            });
        }
    }
    if let Some(entries) = doc.get("histograms").and_then(|v| v.as_array()) {
        for entry in entries {
            let Some(name) = entry.get("name").and_then(|v| v.as_str()) else {
                continue;
            };
            let unit = entry.get("unit").and_then(|v| v.as_str());
            if is_wall_clock(name, unit) {
                continue;
            }
            for stat in ["count", "sum", "min", "max", "mean", "p50", "p95", "p99"] {
                let Some(value) = entry.get(stat).and_then(number_field) else {
                    continue;
                };
                out.push(MetricSeries {
                    key: format!("{name}/{stat}"),
                    metric: name.to_string(),
                    value,
                });
            }
        }
    }
    Ok(out)
}

/// One row of the regression-gate comparison.
struct DiffRow {
    key: String,
    metric: String,
    a: f64,
    b: f64,
    rel: f64,
}

/// Symmetric relative difference: `|a-b| / max(|a|,|b|)`; 0 when equal.
fn relative_difference(a: f64, b: f64) -> f64 {
    if a == b {
        return 0.0;
    }
    let scale = a.abs().max(b.abs());
    if scale == 0.0 {
        0.0
    } else {
        (a - b).abs() / scale
    }
}

/// Compares two extracted series sets over the union of keys. A series
/// present on only one side diffs as infinite — a missing metric is a
/// regression, not a skip.
fn diff_metric_values(a: &[MetricSeries], b: &[MetricSeries]) -> Vec<DiffRow> {
    use std::collections::BTreeMap;
    let index = |series: &[MetricSeries]| -> BTreeMap<String, (String, f64)> {
        series
            .iter()
            .map(|m| (m.key.clone(), (m.metric.clone(), m.value)))
            .collect()
    };
    let left = index(a);
    let right = index(b);
    let mut keys: Vec<String> = left.keys().chain(right.keys()).cloned().collect();
    keys.sort();
    keys.dedup();
    keys.into_iter()
        .map(|key| {
            let l = left.get(&key);
            let r = right.get(&key);
            let metric = l.or(r).map(|(m, _)| m.clone()).unwrap_or_default();
            let (a, b, rel) = match (l, r) {
                (Some((_, a)), Some((_, b))) => (*a, *b, relative_difference(*a, *b)),
                (Some((_, a)), None) => (*a, f64::NAN, f64::INFINITY),
                (None, Some((_, b))) => (f64::NAN, *b, f64::INFINITY),
                (None, None) => unreachable!("key came from one of the maps"),
            };
            DiffRow {
                key,
                metric,
                a,
                b,
                rel,
            }
        })
        .collect()
}

/// Runs the named policy against the selected observation substrate via
/// the unified [`ControlPolicy`] surface; returns the outcome, the
/// post-run policy (for introspection: stats, template export) and the
/// CPU capacity of the sensed host (for utilisation summaries). When a
/// `registry` is given, the policy and substrate register their
/// instruments into it (decision-inert).
#[allow(clippy::too_many_arguments)]
fn run_policy_by_name(
    scenario: &Scenario,
    policy: &str,
    config: &ControllerConfig,
    source_spec: &SourceSpec,
    seed: u64,
    ticks: u64,
    registry: Option<&MetricsRegistry>,
    introspection: Option<&RunIntrospection>,
) -> Result<(RunOutcome, Box<dyn ControlPolicy>, f64), String> {
    let spec = PolicySpec::parse(policy).map_err(|e| e.to_string())?;
    let mut source = source_spec
        .build_instrumented(
            scenario,
            seed,
            registry,
            introspection.map(|intro| &intro.recorder),
        )
        .map_err(|e| e.to_string())?;
    let host_spec = source.meta().host.unwrap_or_else(|| *scenario.host_spec());
    let mut obs = match registry {
        Some(registry) => Observability::enabled(registry.clone()),
        None => Observability::disabled(),
    };
    if let Some(intro) = introspection {
        obs = obs
            .with_recorder(intro.recorder.clone())
            .with_state(intro.state.clone());
    }
    let mut policy = spec
        .build_observed(config, &host_spec, obs)
        .map_err(|e| e.to_string())?;
    let out = drive(source.as_mut(), policy.as_mut(), ticks).map_err(|e| e.to_string())?;
    Ok((out, policy, host_spec.cpu_cores))
}

/// Runs a workload-library scenario under one policy, keeping the
/// concrete [`WorkloadSource`] in hand so the summary can include the
/// per-request latency QoS the tick-level summary cannot see.
fn run_workload(name: &str, args: &Args) -> Result<(), String> {
    let scenario = stay_away::workload::by_name(name).map_err(|e| e.to_string())?;
    let host_spec = scenario.host;
    let registry = (args.metrics_out.is_some() || args.http.is_some()).then(MetricsRegistry::new);
    let introspection = run_introspection(args, registry.as_ref())?;
    let spec = PolicySpec::parse(args.policy_or("stay-away")).map_err(|e| e.to_string())?;
    let mut obs = match &registry {
        Some(registry) => Observability::enabled(registry.clone()),
        None => Observability::disabled(),
    };
    if let Some(intro) = &introspection {
        obs = obs
            .with_recorder(intro.recorder.clone())
            .with_state(intro.state.clone());
    }
    let mut policy = spec
        .build_observed(&args.controller_config()?, &host_spec, obs)
        .map_err(|e| e.to_string())?;
    let mut source = WorkloadSource::new(scenario, args.seed).map_err(|e| e.to_string())?;
    if let Some(registry) = &registry {
        source = source.with_metrics(registry);
    }
    if let Some(intro) = &introspection {
        source = source.with_recorder(intro.recorder.clone());
    }
    let out = drive(&mut source, policy.as_mut(), args.ticks).map_err(|e| e.to_string())?;
    let latency = source.latency();
    let totals = source.totals();
    let stats = policy.stats();
    let stats = (stats.periods > 0).then_some(&stats);
    let label = format!("workload:{name}");
    if args.json {
        let mut doc = serde_json::json!({
            "scenario": label,
            "policy": policy.name(),
            "ticks": out.timeline.len(),
            "violations": out.qos.violations,
            "satisfaction": out.qos.satisfaction(),
            "mean_qos": out.qos.mean_qos(),
            "gained_utilization": out.mean_gained_utilization(host_spec.cpu_cores),
            "batch_work": out.batch_work,
            "latency": serde_json::json!({
                "p50_ms": latency.quantile_ms(0.50),
                "p95_ms": latency.quantile_ms(0.95),
                "p99_ms": latency.quantile_ms(0.99),
                "mean_ms": latency.mean_ms(),
                "slo_violation_rate": totals.slo_violation_rate(),
                "requests": totals.arrivals,
                "completed": totals.completed,
                "dropped": totals.dropped,
                "cold_starts": totals.cold_starts,
                "evictions": totals.evictions,
            }),
        });
        if let (Some(stats), serde_json::Value::Object(pairs)) = (stats, &mut doc) {
            pairs.push(("controller".to_string(), serde_json::to_value(stats)));
        }
        println!("{}", serde_json::to_string_pretty(&doc).expect("json"));
    } else {
        summarize(
            policy.name(),
            &label,
            host_spec.cpu_cores,
            &out,
            stats,
            false,
        );
        println!(
            "latency: p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms  slo-violation {:.2}%",
            latency.quantile_ms(0.50),
            latency.quantile_ms(0.95),
            latency.quantile_ms(0.99),
            100.0 * totals.slo_violation_rate(),
        );
        println!(
            "requests: {} arrived, {} completed, {} dropped, {} cold starts, {} evictions",
            totals.arrivals, totals.completed, totals.dropped, totals.cold_starts, totals.evictions,
        );
    }
    if let (Some(path), Some(registry)) = (&args.metrics_out, &registry) {
        write_metrics(&registry.snapshot(), path)?;
    }
    finish_introspection(args, introspection)?;
    Ok(())
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "-h" || argv[0] == "help" {
        print!("{USAGE}");
        return;
    }
    if let Err(e) = run(&argv) {
        eprintln!("error: {e}");
        eprint!("{USAGE}");
        std::process::exit(2);
    }
}

fn fleet_summary(outcome: &stay_away::fleet::FleetOutcome) {
    println!(
        "fleet: {} cells x {} ticks, seed {}, template sharing {}",
        outcome.cells,
        outcome.ticks_per_cell,
        outcome.fleet_seed,
        if outcome.share_templates { "on" } else { "off" },
    );
    println!(
        "qos: {} violations / {} active ticks ({:.1}% satisfaction), worst {:.3}",
        outcome.qos.violations,
        outcome.qos.active_ticks,
        100.0 * outcome.satisfaction(),
        outcome.qos.worst,
    );
    println!(
        "utilization: mean {:.1}%, gained from batch {:.1}%, total batch work {:.0}",
        100.0 * outcome.mean_utilization,
        100.0 * outcome.mean_gained_utilization,
        outcome.total_batch_work,
    );
    println!(
        "control: {} throttles, {} resumes, prediction accuracy {}, {} samples rejected, {} log events dropped",
        outcome.throttles,
        outcome.resumes,
        format_accuracy(outcome.prediction_accuracy()),
        outcome.samples_rejected,
        outcome.events_dropped,
    );
    println!(
        "templates: {} cells imported, {} proactive first throttles",
        outcome.cells_imported, outcome.proactive_first_throttles,
    );
    if outcome.per_policy.len() > 1 {
        for r in &outcome.per_policy {
            println!(
                "  {:<16} {} cells  satisfaction {:>5.1}%  gained util {:>5.1}%  {} throttles / {} resumes  {} log events dropped",
                r.policy,
                r.cells,
                100.0 * r.satisfaction(),
                100.0 * r.mean_gained_utilization,
                r.throttles,
                r.resumes,
                r.events_dropped,
            );
        }
    }
    if outcome.per_predictor.len() > 1 {
        for r in &outcome.per_predictor {
            println!(
                "  predictor {:<10} {} cells  satisfaction {:>5.1}%  slo-viol {:>5.2}%  accuracy {:>6}  {} samples rejected",
                r.predictor,
                r.cells,
                100.0 * r.satisfaction(),
                100.0 * r.slo_violation_rate(),
                format_accuracy(r.prediction_accuracy()),
                r.samples_rejected,
            );
        }
    }
}

fn tournament_summary(outcome: &TournamentOutcome) {
    println!(
        "tournament: {} predictors x {} scenarios x {} cells/combo = {} cells, {} ticks each, seed {}",
        outcome.predictors.len(),
        outcome.scenarios.len(),
        outcome.cells_per_combo,
        outcome.cells,
        outcome.ticks,
        outcome.seed,
    );
    println!(
        "scenarios: {} ({} bootstrap resamples per interval)",
        outcome.scenarios.join(", "),
        outcome.bootstrap_resamples,
    );
    println!(
        "{:<5} {:<10} {:>5} {:>24} {:>22} {:>10} {:>8} {:>8} {:>9}",
        "rank",
        "predictor",
        "cells",
        "satisfaction [95% ci]",
        "slo-viol [95% ci]",
        "batch",
        "accuracy",
        "rejected",
        "decide",
    );
    for s in &outcome.standings {
        println!(
            "{:<5} {:<10} {:>5} {:>7.1}% [{:>4.1}, {:>5.1}] {:>6.2}% [{:>4.2}, {:>5.2}] {:>10.0} {:>8} {:>8} {:>9}",
            s.rank,
            s.predictor,
            s.cells,
            100.0 * s.satisfaction.mean,
            100.0 * s.satisfaction.lo,
            100.0 * s.satisfaction.hi,
            100.0 * s.slo_violation_rate.mean,
            100.0 * s.slo_violation_rate.lo,
            100.0 * s.slo_violation_rate.hi,
            s.batch_work.mean,
            format_accuracy(s.prediction_accuracy),
            s.samples_rejected,
            match s.decide_nanos {
                Some(nanos) => format!("{:.1}µs", nanos / 1_000.0),
                None => "n/a".to_string(),
            },
        );
    }
    println!("per-scenario satisfaction:");
    for s in &outcome.standings {
        let row: Vec<String> = s
            .per_scenario
            .iter()
            .map(|sc| format!("{} {:>5.1}%", sc.scenario, 100.0 * sc.satisfaction))
            .collect();
        println!("  {:<10} {}", s.predictor, row.join("  "));
    }
}

fn cluster_summary(outcome: &ClusterOutcome) {
    println!(
        "cluster: {} ({} hosts, {} jobs), {} epochs x {} ticks, seed {}",
        outcome.scenario,
        outcome.per_host.len(),
        outcome.per_job.len(),
        outcome.epochs,
        outcome.ticks_per_epoch,
        outcome.seed,
    );
    println!(
        "placement: {} above per-host {}, migration {}",
        outcome.cluster_policy,
        outcome.host_policy,
        if outcome.migration { "on" } else { "off" },
    );
    println!(
        "qos: {} violations / {} active ticks ({:.1}% satisfaction), pooled slo-violation {:.2}%",
        outcome.qos.violations,
        outcome.qos.active_ticks,
        100.0 * outcome.satisfaction(),
        100.0 * outcome.slo_violation_rate,
    );
    println!(
        "utilization: mean {:.1}%, gained from batch {:.1}%, total batch work {:.0}",
        100.0 * outcome.mean_utilization,
        100.0 * outcome.mean_gained_utilization,
        outcome.total_batch_work,
    );
    println!(
        "scheduling: {} admissions, {} migrations, {} deferrals, {} queue actions \
         (max depth {}, mean {:.2}), {} invalid, {} jobs unfinished",
        outcome.admissions,
        outcome.migrations,
        outcome.deferrals,
        outcome.queue_actions,
        outcome.max_queue_depth,
        outcome.mean_queue_depth,
        outcome.invalid_actions,
        outcome.jobs_unfinished,
    );
    println!(
        "control: {} throttles, {} resumes, prediction accuracy {}, {} samples rejected, {} log events dropped",
        outcome.throttles,
        outcome.resumes,
        format_accuracy(outcome.prediction_accuracy()),
        outcome.samples_rejected,
        outcome.events_dropped,
    );
    for h in &outcome.per_host {
        println!(
            "  host {:<12} satisfaction {:>5.1}%  slo-viol {:>5.2}%  batch work {:>6.0}  \
             {} throttles  jobs {:?}",
            h.name,
            100.0 * h.qos.satisfaction(),
            100.0 * h.slo_violation_rate,
            h.batch_work,
            h.throttles,
            h.jobs_hosted,
        );
    }
    for j in &outcome.per_job {
        println!(
            "  job  {:<14} {:>6} requests  hosts {:?}  {} migrations  {} queued epochs{}",
            j.name,
            j.generated,
            j.placements,
            j.migrations,
            j.queued_epochs,
            if j.departed { "  (departed)" } else { "" },
        );
    }
}

/// Runs one cluster configuration; the compare table and the single-run
/// path share this builder so they measure exactly the same experiment.
fn run_cluster_policy(args: &Args, policy: ClusterPolicySpec) -> Result<ClusterOutcome, String> {
    let name = args.cluster_scenario.as_deref().unwrap_or("hotspot");
    let scenario = cluster_by_name(name).map_err(|e| e.to_string())?;
    let mut config = ClusterConfig::new(scenario, args.seed);
    config.epochs = args.epochs;
    config.ticks_per_epoch = args.epoch_ticks;
    config.workers = args.workers.max(1);
    config.cluster_policy = policy;
    config.host_policy =
        PolicySpec::parse(args.policy_or("stay-away")).map_err(|e| e.to_string())?;
    config.migration = !args.no_migration;
    config.collect_metrics = args.metrics_out.is_some() || args.http.is_some();
    config.collect_events =
        args.events_out.is_some() || args.http.is_some() || args.command == "events";
    let cluster = Cluster::new(config).map_err(|e| e.to_string())?;
    cluster.run().map_err(|e| e.to_string())
}

fn run(argv: &[String]) -> Result<(), String> {
    let args = parse_args(argv)?;
    let scenario_name = args.scenario.clone().unwrap_or(DEFAULT_SCENARIO.into());
    match args.command.as_str() {
        "list" => {
            println!("sensitive applications: vlc, web-cpu, web-mem, web-mix");
            println!(
                "batch applications:     {}",
                BatchKind::ALL.map(|k| k.name()).join(", ")
            );
            println!("policies:               stayaway, reactive, static, always, null");
            println!(
                "predictors:             {}",
                PredictorSpec::all()
                    .iter()
                    .map(|p| p.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            println!("workload scenarios:     see `stayaway scenarios`");
            for c in cluster_library() {
                println!("cluster scenario:       {:<14} {}", c.name, c.description);
            }
            println!(
                "cluster policies:       {}",
                ClusterPolicySpec::all().map(|p| p.name()).join(", ")
            );
            Ok(())
        }
        "scenarios" => {
            let library = stay_away::workload::library();
            if args.json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&library).expect("scenario json")
                );
                return Ok(());
            }
            for scenario in &library {
                println!("{:<20} {}", scenario.name, scenario.description);
                println!(
                    "{:20} slo: {} ms deadline, {:.0}% of a tick's requests",
                    "",
                    scenario.slo.deadline_ms,
                    100.0 * scenario.slo.target_satisfaction,
                );
                for tenant in &scenario.tenants {
                    println!(
                        "{:20} {:<9} {:<12} {}",
                        "",
                        tenant.class.to_string(),
                        tenant.name,
                        tenant.arrival.summary(),
                    );
                }
                println!(
                    "{:20} co-runners: {}",
                    "",
                    match scenario.co_runners().join(", ") {
                        ref s if s.is_empty() => "none".to_string(),
                        s => s,
                    },
                );
            }
            Ok(())
        }
        "bench-scenarios" => {
            let policies = PolicySpec::parse_list(args.policy_or("stayaway,reactive,null"))
                .map_err(|e| e.to_string())?;
            let mut table = BenchTable::default();
            for scenario in stay_away::workload::library() {
                for spec in &policies {
                    let mut policy = spec
                        .build(&ControllerConfig::default(), &scenario.host)
                        .map_err(|e| e.to_string())?;
                    let row = bench_scenario(&scenario, policy.as_mut(), args.seed, args.ticks)
                        .map_err(|e| e.to_string())?;
                    table.rows.push(row);
                }
            }
            if args.json {
                println!("{}", table.to_json().map_err(|e| e.to_string())?);
            } else {
                print!("{}", table.render());
            }
            Ok(())
        }
        "run" => {
            let source = SourceSpec::parse(&args.source).map_err(|e| e.to_string())?;
            // Workload runs bypass the `<sensitive>+<batch>` scenario
            // machinery: the named library scenario IS the workload, and
            // the concrete source exposes per-request latency QoS.
            if let SourceSpec::Workload { scenario } = &source {
                return run_workload(scenario, &args);
            }
            let scenario = parse_scenario(&scenario_name, args.seed)?;
            // `--http` wants a live registry behind `/metrics` even when
            // no snapshot export was requested.
            let registry =
                (args.metrics_out.is_some() || args.http.is_some()).then(MetricsRegistry::new);
            let introspection = run_introspection(&args, registry.as_ref())?;
            let (out, policy, cap) = run_policy_by_name(
                &scenario,
                args.policy_or("stay-away"),
                &args.controller_config()?,
                &source,
                args.seed,
                args.ticks,
                registry.as_ref(),
                introspection.as_ref(),
            )?;
            let stats = policy.stats();
            // Baselines track nothing; only show controller internals when
            // the policy actually counted its periods.
            let stats = (stats.periods > 0).then_some(&stats);
            summarize(policy.name(), scenario.name(), cap, &out, stats, args.json);
            if let (Some(path), Some(registry)) = (&args.metrics_out, &registry) {
                write_metrics(&registry.snapshot(), path)?;
            }
            finish_introspection(&args, introspection)?;
            Ok(())
        }
        "metrics" => {
            let scenario = parse_scenario(&scenario_name, args.seed)?;
            let source = SourceSpec::parse(&args.source).map_err(|e| e.to_string())?;
            let registry = MetricsRegistry::new();
            run_policy_by_name(
                &scenario,
                args.policy_or("stay-away"),
                &args.controller_config()?,
                &source,
                args.seed,
                args.ticks,
                Some(&registry),
                None,
            )?;
            let snapshot = registry.snapshot();
            match &args.metrics_out {
                Some(path) => write_metrics(&snapshot, path)?,
                // Default exposition: JSON with --json, Prometheus text
                // otherwise, both to stdout.
                None if args.json => println!(
                    "{}",
                    serde_json::to_string_pretty(&to_json(&snapshot)).expect("metrics json")
                ),
                None => print!("{}", to_prometheus(&snapshot)),
            }
            Ok(())
        }
        "compare" => {
            let scenario = parse_scenario(&scenario_name, args.seed)?;
            let source = SourceSpec::parse(&args.source).map_err(|e| e.to_string())?;
            println!(
                "scenario: {} ({} ticks, seed {}, source {})\n",
                scenario.name(),
                args.ticks,
                args.seed,
                source.name(),
            );
            let config = args.controller_config()?;
            for policy in ["null", "always", "reactive", "static", "stayaway"] {
                let (out, built, cap) = run_policy_by_name(
                    &scenario, policy, &config, &source, args.seed, args.ticks, None, None,
                )?;
                summarize(built.name(), scenario.name(), cap, &out, None, args.json);
            }
            Ok(())
        }
        "capture" => {
            let scenario = parse_scenario(&scenario_name, args.seed)?;
            let (out, policy, cap) = run_policy_by_name(
                &scenario,
                "stay-away",
                &args.controller_config()?,
                &SourceSpec::Sim,
                args.seed,
                args.ticks,
                None,
                None,
            )?;
            let sens_name = scenario_name.split('+').next().unwrap_or("sensitive");
            let template = policy
                .export_template(sens_name)
                .map_err(|e| e.to_string())?
                .ok_or("the selected policy does not learn templates")?;
            let path = args.out.unwrap_or_else(|| "template.json".into());
            template.save_to_path(&path).map_err(|e| e.to_string())?;
            summarize("stay-away", scenario.name(), cap, &out, None, args.json);
            println!(
                "template with {} states ({} violation) written to {path}",
                template.len(),
                template.violation_count()
            );
            Ok(())
        }
        "reuse" => {
            let config = args.controller_config()?;
            let path = args.template.ok_or("reuse requires --template <path>")?;
            let template = Template::load_from_path(&path).map_err(|e| e.to_string())?;
            let scenario = parse_scenario(&scenario_name, args.seed)?;
            let mut harness = scenario.build_harness().map_err(|e| e.to_string())?;
            let mut policy = PolicySpec::StayAway
                .build(&config, harness.host().spec())
                .map_err(|e| e.to_string())?;
            policy
                .import_template(&template)
                .map_err(|e| e.to_string())?;
            let out = harness.run(policy.as_mut(), args.ticks);
            println!(
                "seeded with {} template states ({} violation) from {path}",
                template.len(),
                template.violation_count()
            );
            summarize(
                "stay-away+tpl",
                scenario.name(),
                scenario.host_spec().cpu_cores,
                &out,
                None,
                args.json,
            );
            Ok(())
        }
        "record" => {
            let scenario = parse_scenario(&scenario_name, args.seed)?;
            let spec = PolicySpec::parse(args.policy_or("stay-away")).map_err(|e| e.to_string())?;
            let harness = scenario.build_harness().map_err(|e| e.to_string())?;
            let host_spec = *harness.host().spec();
            let mut policy = spec
                .build(&args.controller_config()?, &host_spec)
                .map_err(|e| e.to_string())?;
            let path = args.out.unwrap_or_else(|| "trace.jsonl".into());
            let file = std::fs::File::create(&path).map_err(|e| e.to_string())?;
            let mut recorder =
                RecordingSource::new(SimSource::new(harness), std::io::BufWriter::new(file))
                    .map_err(|e| e.to_string())?;
            let out =
                drive(&mut recorder, policy.as_mut(), args.ticks).map_err(|e| e.to_string())?;
            recorder.finish().map_err(|e| e.to_string())?;
            summarize(
                policy.name(),
                scenario.name(),
                host_spec.cpu_cores,
                &out,
                None,
                args.json,
            );
            println!(
                "trace with {} observations written to {path}",
                out.timeline.len()
            );
            Ok(())
        }
        "replay" => {
            let path = args.trace.clone().ok_or("replay requires --trace <path>")?;
            let mut source = TraceSource::open(&path).map_err(|e| e.to_string())?;
            let recorded_from = source.header().recorded_from;
            // The controller runs against the capacities the trace was
            // recorded on; traces without a host spec get the defaults.
            let host_spec = source.header().host.unwrap_or_default();
            let spec = PolicySpec::parse(args.policy_or("stay-away")).map_err(|e| e.to_string())?;
            let mut policy = spec
                .build(&args.controller_config()?, &host_spec)
                .map_err(|e| e.to_string())?;
            let out = drive(&mut source, policy.as_mut(), args.ticks).map_err(|e| e.to_string())?;
            println!(
                "replayed {} observations from {path} (recorded from {recorded_from})",
                out.timeline.len(),
            );
            let stats = policy.stats();
            let stats = (stats.periods > 0).then_some(&stats);
            summarize(
                policy.name(),
                &format!("replay:{path}"),
                host_spec.cpu_cores,
                &out,
                stats,
                args.json,
            );
            Ok(())
        }
        "fleet" => {
            let scenarios = match &args.scenario {
                Some(name) => vec![parse_scenario(name, args.seed)?],
                None => FleetConfig::standard_mix(args.seed),
            };
            let policies =
                PolicySpec::parse_list(args.policy_or("stay-away")).map_err(|e| e.to_string())?;
            let predictors = PredictorSpec::parse_list(args.predictor.as_deref().unwrap_or("kde"))
                .map_err(|e| e.to_string())?;
            let sources = SourceSpec::parse_list(&args.source).map_err(|e| e.to_string())?;
            let config = FleetConfig {
                cells: args.cells.unwrap_or(8),
                workers: args.workers,
                ticks: args.ticks,
                fleet_seed: args.seed,
                share_templates: args.share_templates,
                scenarios,
                policies,
                predictors,
                sources,
                controller: ControllerConfig::default(),
                collect_metrics: args.metrics_out.is_some() || args.http.is_some(),
                collect_events: args.events_out.is_some() || args.http.is_some(),
                mapping_workers: 1,
            };
            let fleet = Fleet::new(config).map_err(|e| e.to_string())?;
            let outcome = fleet.run().map_err(|e| e.to_string())?;
            if args.json {
                println!("{}", outcome.to_json().map_err(|e| e.to_string())?);
            } else {
                fleet_summary(&outcome);
            }
            if let Some(path) = &args.metrics_out {
                let rollup = outcome
                    .metrics
                    .as_ref()
                    .ok_or("fleet produced no metrics rollup")?;
                write_metrics(rollup, path)?;
            }
            if let Some(path) = &args.events_out {
                let events = outcome
                    .events
                    .as_ref()
                    .ok_or("fleet produced no event stream")?;
                write_events(events, path)?;
            }
            serve_outcome_http(
                &args,
                outcome.metrics.as_ref(),
                outcome.events.clone(),
                fleet_state_json(&outcome),
            )?;
            Ok(())
        }
        "tournament" => {
            let mut config = TournamentConfig::new(args.seed);
            if let Some(tokens) = &args.predictor {
                config.predictors = PredictorSpec::parse_list(tokens).map_err(|e| e.to_string())?;
            }
            if let Some(names) = &args.scenario {
                config.scenarios = names
                    .split(',')
                    .map(str::trim)
                    .filter(|t| !t.is_empty())
                    .map(String::from)
                    .collect();
            }
            config.cells_per_combo = args.cells.unwrap_or(3);
            config.ticks = args.ticks;
            config.workers = args.workers.max(1);
            config.bootstrap_resamples = args.resamples;
            // Latency calibration is wall-clock and text-only; JSON output
            // is the deterministic contract, so skip the extra runs there.
            config.calibrate_latency = !args.json;
            config.collect_metrics = args.metrics_out.is_some();
            let outcome = run_tournament(&config).map_err(|e| e.to_string())?;
            if args.json {
                println!("{}", outcome.to_json().map_err(|e| e.to_string())?);
            } else {
                tournament_summary(&outcome);
            }
            if let Some(path) = &args.metrics_out {
                let rollup = outcome
                    .metrics
                    .as_ref()
                    .ok_or("tournament produced no metrics rollup")?;
                write_metrics(rollup, path)?;
            }
            Ok(())
        }
        "cluster" => {
            if args.compare {
                let reference = run_cluster_policy(&args, ClusterPolicySpec::NoPlacement)?;
                println!(
                    "cluster comparison: {} ({} epochs x {} ticks, seed {}, host policy {}, migration {})\n",
                    reference.scenario,
                    reference.epochs,
                    reference.ticks_per_epoch,
                    reference.seed,
                    reference.host_policy,
                    if !args.no_migration { "on" } else { "off" },
                );
                println!(
                    "{:<14} {:>10} {:>9} {:>8} {:>7} {:>6} {:>6} {:>7} {:>11}",
                    "policy",
                    "batch-work",
                    "slo-viol",
                    "satisf",
                    "admits",
                    "migr",
                    "defer",
                    "queued",
                    "log-dropped",
                );
                for spec in ClusterPolicySpec::all() {
                    let out = if spec == ClusterPolicySpec::NoPlacement {
                        reference.clone()
                    } else {
                        run_cluster_policy(&args, spec)?
                    };
                    println!(
                        "{:<14} {:>10.0} {:>8.2}% {:>7.1}% {:>7} {:>6} {:>6} {:>7} {:>11}",
                        out.cluster_policy,
                        out.total_batch_work,
                        100.0 * out.slo_violation_rate,
                        100.0 * out.satisfaction(),
                        out.admissions,
                        out.migrations,
                        out.deferrals,
                        out.queue_actions,
                        out.events_dropped,
                    );
                }
                return Ok(());
            }
            let policy =
                ClusterPolicySpec::parse(args.cluster_policy.as_deref().unwrap_or("score"))
                    .map_err(|e| e.to_string())?;
            let outcome = run_cluster_policy(&args, policy)?;
            if args.json {
                println!("{}", outcome.to_json().map_err(|e| e.to_string())?);
            } else {
                cluster_summary(&outcome);
            }
            if let Some(path) = &args.metrics_out {
                let rollup = outcome
                    .metrics
                    .as_ref()
                    .ok_or("cluster produced no metrics rollup")?;
                write_metrics(rollup, path)?;
            }
            if let Some(path) = &args.events_out {
                let events = outcome
                    .events
                    .as_ref()
                    .ok_or("cluster produced no event stream")?;
                write_events(events, path)?;
            }
            serve_outcome_http(
                &args,
                outcome.metrics.as_ref(),
                outcome.events.clone(),
                cluster_state_json(&outcome),
            )?;
            Ok(())
        }
        "events" => {
            let events = load_or_record_events(&args)?;
            if let Some(token) = &args.cause {
                let id = EventId::parse(token).map_err(|e| e.to_string())?;
                return print_causal_chain(&events, id);
            }
            let kind = args
                .kind
                .as_deref()
                .map(EventKind::parse)
                .transpose()
                .map_err(|e| e.to_string())?;
            let filtered: Vec<EventRecord> = events
                .into_iter()
                .filter(|e| kind.is_none_or(|k| e.kind == k))
                .filter(|e| args.host.is_none_or(|scope| e.scope == scope))
                .filter(|e| args.tick_from.is_none_or(|from| e.tick >= from))
                .filter(|e| args.tick_to.is_none_or(|to| e.tick <= to))
                .collect();
            if let Some(path) = &args.events_out {
                write_events(&filtered, path)?;
            } else if args.json {
                print!("{}", events_to_jsonl(&filtered));
            } else {
                for event in &filtered {
                    println!("{}", render_event(event));
                }
                println!("{} events", filtered.len());
            }
            Ok(())
        }
        "metrics-diff" => {
            let [a_path, b_path] = args.positional.as_slice() else {
                return Err(
                    "metrics-diff expects exactly two snapshot paths (from --metrics-out *.json)"
                        .into(),
                );
            };
            let rows =
                diff_metric_values(&load_metric_values(a_path)?, &load_metric_values(b_path)?);
            let mut failures = 0usize;
            for row in &rows {
                let tolerance = args
                    .threshold_for
                    .iter()
                    .find(|(name, _)| *name == row.metric)
                    .map(|(_, tol)| *tol)
                    .unwrap_or(args.threshold);
                if row.rel > tolerance {
                    failures += 1;
                    println!(
                        "FAIL {:<44} a={} b={} rel={:.6} tolerance={}",
                        row.key, row.a, row.b, row.rel, tolerance
                    );
                }
            }
            println!(
                "metrics-diff: {} series compared, {} beyond tolerance",
                rows.len(),
                failures
            );
            if failures > 0 {
                // A plain exit keeps CI semantics crisp: nonzero means
                // the gate tripped, stderr stays free for real errors.
                std::process::exit(1);
            }
            Ok(())
        }
        "promlint" => {
            let path = args.positional.first().map(String::as_str).unwrap_or("-");
            let text = read_text_input(path)?;
            match promlint::validate(&text) {
                Ok(()) => {
                    println!("{path}: exposition lints clean");
                    Ok(())
                }
                Err(errors) => {
                    for error in &errors {
                        println!("{path}: {error}");
                    }
                    std::process::exit(1);
                }
            }
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_introspection_flags() {
        let a = parse_args(&argv(
            "run --http 127.0.0.1:0 --http-linger 2 --events-out ev.jsonl --metrics-out m.json",
        ))
        .unwrap();
        assert_eq!(a.http.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(a.http_linger, 2);
        assert_eq!(a.events_out.as_deref(), Some("ev.jsonl"));
        assert_eq!(a.metrics_out.as_deref(), Some("m.json"));
    }

    #[test]
    fn parses_events_filters_and_diff_positionals() {
        let a = parse_args(&argv(
            "events --events-in ev.jsonl --kind migrate --host 2 --tick-from 10 --tick-to 20 --cause 2:17",
        ))
        .unwrap();
        assert_eq!(a.events_in.as_deref(), Some("ev.jsonl"));
        assert_eq!(a.kind.as_deref(), Some("migrate"));
        assert_eq!(a.host, Some(2));
        assert_eq!(a.tick_from, Some(10));
        assert_eq!(a.tick_to, Some(20));
        assert_eq!(a.cause.as_deref(), Some("2:17"));
        let d = parse_args(&argv(
            "metrics-diff a.json b.json --threshold 0.05 --threshold-for stayaway_throttles_total=0.2",
        ))
        .unwrap();
        assert_eq!(
            d.positional,
            vec!["a.json".to_string(), "b.json".to_string()]
        );
        assert_eq!(d.threshold, 0.05);
        assert_eq!(
            d.threshold_for,
            vec![("stayaway_throttles_total".to_string(), 0.2)]
        );
        assert!(parse_args(&argv("metrics-diff a b --threshold-for nope")).is_err());
    }

    #[test]
    fn metrics_diff_flags_missing_and_changed_series() {
        let series = |key: &str, value: f64| MetricSeries {
            key: key.into(),
            metric: key.into(),
            value,
        };
        let a = vec![series("x_total", 10.0), series("only_a", 1.0)];
        let b = vec![series("x_total", 11.0)];
        let rows = diff_metric_values(&a, &b);
        assert_eq!(rows.len(), 2);
        let only = rows.iter().find(|r| r.key == "only_a").unwrap();
        assert!(
            only.rel.is_infinite(),
            "a vanished series must trip any gate"
        );
        let x = rows.iter().find(|r| r.key == "x_total").unwrap();
        assert!((x.rel - 1.0 / 11.0).abs() < 1e-12);
        assert!(diff_metric_values(&[], &[]).is_empty());
    }

    #[test]
    fn wall_clock_series_are_excluded_from_the_gate() {
        assert!(is_wall_clock("stayaway_controller_stage_nanos", None));
        assert!(is_wall_clock("anything", Some("nanos")));
        assert!(!is_wall_clock("stayaway_throttles_total", None));
        assert_eq!(relative_difference(0.0, 0.0), 0.0);
        assert_eq!(relative_difference(2.0, 1.0), 0.5);
    }

    #[test]
    fn parses_full_flag_set() {
        let a = parse_args(&argv(
            "run --scenario web-mem+soplex --policy reactive --ticks 100 --seed 3 --json",
        ))
        .unwrap();
        assert_eq!(a.command, "run");
        assert_eq!(a.scenario.as_deref(), Some("web-mem+soplex"));
        assert_eq!(a.policy.as_deref(), Some("reactive"));
        assert_eq!(a.ticks, 100);
        assert_eq!(a.seed, 3);
        assert!(a.json);
    }

    #[test]
    fn parses_fleet_flags() {
        let a = parse_args(&argv(
            "fleet --cells 64 --workers 4 --seed 7 --share-templates --json",
        ))
        .unwrap();
        assert_eq!(a.command, "fleet");
        assert_eq!(a.cells, Some(64));
        assert_eq!(a.workers, 4);
        assert_eq!(a.seed, 7);
        assert!(a.share_templates);
        assert!(a.json);
        // No --scenario means the fleet runs its standard mix.
        assert_eq!(a.scenario, None);
    }

    #[test]
    fn fleet_defaults_are_modest() {
        let a = parse_args(&argv("fleet")).unwrap();
        // No --cells on the command line: the fleet defaults to 8, the
        // tournament to 3 per combination.
        assert_eq!(a.cells, None);
        assert_eq!(a.workers, 1);
        assert!(!a.share_templates);
        assert_eq!(a.predictor, None);
        assert_eq!(a.resamples, 1000);
    }

    #[test]
    fn parses_predictor_and_tournament_flags() {
        let a = parse_args(&argv(
            "tournament --predictor kde,xapp --scenario cpu-bomb,flash-crowd \
             --cells 2 --resamples 250 --workers 4 --json",
        ))
        .unwrap();
        assert_eq!(a.command, "tournament");
        assert_eq!(a.predictor.as_deref(), Some("kde,xapp"));
        assert_eq!(a.scenario.as_deref(), Some("cpu-bomb,flash-crowd"));
        assert_eq!(a.cells, Some(2));
        assert_eq!(a.resamples, 250);
        assert!(a.json);
        let specs = PredictorSpec::parse_list(a.predictor.as_deref().unwrap()).unwrap();
        assert_eq!(specs.len(), 2);
        // A single --predictor flows into the controller configuration.
        let a = parse_args(&argv("run --predictor last-tick")).unwrap();
        let config = a.controller_config().unwrap();
        assert_eq!(
            config.predictor,
            PredictorSpec::parse("last-tick").unwrap().kind()
        );
        assert!(parse_args(&argv("run --predictor")).is_err());
        assert!(parse_args(&argv("tournament --resamples abc")).is_err());
        assert!(Args {
            predictor: Some("warp-core".into()),
            ..a
        }
        .controller_config()
        .is_err());
    }

    #[test]
    fn rejects_unknown_flags_and_bad_values() {
        assert!(parse_args(&argv("run --bogus 1")).is_err());
        assert!(parse_args(&argv("run --ticks abc")).is_err());
        assert!(parse_args(&argv("run --scenario")).is_err());
        assert!(parse_args(&argv("fleet --cells abc")).is_err());
        assert!(parse_args(&argv("fleet --workers")).is_err());
        assert!(parse_args(&argv("replay --trace")).is_err());
        assert!(parse_args(&[]).is_err());
    }

    #[test]
    fn parses_cluster_flags() {
        let a = parse_args(&argv(
            "cluster --cluster-scenario storm-cluster --cluster-policy least-loaded \
             --epochs 12 --epoch-ticks 4 --workers 4 --no-migration --json",
        ))
        .unwrap();
        assert_eq!(a.command, "cluster");
        assert_eq!(a.cluster_scenario.as_deref(), Some("storm-cluster"));
        assert_eq!(a.cluster_policy.as_deref(), Some("least-loaded"));
        assert_eq!(a.epochs, 12);
        assert_eq!(a.epoch_ticks, 4);
        assert_eq!(a.workers, 4);
        assert!(a.no_migration);
        assert!(!a.compare);
        assert!(a.json);
        let a = parse_args(&argv("cluster --compare")).unwrap();
        assert!(a.compare);
        // Defaults when nothing is given: the library's standard shape.
        assert_eq!(a.cluster_scenario, None);
        assert_eq!(a.cluster_policy, None);
        assert_eq!(a.epochs, 24);
        assert_eq!(a.epoch_ticks, 8);
        assert!(!a.no_migration);
        assert!(parse_args(&argv("cluster --epochs abc")).is_err());
        assert!(parse_args(&argv("cluster --cluster-policy")).is_err());
        assert!(ClusterPolicySpec::parse("bogus").is_err());
    }

    #[test]
    fn cluster_command_runs_through_the_cli_path() {
        // The same builder the `cluster` command uses, at smoke size.
        let mut args = parse_args(&argv("cluster --epochs 4 --epoch-ticks 2 --seed 3")).unwrap();
        let out = run_cluster_policy(&args, ClusterPolicySpec::Score).unwrap();
        assert_eq!(out.scenario, "hotspot");
        assert_eq!(out.cluster_policy, "score");
        assert_eq!(out.host_policy, "stay-away");
        assert_eq!(out.epochs, 4);
        assert_eq!(out.per_host.len(), 3);
        assert_eq!(out.per_job.len(), 4);
        // --no-migration and the host-policy override flow through too.
        args.no_migration = true;
        args.policy = Some("reactive".into());
        let out = run_cluster_policy(&args, ClusterPolicySpec::NoPlacement).unwrap();
        assert!(!out.migration);
        assert_eq!(out.migrations, 0);
        assert_eq!(out.host_policy, "reactive");
        assert!(run_cluster_policy(
            &Args {
                cluster_scenario: Some("warp-core".into()),
                ..args
            },
            ClusterPolicySpec::Score,
        )
        .is_err());
    }

    #[test]
    fn parses_source_and_trace_flags() {
        let a = parse_args(&argv("run --source trace:/tmp/t.jsonl")).unwrap();
        assert_eq!(a.source, "trace:/tmp/t.jsonl");
        assert_eq!(
            SourceSpec::parse(&a.source).unwrap(),
            SourceSpec::Trace {
                path: "/tmp/t.jsonl".into()
            }
        );
        let a = parse_args(&argv("replay --trace out.jsonl --policy reactive")).unwrap();
        assert_eq!(a.trace.as_deref(), Some("out.jsonl"));
        // The default substrate is the simulator.
        let a = parse_args(&argv("run")).unwrap();
        assert_eq!(SourceSpec::parse(&a.source).unwrap(), SourceSpec::Sim);
    }

    #[test]
    fn record_then_replay_reproduces_the_run_through_the_cli_paths() {
        // Exercise the same code paths the `record` and `replay` commands
        // use, against an in-memory trace.
        let scenario = parse_scenario("vlc+cpu-bomb", 3).unwrap();
        let harness = scenario.build_harness().unwrap();
        let host_spec = *harness.host().spec();
        let mut recorder = RecordingSource::new(SimSource::new(harness), Vec::new()).unwrap();
        let mut live = PolicySpec::StayAway
            .build(&ControllerConfig::default(), &host_spec)
            .unwrap();
        let live_out = drive(&mut recorder, live.as_mut(), 60).unwrap();
        let (_, trace) = recorder.finish().unwrap();

        let mut source = TraceSource::new(trace.as_slice()).unwrap();
        let replay_host = source.header().host.unwrap();
        assert_eq!(replay_host, host_spec);
        let mut replayed = PolicySpec::StayAway
            .build(&ControllerConfig::default(), &replay_host)
            .unwrap();
        let replay_out = drive(&mut source, replayed.as_mut(), 60).unwrap();
        assert_eq!(live_out.qos, replay_out.qos);
        assert_eq!(live.stats(), replayed.stats());
    }

    #[test]
    fn parses_all_scenario_names() {
        for sens in ["vlc", "web-cpu", "web-mem", "web-mix"] {
            for batch in BatchKind::ALL {
                let name = format!("{sens}+{batch}");
                let s = parse_scenario(&name, 1).unwrap();
                assert_eq!(s.name(), name);
            }
        }
    }

    #[test]
    fn rejects_malformed_scenarios() {
        assert!(parse_scenario("vlc", 1).is_err());
        assert!(parse_scenario("vlc+unknown", 1).is_err());
        assert!(parse_scenario("nope+soplex", 1).is_err());
    }

    #[test]
    fn run_policy_by_name_covers_all_policies() {
        let scenario = parse_scenario("vlc+soplex", 1).unwrap();
        let config = ControllerConfig::default();
        for p in ["stay-away", "none", "always", "reactive", "static", "null"] {
            let (out, policy, cap) =
                run_policy_by_name(&scenario, p, &config, &SourceSpec::Sim, 1, 30, None, None)
                    .unwrap();
            assert_eq!(out.timeline.len(), 30);
            assert_eq!(cap, scenario.host_spec().cpu_cores);
            // Only the controller counts its periods and learns templates.
            let is_stayaway = p == "stay-away";
            assert_eq!(policy.stats().periods > 0, is_stayaway);
            assert_eq!(policy.supports_templates(), is_stayaway);
        }
        assert!(run_policy_by_name(
            &scenario,
            "bogus",
            &config,
            &SourceSpec::Sim,
            1,
            10,
            None,
            None
        )
        .is_err());
    }

    #[test]
    fn policy_defaults_are_per_command() {
        let a = parse_args(&argv("run")).unwrap();
        assert_eq!(a.policy, None);
        assert_eq!(a.policy_or("stay-away"), "stay-away");
        assert_eq!(
            a.policy_or("stayaway,reactive,null"),
            "stayaway,reactive,null"
        );
        let a = parse_args(&argv("bench-scenarios --policy null")).unwrap();
        assert_eq!(a.policy_or("stayaway,reactive,null"), "null");
    }

    #[test]
    fn parses_workload_source_tokens() {
        let a = parse_args(&argv("run --source workload:cpu-bomb")).unwrap();
        assert_eq!(
            SourceSpec::parse(&a.source).unwrap(),
            SourceSpec::Workload {
                scenario: "cpu-bomb".into()
            }
        );
        assert!(SourceSpec::parse("workload:warp-core").is_err());
    }

    #[test]
    fn workload_scenarios_run_under_cli_built_policies() {
        // The bench-scenarios path: library scenario × PolicySpec-built
        // policy, closed over the workload substrate.
        let scenario = stay_away::workload::by_name("cpu-bomb").unwrap();
        for name in ["stayaway", "reactive", "null"] {
            let spec = PolicySpec::parse(name).unwrap();
            let mut policy = spec
                .build(&ControllerConfig::default(), &scenario.host)
                .unwrap();
            let row = bench_scenario(&scenario, policy.as_mut(), 7, 20).unwrap();
            assert_eq!(row.scenario, "cpu-bomb");
            assert_eq!(row.ticks, 20);
            assert!(row.requests > 0);
            assert!(row.p50_ms <= row.p95_ms && row.p95_ms <= row.p99_ms);
        }
    }

    #[test]
    fn every_library_scenario_drives_through_the_run_path() {
        // The run --source workload:<name> path builds the same concrete
        // source; make sure each library entry survives a short drive.
        for name in stay_away::workload::names() {
            let scenario = stay_away::workload::by_name(&name).unwrap();
            let mut source = WorkloadSource::new(scenario, 7).unwrap();
            let out = drive(&mut source, &mut stay_away::telemetry::NullPolicy::new(), 5).unwrap();
            assert_eq!(out.timeline.len(), 5, "{name}");
            assert!(source.totals().arrivals > 0, "{name}");
        }
    }
}
