//! # Stay-Away
//!
//! A complete Rust reproduction of *"Stay-Away, protecting sensitive
//! applications from performance interference"* (Rameshan, Navarro, Vlassov,
//! Monte — ACM/IFIP Middleware 2014).
//!
//! Stay-Away lets best-effort **batch** applications run co-located with
//! latency-**sensitive** applications. It continuously maps resource-usage
//! measurement vectors into a 2-D state space with multidimensional scaling,
//! learns which regions of that space correspond to QoS violations, predicts
//! transitions towards those regions from per-execution-mode trajectory
//! models, and proactively throttles the batch applications before the
//! violation happens.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`mds`] — MDS/SMACOF embedding, normalisation, dedup, Procrustes;
//! * [`statespace`] — mapped/safe/violation states, Rayleigh violation
//!   ranges, reusable templates;
//! * [`trajectory`] — step/angle histograms, KDE, inverse-transform
//!   sampling, per-mode predictors;
//! * [`obs`] — the observability plane: the metrics registry
//!   (counters/gauges/latency histograms), span tracing and the
//!   Prometheus/JSON exporters every other layer instruments through;
//! * [`telemetry`] — the observation plane: canonical observation types,
//!   the `ObservationSource` trait, JSONL trace record/replay and the
//!   best-effort procfs sampler;
//! * [`sim`] — the deterministic host/container simulator with synthetic
//!   applications (VLC streaming/transcoding, Webservice, Soplex,
//!   Twitter-Analysis, CPUBomb, MemoryBomb) standing in for the paper's LXC
//!   testbed;
//! * [`core`] — the Stay-Away controller (mapping → prediction → action);
//! * [`baselines`] — no-prevention / reactive / static-threshold / oracle
//!   comparison policies;
//! * [`fleet`] — the sharded multi-cell runtime: N concurrent
//!   harness+controller cells over a fixed worker pool, with deterministic
//!   per-cell seeds and a cross-host template registry;
//! * [`workload`] — the request-driven multi-tenant workload engine: a
//!   deterministic discrete-event simulator of open-loop request arrivals,
//!   container lifecycle and shared-resource contention, with a named
//!   scenario library and per-request latency QoS.
//!
//! # Quickstart
//!
//! ```
//! use stay_away::core::{Controller, ControllerConfig};
//! use stay_away::sim::scenario::Scenario;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // VLC streaming co-located with a CPU hog, driven by Stay-Away.
//! let scenario = Scenario::vlc_with_cpubomb(42);
//! let mut harness = scenario.build_harness()?;
//! let mut controller = Controller::for_host(
//!     ControllerConfig::default(),
//!     harness.host().spec(),
//! )?;
//! let outcome = harness.run(&mut controller, 300);
//! // The controller learns the contention and suppresses most violations.
//! println!(
//!     "violations: {} / {} active ticks",
//!     outcome.qos.violations, outcome.qos.active_ticks
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use stayaway_baselines as baselines;
pub use stayaway_core as core;
pub use stayaway_fleet as fleet;
pub use stayaway_mds as mds;
pub use stayaway_obs as obs;
pub use stayaway_sim as sim;
pub use stayaway_statespace as statespace;
pub use stayaway_telemetry as telemetry;
pub use stayaway_trajectory as trajectory;
pub use stayaway_workload as workload;
