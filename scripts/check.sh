#!/usr/bin/env bash
# Full local gate: formatting, lints (warnings are errors), rustdoc
# (warnings are errors), the release build, the test suite (including the
# fleet determinism suite, the parallel-mapping determinism suite at 1-8
# workers, the staged-controller golden fixture, the
# observability suites, the telemetry record→replay determinism
# suite, the workload-engine determinism suite and the cluster-plane
# determinism suite at several worker counts), a replay smoke run
# over the committed fixture trace, a metrics exposition smoke (64
# instrumented ticks, output validated by the in-tree promlint), a
# workload-scenario CLI smoke (library listing plus a short
# request-driven run), a bench-scenarios JSON smoke, a cluster CLI smoke
# (single run plus the policy comparison table), the predictor-plane and
# tournament determinism suites with a tournament CLI smoke (ranked
# table, leak-free JSON), the flight-recorder determinism suite, an
# introspection smoke (live HTTP /health /metrics /state /events,
# promlint through the CLI, event export/import, and the metrics-diff
# regression gate passing a snapshot against itself while flagging a
# perturbed-seed run), and a compile check of every criterion bench
# target. Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
cargo build --release --workspace
cargo test -q --workspace
cargo test -q -p stayaway-fleet --test determinism
# Mapping determinism: the chunk-parallel SMACOF sweep and distance-matrix
# builders must stay bit-identical to the serial reference (the property
# suite fuzzes 1-8 workers internally; the fleet test pins the 1-vs-4
# worker configuration end to end through a full fleet run).
cargo test -q -p stayaway-mds --test parallel_determinism
cargo test -q -p stayaway-fleet --test determinism mapping_workers_1_and_4_agree_bit_for_bit
cargo test -q -p stayaway-core --test golden_fixture
# Workload determinism: the request-driven engine must be a pure function
# of (scenario, seed) — bit-identical timelines and byte-identical JSON —
# and must uphold the fleet's worker-count-independence contract.
cargo test -q -p stayaway-workload --test determinism
cargo test -q -p stayaway-fleet --test determinism workload_cells_agree_across_worker_counts
# Cluster determinism: the epoch loop must render byte-identical outcome
# JSON for workers 1 vs 2/4/8 — with the migration verb exercised and
# with it disabled — and job request streams must not depend on the
# cluster policy (pinned both deterministically and by property tests
# over random cluster seeds).
cargo test -q -p stayaway-fleet --test cluster_determinism
cargo test -q -p stayaway-fleet --test cluster_seed_props
# Flight-recorder determinism: the canonical event stream must be
# byte-identical for any worker count at fleet and cluster scale,
# recording must be decision-inert, and the causal links must
# reconstruct the cluster ← host ← predictor chain from the stream alone.
cargo test -q -p stayaway-fleet --test event_determinism
# Predictor-plane determinism: the KDE reference through the Predictor
# trait must stay bit-for-bit on the pre-refactor golden fixture, every
# competitor plane must drive deterministic NaN-free runs, and the
# tournament's ranked JSON — bootstrap confidence intervals included —
# must be byte-identical for any worker count.
cargo test -q -p stayaway-core --test predictor_plane
cargo test -q -p stayaway-fleet --test tournament_determinism
cargo test -q --test record_replay
cargo test -q -p stayaway-obs
cargo test -q --test observability
# Replay smoke: the committed fixture trace must stay readable by the
# current trace codec, end to end through the CLI.
cargo run -q --release --bin stayaway -- \
    replay --trace tests/fixtures/smoke_trace.jsonl
# Metrics smoke: a short fully-instrumented run must emit a Prometheus
# exposition the in-tree promlint accepts (the observability suite runs
# promlint in-process; this exercises the CLI path end to end).
metrics_tmp="$(mktemp)"
trap 'rm -f "$metrics_tmp"' EXIT
cargo run -q --release --bin stayaway -- \
    metrics --scenario vlc+cpu-bomb --ticks 64 > "$metrics_tmp"
grep -q '^stayaway_controller_periods_total 64$' "$metrics_tmp"
grep -q '^# TYPE stayaway_controller_sense_latency_nanos histogram$' "$metrics_tmp"
# Workload smoke: the scenario library must list (and round-trip through
# JSON), and a short request-driven run must report per-request latency.
# Capture first: grep -q closes the pipe on first match, which would kill
# the producer with SIGPIPE under pipefail.
scenarios_out="$(cargo run -q --release --bin stayaway -- scenarios --json)"
grep -q '"multi-tenant-storm"' <<<"$scenarios_out"
workload_out="$(cargo run -q --release --bin stayaway -- \
    run --source workload:cpu-bomb --ticks 60)"
grep -q '^latency: p50' <<<"$workload_out"
# Bench-scenarios smoke: the scenario × policy grid must emit parseable
# JSON rows carrying the per-request QoS fields downstream tooling keys
# on (one row per scenario under the null policy keeps this fast).
bench_out="$(cargo run -q --release --bin stayaway -- \
    bench-scenarios --policy null --ticks 24 --json)"
grep -q '"scenario": "cpu-bomb"' <<<"$bench_out"
grep -q '"slo_violation_rate"' <<<"$bench_out"
grep -q '"p99_ms"' <<<"$bench_out"
# Cluster smoke: placement + admission queue + migration above per-host
# controllers, end to end through the CLI; JSON must carry the per-job
# rollups and must not leak the worker count into the document.
cluster_out="$(cargo run -q --release --bin stayaway -- \
    cluster --cluster-scenario hotspot --epochs 8 --epoch-ticks 4 --json)"
grep -q '"cluster_policy": "score"' <<<"$cluster_out"
grep -q '"arrival_digest"' <<<"$cluster_out"
! grep -q '"workers"' <<<"$cluster_out"
cluster_cmp="$(cargo run -q --release --bin stayaway -- \
    cluster --compare --cluster-scenario hotspot --epochs 12 --epoch-ticks 4)"
grep -q '^least-loaded' <<<"$cluster_cmp"
# Tournament smoke: the predictor × scenario sweep must print a ranked
# table naming every plane, and its JSON contract must hold — standings
# with bootstrap CIs present, no worker count and no wall-clock latency
# leaked into the document.
tournament_out="$(cargo run -q --release --bin stayaway -- \
    tournament --cells 1 --ticks 64 --resamples 100)"
grep -q '^rank' <<<"$tournament_out"
for plane in kde xapp denoise last-tick; do
    grep -q "$plane" <<<"$tournament_out"
done
tournament_json="$(cargo run -q --release --bin stayaway -- \
    tournament --cells 1 --ticks 64 --resamples 100 --workers 4 --json)"
grep -q '"standings"' <<<"$tournament_json"
grep -q '"lo"' <<<"$tournament_json"
! grep -q '"workers"' <<<"$tournament_json"
! grep -q 'decide_nanos' <<<"$tournament_json"
# Introspection smoke: a short instrumented run serving /health /metrics
# /state /events over --http (ephemeral port, scraped from the printed
# address via bash /dev/tcp). The live exposition must pass the in-tree
# promlint through the new CLI path, the exported event stream must read
# back through `stayaway events`, and the metrics-regression gate must
# pass a snapshot against itself and flag a perturbed-seed run.
intro_dir="$(mktemp -d)"
trap 'rm -f "$metrics_tmp"; rm -rf "$intro_dir"' EXIT
cargo run -q --release --bin stayaway -- \
    run --ticks 64 --metrics-out "$intro_dir/a.json" \
    --events-out "$intro_dir/events.jsonl" \
    --http 127.0.0.1:0 --http-linger 6 > "$intro_dir/run.log" &
run_pid=$!
for _ in $(seq 1 50); do
    grep -q 'listening on http://' "$intro_dir/run.log" 2>/dev/null && break
    sleep 0.1
done
addr="$(grep -o 'http://[0-9.:]*' "$intro_dir/run.log" | head -1)"
hostport="${addr#http://}"
http_get() {
    exec 3<>"/dev/tcp/${hostport%:*}/${hostport##*:}"
    printf 'GET %s HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n\r\n' "$1" >&3
    sed '1,/^\r$/d' <&3
    exec 3<&- 3>&-
}
[ "$(http_get /health)" = "ok" ]
http_get /metrics > "$intro_dir/metrics.prom"
cargo run -q --release --bin stayaway -- promlint "$intro_dir/metrics.prom"
http_get /state | grep -q '"tick"'
wait "$run_pid"
events_cli="$(cargo run -q --release --bin stayaway -- \
    events --events-in "$intro_dir/events.jsonl" --kind throttle)"
grep -q 'throttle' <<<"$events_cli"
cargo run -q --release --bin stayaway -- \
    metrics-diff "$intro_dir/a.json" "$intro_dir/a.json"
cargo run -q --release --bin stayaway -- \
    run --ticks 64 --seed 9 --metrics-out "$intro_dir/b.json" > /dev/null
if cargo run -q --release --bin stayaway -- \
    metrics-diff "$intro_dir/a.json" "$intro_dir/b.json" > /dev/null; then
    echo "metrics-diff failed to flag a perturbed-seed run" >&2
    exit 1
fi
# --metrics-out now reaches every plane: the cluster and tournament
# rollups must export (and the cluster exposition must lint clean).
cargo run -q --release --bin stayaway -- \
    cluster --cluster-scenario hotspot --epochs 6 --epoch-ticks 4 \
    --metrics-out "$intro_dir/cluster.prom" > /dev/null
cargo run -q --release --bin stayaway -- promlint "$intro_dir/cluster.prom"
cargo run -q --release --bin stayaway -- \
    tournament --cells 1 --ticks 48 --resamples 50 \
    --metrics-out "$intro_dir/tournament.json" > /dev/null
grep -q '"histograms"' "$intro_dir/tournament.json"
cargo bench --workspace --no-run
