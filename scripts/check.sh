#!/usr/bin/env bash
# Full local gate: formatting, lints (warnings are errors), the release
# build, the test suite (including the fleet determinism suite), and a
# compile check of every criterion bench target. Run from anywhere
# inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release --workspace
cargo test -q --workspace
cargo test -q -p stayaway-fleet --test determinism
cargo bench --workspace --no-run
