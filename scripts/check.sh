#!/usr/bin/env bash
# Full local gate: formatting, lints (warnings are errors), rustdoc
# (warnings are errors), the release build, the test suite (including the
# fleet determinism suite, the staged-controller golden fixture and the
# telemetry record→replay determinism suite), a replay smoke run over the
# committed fixture trace, and a compile check of every criterion bench
# target. Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
cargo build --release --workspace
cargo test -q --workspace
cargo test -q -p stayaway-fleet --test determinism
cargo test -q -p stayaway-core --test golden_fixture
cargo test -q --test record_replay
# Replay smoke: the committed fixture trace must stay readable by the
# current trace codec, end to end through the CLI.
cargo run -q --release --bin stayaway -- \
    replay --trace tests/fixtures/smoke_trace.jsonl
cargo bench --workspace --no-run
