#!/usr/bin/env bash
# Full local gate: formatting, lints (warnings are errors), and the test
# suite. Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test -q --workspace
