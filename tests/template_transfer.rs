//! Integration tests for §6's template mechanism, across crates and
//! through the filesystem.

use stay_away::core::{Controller, ControllerConfig};
use stay_away::sim::scenario::Scenario;
use stay_away::statespace::Template;

const TICKS: u64 = 300;

fn capture(scenario: &Scenario) -> Template {
    let mut h = scenario.build_harness().expect("harness");
    let mut c =
        Controller::for_host(ControllerConfig::default(), h.host().spec()).expect("controller");
    h.run(&mut c, TICKS);
    c.export_template("vlc-streaming").expect("export")
}

#[test]
fn template_survives_a_filesystem_round_trip() {
    let template = capture(&Scenario::vlc_with_cpubomb(21));
    assert!(template.violation_count() > 0, "nothing learned");

    let dir = std::env::temp_dir().join("stayaway-it");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("round-trip.json");
    template.save_to_path(&path).expect("save");
    let reloaded = Template::load_from_path(&path).expect("load");
    assert_eq!(template, reloaded);
    std::fs::remove_file(path).ok();
}

#[test]
fn imported_template_restores_the_violation_knowledge() {
    let template = capture(&Scenario::vlc_with_cpubomb(22));
    let h = Scenario::vlc_with_cpubomb(22)
        .build_harness()
        .expect("harness");
    let mut fresh =
        Controller::for_host(ControllerConfig::default(), h.host().spec()).expect("controller");
    fresh.import_template(&template).expect("import");
    assert_eq!(fresh.repr_count(), template.len());
    assert_eq!(
        fresh.state_map().violation_count(),
        template.violation_count()
    );
    // The imported map must be embedded: every state has a finite position.
    for rep in 0..fresh.repr_count() {
        let p = fresh.state_point(rep).expect("position exists");
        assert!(p.is_finite());
    }
}

/// Re-running the *same* repeatable service with its own template must not
/// make QoS worse, and the warm controller should start acting proactively
/// (the §6 "starting point" property).
#[test]
fn template_reuse_on_the_same_service_is_safe_and_proactive() {
    let scenario = Scenario::vlc_with_cpubomb(23);
    let template = capture(&scenario);

    // Same service, different workload trace (a later day of operation).
    let reuse = Scenario::vlc_with_cpubomb(24);

    let mut cold_h = reuse.build_harness().expect("harness");
    let mut cold = Controller::for_host(ControllerConfig::default(), cold_h.host().spec())
        .expect("controller");
    let cold_out = cold_h.run(&mut cold, TICKS);

    let mut warm_h = reuse.build_harness().expect("harness");
    let mut warm = Controller::for_host(ControllerConfig::default(), warm_h.host().spec())
        .expect("controller");
    warm.import_template(&template).expect("import");
    let warm_out = warm_h.run(&mut warm, TICKS);

    assert!(
        warm_out.qos.violations <= cold_out.qos.violations + 3,
        "template hurt QoS: {} vs {}",
        warm_out.qos.violations,
        cold_out.qos.violations
    );
    // The warm controller knows violation states before experiencing any.
    assert!(warm.state_map().violation_count() >= template.violation_count());
}

#[test]
fn import_rejects_mismatched_dimensions() {
    let h = Scenario::vlc_with_cpubomb(25)
        .build_harness()
        .expect("harness");
    let mut ctl =
        Controller::for_host(ControllerConfig::default(), h.host().spec()).expect("controller");
    // Default config uses 5 metrics → dim 10; build a dim-4 template.
    let mut bad = Template::new("vlc-streaming", 4).expect("template");
    bad.push(vec![0.1, 0.2, 0.3, 0.4], true).expect("push");
    assert!(ctl.import_template(&bad).is_err());
}

#[test]
fn templates_accumulate_across_runs_via_merge() {
    let mut a = capture(&Scenario::vlc_with_cpubomb(26));
    let b = capture(&Scenario::vlc_with_twitter(26));
    let total = a.len() + b.len();
    a.merge(&b).expect("merge");
    assert_eq!(a.len(), total);
}
