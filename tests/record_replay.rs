//! Record→replay determinism (the telemetry plane's acceptance contract).
//!
//! A live simulated run recorded through a trace tee, replayed through an
//! identically-configured controller, must reproduce the controller's
//! observable behaviour bit-for-bit: per-tick action counts, the event
//! log, the stats counters, the learned β and the full state map. This
//! holds because the controller is a pure function of its observation
//! sequence plus its own seeded RNG — the trace captures the former and
//! the config pins the latter.

use stay_away::core::{Controller, ControllerConfig};
use stay_away::sim::scenario::Scenario;
use stay_away::sim::SimSource;
use stay_away::telemetry::{drive, RecordingSource, SourceKind, TraceSource};

const TICKS: u64 = 300;

fn controller(scenario: &Scenario) -> Controller {
    Controller::for_host(ControllerConfig::default(), scenario.host_spec())
        .expect("default config is valid")
}

#[test]
fn record_then_replay_is_bit_identical() {
    let scenario = Scenario::vlc_with_cpubomb(7);

    // Live run with a recording tee around the simulator source.
    let harness = scenario.build_harness().expect("scenario builds");
    let mut recorder =
        RecordingSource::new(SimSource::new(harness), Vec::new()).expect("header writes");
    let mut live = controller(&scenario);
    let live_out = drive(&mut recorder, &mut live, TICKS).expect("live run");
    let (_, trace) = recorder.finish().expect("trace flushes");

    // Replay the trace through a fresh, identically-configured controller.
    let mut source = TraceSource::new(trace.as_slice()).expect("trace parses");
    assert_eq!(source.header().recorded_from, SourceKind::Sim);
    let mut replayed = controller(&scenario);
    let replay_out = drive(&mut source, &mut replayed, TICKS).expect("replayed run");

    // Actions: the same actuation count on every tick.
    assert_eq!(live_out.timeline.len(), replay_out.timeline.len());
    let actions = |out: &stay_away::telemetry::RunOutcome| -> Vec<(u64, usize)> {
        out.timeline.iter().map(|r| (r.tick, r.actions)).collect()
    };
    assert_eq!(actions(&live_out), actions(&replay_out));

    // QoS accounting is carried verbatim by the trace.
    assert_eq!(live_out.qos, replay_out.qos);

    // Controller internals: events, stats, β and the learned state map.
    assert_eq!(live.events().to_vec(), replayed.events().to_vec());
    assert_eq!(live.stats(), replayed.stats());
    assert_eq!(live.beta().to_bits(), replayed.beta().to_bits());
    // StateMap intentionally has no PartialEq; its serialised form is a
    // total projection of every entry, so byte equality here is exact.
    let map_json = |c: &Controller| serde_json::to_string(c.state_map()).expect("serialises");
    assert_eq!(map_json(&live), map_json(&replayed));
}

#[test]
fn replay_stops_at_trace_end_and_stays_deterministic_across_readers() {
    let scenario = Scenario::vlc_with_cpubomb(21);
    let harness = scenario.build_harness().expect("scenario builds");
    let mut recorder =
        RecordingSource::new(SimSource::new(harness), Vec::new()).expect("header writes");
    drive(&mut recorder, &mut controller(&scenario), 64).expect("recorded run");
    let (_, trace) = recorder.finish().expect("trace flushes");

    // Asking for more ticks than the trace holds ends the run gracefully.
    let mut source = TraceSource::new(trace.as_slice()).expect("trace parses");
    let mut ctl = controller(&scenario);
    let out = drive(&mut source, &mut ctl, 10_000).expect("replay");
    assert_eq!(out.timeline.len(), 64);

    // Two independent replays of the same bytes agree bit-for-bit.
    let mut again = TraceSource::new(trace.as_slice()).expect("trace parses");
    let mut ctl2 = controller(&scenario);
    let out2 = drive(&mut again, &mut ctl2, 10_000).expect("replay");
    assert_eq!(out.timeline, out2.timeline);
    assert_eq!(ctl.stats(), ctl2.stats());
}
