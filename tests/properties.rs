//! Cross-crate property tests: invariants that must hold for arbitrary
//! seeds and run lengths.

use proptest::prelude::*;
use stay_away::baselines::NoPrevention;
use stay_away::core::{Controller, ControllerConfig};
use stay_away::sim::apps::WebWorkload;
use stay_away::sim::scenario::{BatchKind, Scenario};
use stay_away::sim::ResourceKind;

fn any_scenario(seed: u64, which: u8) -> Scenario {
    match which % 5 {
        0 => Scenario::vlc_with_cpubomb(seed),
        1 => Scenario::vlc_with_twitter(seed),
        2 => Scenario::vlc_with_soplex(seed),
        3 => Scenario::webservice_with(WebWorkload::Mix, BatchKind::MemoryBomb, seed),
        _ => Scenario::webservice_with(WebWorkload::CpuIntensive, BatchKind::TwitterAnalysis, seed),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The simulator never grants more than host capacity on any resource,
    /// for any scenario, seed or policy.
    #[test]
    fn capacity_is_conserved(seed in 0u64..1000, which in 0u8..5, ticks in 20u64..120) {
        let scenario = any_scenario(seed, which);
        let mut h = scenario.build_harness().expect("harness");
        let spec = *h.host().spec();
        let mut policy = NoPrevention::new();
        for _ in 0..ticks {
            let (record, _) = h.step_with(&mut policy);
            prop_assert!(record.utilization <= 1.0 + 1e-9);
            prop_assert!(record.sensitive_cpu + record.batch_cpu <= spec.cpu_cores + 1e-6);
        }
    }

    /// QoS values are always in [0, 1] and violations only flagged below
    /// the threshold.
    #[test]
    fn qos_values_are_normalized(seed in 0u64..1000, which in 0u8..5) {
        let scenario = any_scenario(seed, which);
        let mut h = scenario.build_harness().expect("harness");
        let threshold = h.qos_spec().threshold();
        let out = h.run(&mut NoPrevention::new(), 80);
        for r in &out.timeline {
            prop_assert!((0.0..=1.0).contains(&r.qos_value));
            prop_assert_eq!(r.violated, r.sensitive_active && r.qos_value < threshold);
        }
    }

    /// The Stay-Away controller never errors out of its mapping pipeline
    /// and keeps its bookkeeping consistent on any scenario.
    #[test]
    fn controller_bookkeeping_is_consistent(seed in 0u64..500, which in 0u8..5) {
        let scenario = any_scenario(seed, which);
        let mut h = scenario.build_harness().expect("harness");
        let mut ctl = Controller::for_host(ControllerConfig::default(), h.host().spec())
            .expect("controller");
        let out = h.run(&mut ctl, 120);
        let stats = ctl.stats();
        prop_assert_eq!(stats.mapping_errors, 0);
        prop_assert_eq!(stats.periods, 120);
        prop_assert!(stats.violation_states <= stats.states);
        prop_assert!(stats.prediction_hits <= stats.prediction_checks);
        prop_assert!(ctl.beta() >= 0.01);
        // Violations observed by the controller equal those in the QoS log.
        prop_assert_eq!(stats.violations_observed, out.qos.violations);
    }

    /// Normalised measurement vectors stay in the unit cube for arbitrary
    /// metric subsets.
    #[test]
    fn controller_accepts_any_metric_subset(seed in 0u64..200, mask in 1u8..31) {
        let all = [
            ResourceKind::Cpu,
            ResourceKind::Memory,
            ResourceKind::MemBandwidth,
            ResourceKind::DiskIo,
            ResourceKind::Network,
        ];
        let metrics: Vec<ResourceKind> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &m)| m)
            .collect();
        let scenario = Scenario::vlc_with_twitter(seed);
        let mut h = scenario.build_harness().expect("harness");
        let config = ControllerConfig { metrics, ..ControllerConfig::default() };
        let mut ctl = Controller::for_host(config, h.host().spec()).expect("controller");
        h.run(&mut ctl, 60);
        prop_assert_eq!(ctl.stats().mapping_errors, 0);
    }

    /// Template export/import round-trips the state count for any run.
    #[test]
    fn template_roundtrip_preserves_counts(seed in 0u64..300) {
        let scenario = Scenario::vlc_with_cpubomb(seed);
        let mut h = scenario.build_harness().expect("harness");
        let mut ctl = Controller::for_host(ControllerConfig::default(), h.host().spec())
            .expect("controller");
        h.run(&mut ctl, 100);
        let t = ctl.export_template("vlc").expect("export");
        prop_assert_eq!(t.len(), ctl.repr_count());

        let mut fresh = Controller::for_host(ControllerConfig::default(), h.host().spec())
            .expect("controller");
        fresh.import_template(&t).expect("import");
        prop_assert_eq!(fresh.repr_count(), t.len());
        prop_assert_eq!(fresh.state_map().violation_count(), t.violation_count());
    }
}
