//! Facade-level tests for the observability plane: the exposition
//! formats are valid, the instruments cover every layer, and turning
//! them all on never changes what the controller or the fleet does.

use stay_away::core::{Controller, ControllerConfig, Observability};
use stay_away::fleet::{Fleet, FleetConfig};
use stay_away::obs::{
    promlint, to_json, to_prometheus, MetricsRegistry, MetricsSnapshot, SpanSink,
};
use stay_away::sim::scenario::Scenario;
use stay_away::sim::RunOutcome;

const TICKS: u64 = 64;

/// Runs the default scenario for 64 ticks with every instrument on and
/// returns the outcome plus the registry snapshot.
fn instrumented_run() -> (RunOutcome, MetricsSnapshot, SpanSink) {
    let scenario = Scenario::vlc_with_cpubomb(7);
    let mut harness = scenario.build_harness().expect("harness builds");
    let registry = MetricsRegistry::new();
    let sink = SpanSink::bounded(1024);
    let obs = Observability::enabled(registry.clone()).with_sink(sink.clone());
    let mut ctl =
        Controller::for_host_observed(ControllerConfig::default(), harness.host().spec(), obs)
            .expect("controller builds");
    let outcome = harness.run(&mut ctl, TICKS);
    (outcome, registry.snapshot(), sink)
}

/// The Prometheus text exposition of a fully instrumented run passes
/// the in-tree promlint: well-formed headers, monotone cumulative
/// buckets, `+Inf` terminators, consistent `_count` series.
#[test]
fn prometheus_exposition_lints_clean() {
    let (_, snapshot, _) = instrumented_run();
    let text = to_prometheus(&snapshot);
    if let Err(errors) = promlint::validate(&text) {
        panic!("promlint violations:\n{}", errors.join("\n"));
    }
}

/// The instruments the issue demands are all present after one run:
/// controller stage latencies and decision counters, mapping-engine
/// gauges, and the β / duty-cycle gauges.
#[test]
fn exposition_covers_controller_and_mapping_instruments() {
    let (_, snapshot, sink) = instrumented_run();
    let counter = |name: &str| {
        snapshot
            .counters
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("counter {name} missing"))
    };
    let gauge = |name: &str| {
        snapshot
            .gauges
            .iter()
            .find(|g| g.name == name)
            .unwrap_or_else(|| panic!("gauge {name} missing"))
    };
    assert_eq!(counter("stayaway_controller_periods_total").value, TICKS);
    counter("stayaway_controller_samples_rejected_total");
    counter("stayaway_controller_mapping_errors_total");
    assert!(gauge("stayaway_controller_beta").value > 0.0);
    let duty = gauge("stayaway_controller_throttle_duty_cycle").value;
    assert!((0.0..=1.0).contains(&duty));
    gauge("stayaway_controller_events_dropped");
    assert!(gauge("stayaway_mapping_repr_states").value > 0.0);
    gauge("stayaway_mapping_dedup_ratio");
    for stage in ["sense", "map", "predict", "act"] {
        let name = format!("stayaway_controller_{stage}_latency_nanos");
        let hist = snapshot
            .histograms
            .iter()
            .find(|h| h.name == name)
            .unwrap_or_else(|| panic!("{name} missing"));
        assert_eq!(hist.hist.count, TICKS);
        // Quantile estimates exist and are ordered once samples landed.
        let p50 = hist.hist.quantile(0.50).expect("p50 estimable");
        let p99 = hist.hist.quantile(0.99).expect("p99 estimable");
        assert!(p50 <= p99, "p50 {p50} > p99 {p99} for {name}");
    }
    // Span records mirror the stage timings into the bounded sink.
    let records = sink.records();
    assert!(records.iter().any(|r| r.name == "controller.map"));
    // JSON export round-trips through the serde layer.
    let doc = to_json(&snapshot);
    assert!(doc.get("counters").is_some());
    assert!(doc.get("histograms").is_some());
}

/// A fleet rollup exports valid Prometheus text too, and stays
/// byte-identical however many workers produced it.
#[test]
fn fleet_rollup_exposition_is_valid_and_worker_independent() {
    let run = |workers| {
        let mut config = FleetConfig::new(8, workers, 7);
        config.ticks = TICKS;
        config.collect_metrics = true;
        Fleet::new(config).unwrap().run().unwrap()
    };
    let a = run(1);
    let b = run(4);
    let rollup = a.metrics.as_ref().expect("rollup collected");
    let text = to_prometheus(rollup);
    if let Err(errors) = promlint::validate(&text) {
        panic!(
            "promlint violations in fleet rollup:\n{}",
            errors.join("\n")
        );
    }
    assert_eq!(text, to_prometheus(b.metrics.as_ref().unwrap()));
    let json = serde_json::to_string_pretty(&to_json(rollup)).unwrap();
    let json_b = serde_json::to_string_pretty(&to_json(b.metrics.as_ref().unwrap())).unwrap();
    assert_eq!(json, json_b, "fleet JSON rollup must be worker-independent");
    // The per-cell runtime span histogram counted every cell once.
    let cell_runtime = rollup
        .histograms
        .iter()
        .find(|h| h.name == "stayaway_fleet_cell_runtime_nanos")
        .expect("cell runtime histogram in rollup");
    assert_eq!(cell_runtime.hist.count, 8);
}

/// Full instrumentation is decision-inert at the facade level: QoS,
/// timeline and batch work match an uninstrumented run exactly.
#[test]
fn instrumentation_is_decision_inert_end_to_end() {
    let scenario = Scenario::vlc_with_cpubomb(7);
    let mut harness = scenario.build_harness().expect("harness builds");
    let mut bare_ctl = Controller::for_host(ControllerConfig::default(), harness.host().spec())
        .expect("controller builds");
    let bare = harness.run(&mut bare_ctl, TICKS);
    let (observed, snapshot, _) = instrumented_run();
    assert_eq!(bare, observed);
    assert!(!snapshot.is_empty());
}
