//! End-to-end closed-loop tests across all crates: the headline behaviours
//! of the paper must hold on every co-location scenario.

use stay_away::baselines::{AlwaysThrottle, NoPrevention};
use stay_away::core::{Controller, ControllerConfig};
use stay_away::sim::apps::WebWorkload;
use stay_away::sim::scenario::{BatchKind, Scenario};
use stay_away::sim::RunOutcome;

const TICKS: u64 = 300;

fn run_baseline(scenario: &Scenario) -> RunOutcome {
    let mut h = scenario.build_harness().expect("harness builds");
    h.run(&mut NoPrevention::new(), TICKS)
}

fn run_stayaway(scenario: &Scenario) -> RunOutcome {
    let mut h = scenario.build_harness().expect("harness builds");
    let mut c = Controller::for_host(ControllerConfig::default(), h.host().spec())
        .expect("controller builds");
    h.run(&mut c, TICKS)
}

/// Stay-Away must cut violations by a large factor on every scenario where
/// the co-location interferes at all.
#[test]
fn stayaway_cuts_violations_across_all_colocations() {
    let scenarios = vec![
        Scenario::vlc_with_cpubomb(101),
        Scenario::vlc_with_twitter(102),
        Scenario::webservice_with(WebWorkload::CpuIntensive, BatchKind::CpuBomb, 103),
        Scenario::webservice_with(WebWorkload::MemIntensive, BatchKind::MemoryBomb, 104),
        Scenario::webservice_with(WebWorkload::Mix, BatchKind::TwitterAnalysis, 105),
    ];
    for scenario in scenarios {
        let base = run_baseline(&scenario);
        let guard = run_stayaway(&scenario);
        assert!(
            base.qos.violations >= 30,
            "{}: baseline unexpectedly healthy ({} violations)",
            scenario.name(),
            base.qos.violations
        );
        assert!(
            guard.qos.violations * 3 <= base.qos.violations,
            "{}: {} violations with stay-away vs {} without",
            scenario.name(),
            guard.qos.violations,
            base.qos.violations
        );
        assert!(
            guard.qos.satisfaction() > 0.9,
            "{}: satisfaction {:.2} too low",
            scenario.name(),
            guard.qos.satisfaction()
        );
    }
}

/// Batch applications must keep making progress under Stay-Away whenever
/// safe co-location windows exist (no starvation).
#[test]
fn stayaway_does_not_starve_phase_rich_batch_apps() {
    let scenario = Scenario::vlc_with_twitter(106);
    let base = run_baseline(&scenario);
    let guard = run_stayaway(&scenario);
    assert!(
        guard.batch_work > 0.2 * base.batch_work,
        "batch starved: {} vs {} work units",
        guard.batch_work,
        base.batch_work
    );
}

/// The gained-utilisation ordering of the paper: CPUBomb (constant
/// contention, no phases) retains far less than Twitter-Analysis.
#[test]
fn utilization_gain_ordering_matches_paper() {
    let bomb = Scenario::vlc_with_cpubomb(107);
    let twitter = Scenario::vlc_with_twitter(107);
    let cap = bomb.host_spec().cpu_cores;
    let bomb_gain = run_stayaway(&bomb).mean_gained_utilization(cap);
    let twitter_gain = run_stayaway(&twitter).mean_gained_utilization(cap);
    assert!(
        twitter_gain > 2.0 * bomb_gain,
        "twitter gain {twitter_gain:.3} should dwarf cpu-bomb gain {bomb_gain:.3}"
    );
}

/// Stay-Away must land between the two extremes: (QoS) no worse than
/// no-prevention and (utilisation) above always-throttle.
#[test]
fn stayaway_sits_between_the_extreme_policies() {
    let scenario = Scenario::vlc_with_twitter(108);
    let cap = scenario.host_spec().cpu_cores;

    let mut h = scenario.build_harness().expect("harness");
    let isolated = h.run(&mut AlwaysThrottle::new(), TICKS);

    let base = run_baseline(&scenario);
    let guard = run_stayaway(&scenario);

    assert!(guard.qos.violations <= base.qos.violations);
    assert!(guard.qos.violations >= isolated.qos.violations);
    assert!(
        guard.mean_gained_utilization(cap) > isolated.mean_gained_utilization(cap),
        "no utilisation gained over isolated execution"
    );
    assert!(guard.mean_gained_utilization(cap) <= base.mean_gained_utilization(cap) + 1e-9);
}

/// (scenario, seed) must fully determine the run: controller decisions,
/// QoS accounting and utilisation, bit-for-bit.
#[test]
fn full_stack_determinism() {
    let run = || {
        let scenario = Scenario::webservice_with(WebWorkload::Mix, BatchKind::TwitterAnalysis, 9);
        run_stayaway(&scenario)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

/// Different seeds genuinely vary the experiment.
#[test]
fn seeds_change_the_runs() {
    let a = run_stayaway(&Scenario::vlc_with_twitter(1));
    let b = run_stayaway(&Scenario::vlc_with_twitter(2));
    assert_ne!(a.timeline, b.timeline);
}

/// Before the batch application is scheduled there must be no violations:
/// a sensitive application alone can always meet its QoS.
#[test]
fn no_violations_before_colocation() {
    let scenario = Scenario::vlc_with_twitter(110);
    let guard = run_stayaway(&scenario);
    let first_batch_tick = scenario.batches()[0].1;
    assert!(guard
        .timeline
        .iter()
        .take(first_batch_tick as usize)
        .all(|r| !r.violated));
}
