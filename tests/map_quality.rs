//! Quality of the mapped state space: the §3.1 properties the whole
//! mechanism rests on — violation/safe separation, map stability, and
//! faithful embedding of the measurement vectors.

use stay_away::core::aggregate::measurement_vector;
use stay_away::core::mapping::MappingEngine;
use stay_away::core::{Controller, ControllerConfig};
use stay_away::mds::distance::DistanceMatrix;
use stay_away::sim::scenario::Scenario;
use stay_away::sim::{Action, Observation, Policy};
use stay_away::statespace::{ExecutionMode, Point2, StateKind};

/// Observe-only recorder over the public mapping pipeline.
struct Recorder {
    engine: MappingEngine,
    metrics: Vec<stay_away::sim::ResourceKind>,
    trail: Vec<(ExecutionMode, usize, Point2)>,
}

impl Policy for Recorder {
    fn name(&self) -> &str {
        "recorder"
    }
    fn decide(&mut self, obs: &Observation) -> Vec<Action> {
        if let Ok(sample) = self.engine.observe(&measurement_vector(obs, &self.metrics)) {
            let mode = ExecutionMode::from_activity(obs.sensitive_active(), obs.batch_active());
            self.trail.push((mode, sample.rep, sample.point));
        }
        Vec::new()
    }
}

fn record(scenario: &Scenario, ticks: u64) -> Recorder {
    let mut harness = scenario.build_harness().expect("harness");
    let config = ControllerConfig::default();
    let mut rec = Recorder {
        engine: MappingEngine::new(
            &config.metrics,
            harness.host().spec(),
            config.dedup_epsilon,
            20,
            400,
        )
        .expect("engine"),
        metrics: config.metrics,
        trail: Vec::new(),
    };
    harness.run(&mut rec, ticks);
    rec
}

/// Isolated execution and contended co-location must occupy distinct
/// regions of the map (the premise of violation-ranges).
#[test]
fn isolated_and_contended_states_separate() {
    let rec = record(&Scenario::vlc_with_cpubomb(41), 200);
    let centroid = |mode: ExecutionMode| -> Option<Point2> {
        let pts: Vec<Point2> = rec
            .trail
            .iter()
            .filter(|(m, _, _)| *m == mode)
            .map(|(_, _, p)| *p)
            .collect();
        if pts.is_empty() {
            return None;
        }
        Some(Point2::new(
            pts.iter().map(|p| p.x).sum::<f64>() / pts.len() as f64,
            pts.iter().map(|p| p.y).sum::<f64>() / pts.len() as f64,
        ))
    };
    let iso = centroid(ExecutionMode::SensitiveOnly).expect("isolated states exist");
    let co = centroid(ExecutionMode::CoLocated).expect("co-located states exist");
    assert!(
        iso.distance(co) > 0.1,
        "modes indistinguishable: {iso} vs {co}"
    );
}

/// The incremental embedding must stay faithful to the high-dimensional
/// dissimilarities (low stress) even after hundreds of insertions.
#[test]
fn incremental_embedding_keeps_low_stress() {
    let rec = record(&Scenario::vlc_with_twitter(42), 300);
    let n = rec.engine.repr_count();
    assert!(n >= 10, "too few states to judge ({n})");
    let vectors: Vec<Vec<f64>> = (0..n)
        .map(|i| rec.engine.normalized_vector(i).to_vec())
        .collect();
    let dissim = DistanceMatrix::from_vectors(&vectors).expect("matrix");
    let stress = rec
        .engine
        .embedding()
        .expect("embedding exists")
        .stress(&dissim)
        .expect("stress");
    assert!(stress < 0.15, "embedding too distorted: stress {stress:.3}");
}

/// Repeated visits to the same regime map to the same representative — the
/// dedup invariant the trajectory model relies on.
#[test]
fn recurring_regimes_reuse_representatives() {
    let rec = record(&Scenario::vlc_with_cpubomb(43), 300);
    // Far fewer representatives than ticks.
    assert!(
        rec.engine.repr_count() * 3 < rec.trail.len(),
        "{} reps for {} ticks — dedup ineffective",
        rec.engine.repr_count(),
        rec.trail.len()
    );
    // At least one representative is visited many times.
    let mut visits = vec![0usize; rec.engine.repr_count()];
    for (_, rep, _) in &rec.trail {
        visits[*rep] += 1;
    }
    assert!(visits.iter().any(|&v| v > 10));
}

/// The controller's violation-states must lie in the co-located region,
/// not among isolated states (violations require interference).
#[test]
fn violation_states_live_in_the_colocated_region() {
    let scenario = Scenario::vlc_with_cpubomb(44);
    let mut h = scenario.build_harness().expect("harness");
    let mut ctl =
        Controller::for_host(ControllerConfig::default(), h.host().spec()).expect("controller");
    h.run(&mut ctl, 250);
    let map = ctl.state_map();
    assert!(map.violation_count() > 0);
    for rep in 0..map.len() {
        let e = map.entry(rep).expect("entry");
        if e.kind() == StateKind::Violation {
            assert_eq!(
                e.first_mode(),
                ExecutionMode::CoLocated,
                "violation state S{rep} first seen in mode {}",
                e.first_mode()
            );
        }
    }
}

/// Violation-ranges never swallow the nearest safe state (R < d).
#[test]
fn violation_ranges_exclude_their_nearest_safe_state() {
    let scenario = Scenario::vlc_with_twitter(45);
    let mut h = scenario.build_harness().expect("harness");
    let mut ctl =
        Controller::for_host(ControllerConfig::default(), h.host().spec()).expect("controller");
    h.run(&mut ctl, 300);
    let map = ctl.state_map();
    for rep in 0..map.len() {
        let e = map.entry(rep).expect("entry");
        if e.kind() != StateKind::Violation {
            continue;
        }
        let range = map.violation_range(rep).expect("range");
        if let Some((safe_idx, d)) = map.nearest_safe(e.point()) {
            assert!(
                range.radius() < d + 1e-12,
                "range of S{rep} (r={}) swallows safe S{safe_idx} at d={d}",
                range.radius()
            );
        }
    }
}
