//! Robustness of the Stay-Away controller under injected faults: sensor
//! dropouts and actuation failures must degrade the protection gracefully,
//! not catastrophically.

use stay_away::baselines::{FaultInjector, NoPrevention};
use stay_away::core::{Controller, ControllerConfig};
use stay_away::sim::scenario::Scenario;

const TICKS: u64 = 300;

fn controller(h: &stay_away::sim::Harness) -> Controller {
    Controller::for_host(ControllerConfig::default(), h.host().spec()).expect("controller")
}

#[test]
fn survives_sensor_dropout() {
    let scenario = Scenario::vlc_with_cpubomb(61);
    let mut h0 = scenario.build_harness().expect("harness");
    let baseline = h0.run(&mut NoPrevention::new(), TICKS);

    // 10% of ticks the stats read fails and the controller sees zeros.
    let mut h1 = scenario.build_harness().expect("harness");
    let ctl = controller(&h1);
    let mut faulty = FaultInjector::new(ctl, 0.10, 0.0, 99);
    let out = h1.run(&mut faulty, TICKS);

    assert!(faulty.dropped_observations() > 10);
    assert!(
        out.qos.violations * 3 <= baseline.qos.violations,
        "dropout defeated the controller: {} vs {}",
        out.qos.violations,
        baseline.qos.violations
    );
    // The controller never crashed out of its pipeline.
    assert_eq!(faulty.inner().stats().mapping_errors, 0);
}

#[test]
fn survives_actuation_failures() {
    let scenario = Scenario::vlc_with_cpubomb(62);
    let mut h0 = scenario.build_harness().expect("harness");
    let baseline = h0.run(&mut NoPrevention::new(), TICKS);

    // A third of the SIGSTOP/SIGCONT batches never arrive.
    let mut h1 = scenario.build_harness().expect("harness");
    let ctl = controller(&h1);
    let mut faulty = FaultInjector::new(ctl, 0.0, 0.33, 100);
    let out = h1.run(&mut faulty, TICKS);

    assert!(
        out.qos.violations * 2 <= baseline.qos.violations,
        "actuation faults defeated the controller: {} vs {}",
        out.qos.violations,
        baseline.qos.violations
    );
}

#[test]
fn combined_faults_still_beat_no_prevention() {
    let scenario = Scenario::vlc_with_twitter(63);
    let mut h0 = scenario.build_harness().expect("harness");
    let baseline = h0.run(&mut NoPrevention::new(), TICKS);

    let mut h1 = scenario.build_harness().expect("harness");
    let ctl = controller(&h1);
    let mut faulty = FaultInjector::new(ctl, 0.05, 0.15, 101);
    let out = h1.run(&mut faulty, TICKS);

    assert!(
        out.qos.violations < baseline.qos.violations / 2,
        "combined faults: {} vs {}",
        out.qos.violations,
        baseline.qos.violations
    );
}
