//! Comparative behaviour of the baseline policies against Stay-Away —
//! the qualitative claims of §8 (related work) that motivate the design.

use stay_away::baselines::{AlwaysThrottle, NoPrevention, ReactivePolicy, StaticThresholdPolicy};
use stay_away::core::{Controller, ControllerConfig};
use stay_away::sim::apps::WebWorkload;
use stay_away::sim::scenario::{BatchKind, Scenario};
use stay_away::sim::{Policy, RunOutcome};

const TICKS: u64 = 300;

fn run(scenario: &Scenario, policy: &mut dyn Policy) -> RunOutcome {
    let mut h = scenario.build_harness().expect("harness");
    h.run(policy, TICKS)
}

fn run_stayaway(scenario: &Scenario) -> RunOutcome {
    let mut h = scenario.build_harness().expect("harness");
    let mut c =
        Controller::for_host(ControllerConfig::default(), h.host().spec()).expect("controller");
    h.run(&mut c, TICKS)
}

/// Reactive throttling (Bubble-Flux-style) helps, but keeps paying
/// violations on every blind resume under persistent contention; Stay-Away
/// pays mostly during learning.
#[test]
fn stayaway_beats_reactive_on_persistent_contention() {
    let scenario = Scenario::vlc_with_cpubomb(31);
    let reactive = run(&scenario, &mut ReactivePolicy::new(10));
    let stayaway = run_stayaway(&scenario);
    let none = run(&scenario, &mut NoPrevention::new());

    assert!(reactive.qos.violations < none.qos.violations);
    assert!(
        stayaway.qos.violations < reactive.qos.violations,
        "stay-away {} vs reactive {}",
        stayaway.qos.violations,
        reactive.qos.violations
    );
}

/// A static CPU threshold is blind to memory/swap contention — the §1
/// argument against a-priori profiling.
#[test]
fn static_threshold_misses_memory_contention_stayaway_does_not() {
    let scenario = Scenario::webservice_with(WebWorkload::MemIntensive, BatchKind::MemoryBomb, 32);
    let cap = scenario.host_spec().cpu_cores;
    let none = run(&scenario, &mut NoPrevention::new());
    let static_t = run(&scenario, &mut StaticThresholdPolicy::new(0.8, cap));
    let stayaway = run_stayaway(&scenario);

    // The static rule barely improves on no prevention…
    assert!(
        static_t.qos.violations * 2 >= none.qos.violations,
        "static threshold unexpectedly effective: {} vs {}",
        static_t.qos.violations,
        none.qos.violations
    );
    // …while Stay-Away identifies the memory channel at runtime.
    assert!(
        stayaway.qos.violations * 5 <= none.qos.violations,
        "stay-away {} vs none {}",
        stayaway.qos.violations,
        none.qos.violations
    );
}

/// Always-throttle gets perfect QoS at zero gain — the over-provisioning
/// status quo. Stay-Away must recover a meaningful share of the gain while
/// staying near that QoS level.
#[test]
fn stayaway_recovers_utilization_over_overprovisioning() {
    let scenario = Scenario::vlc_with_twitter(33);
    let cap = scenario.host_spec().cpu_cores;
    let isolated = run(&scenario, &mut AlwaysThrottle::new());
    let stayaway = run_stayaway(&scenario);

    assert!(isolated.mean_gained_utilization(cap) < 0.02);
    assert!(
        stayaway.mean_gained_utilization(cap) > 0.04,
        "gain {:.3} too small",
        stayaway.mean_gained_utilization(cap)
    );
    assert!(stayaway.qos.satisfaction() > 0.9);
}

/// Every policy respects the constraint that sensitive containers are
/// never paused (enforced by the host, §2.1).
#[test]
fn no_policy_can_pause_the_sensitive_container() {
    let scenario = Scenario::vlc_with_cpubomb(34);
    for policy_run in [
        run(&scenario, &mut NoPrevention::new()),
        run(&scenario, &mut AlwaysThrottle::new()),
        run(&scenario, &mut ReactivePolicy::new(5)),
        run_stayaway(&scenario),
    ] {
        // The sensitive app stays active every tick.
        assert!(policy_run.timeline.iter().all(|r| r.sensitive_active));
    }
}
