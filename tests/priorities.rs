//! Integration test of the §2.1 priority extension: several sensitive
//! applications co-scheduled, the controller protecting the top-priority
//! one by throttling the lower-priority one.

use stay_away::baselines::NoPrevention;
use stay_away::core::{Controller, ControllerConfig};
use stay_away::sim::apps::WebWorkload;
use stay_away::sim::scenario::{Scenario, SensitiveKind};
use stay_away::sim::workload::{DiurnalParams, Trace};
use stay_away::sim::AppClass;

fn scenario(seed: u64) -> Scenario {
    Scenario::builder("vlc(0)+web-cpu(1)")
        .seed(seed)
        .sensitive(SensitiveKind::VlcStreaming {
            trace: Trace::diurnal(DiurnalParams::default(), seed.wrapping_add(1)),
        })
        .secondary_sensitive(
            SensitiveKind::Webservice {
                workload: WebWorkload::CpuIntensive,
                trace: Trace::diurnal(DiurnalParams::default(), seed.wrapping_add(2)),
            },
            1,
            20,
        )
        .build()
}

#[test]
fn top_priority_sensitive_is_protected_from_a_lower_priority_one() {
    let s = scenario(3);
    let ticks = 300;

    let mut h0 = s.build_harness().expect("harness");
    let base = h0.run(&mut NoPrevention::new(), ticks);
    assert!(
        base.qos.violations > 50,
        "the two sensitives should contend: {} violations",
        base.qos.violations
    );

    let mut h1 = s.build_harness().expect("harness");
    let mut ctl =
        Controller::for_host(ControllerConfig::default(), h1.host().spec()).expect("controller");
    let out = h1.run(&mut ctl, ticks);
    assert!(
        out.qos.violations * 5 <= base.qos.violations,
        "stay-away {} vs baseline {}",
        out.qos.violations,
        base.qos.violations
    );
    // The actions went to the lower-priority sensitive container, and none
    // were rejected by the host.
    assert!(ctl.stats().throttles > 0);
    assert_eq!(out.rejected_actions, 0);
}

#[test]
fn lower_priority_sensitive_still_runs_when_safe() {
    let s = scenario(4);
    let mut h = s.build_harness().expect("harness");
    let mut ctl =
        Controller::for_host(ControllerConfig::default(), h.host().spec()).expect("controller");
    h.run(&mut ctl, 300);
    // The demoted webservice made progress (it is throttled, not killed).
    let web_work: f64 = h
        .host()
        .containers()
        .filter(|c| c.class() == AppClass::Sensitive && c.priority() > 0)
        .map(|c| c.app().work_done())
        .sum();
    assert!(web_work > 10.0, "demoted sensitive starved: {web_work}");
}

#[test]
fn host_protects_only_the_top_priority() {
    let s = scenario(5);
    let mut h = s.build_harness().expect("harness");
    let ids: Vec<_> = h
        .host()
        .containers()
        .map(|c| (c.id(), c.priority()))
        .collect();
    for (id, priority) in ids {
        let result = h.host_mut().pause(id);
        if priority == 0 {
            assert!(result.is_err(), "top priority must be protected");
        } else {
            assert!(result.is_ok(), "lower priority must be throttleable");
            h.host_mut().resume(id).expect("resume");
        }
    }
}
