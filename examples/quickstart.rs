//! Quickstart: protect a latency-sensitive VLC streaming server from a
//! co-located CPU hog with Stay-Away.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use stay_away::baselines::NoPrevention;
use stay_away::core::{Controller, ControllerConfig};
use stay_away::sim::scenario::Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A reproducible experiment: VLC streaming (diurnal client workload)
    // shares a 4-core host with CPUBomb, which grabs every core it can.
    let scenario = Scenario::vlc_with_cpubomb(42);
    let ticks = 300;

    // First, co-location without any protection.
    let mut unprotected = scenario.build_harness()?;
    let baseline = unprotected.run(&mut NoPrevention::new(), ticks);

    // Now the same workload under Stay-Away.
    let mut protected = scenario.build_harness()?;
    let mut controller =
        Controller::for_host(ControllerConfig::default(), protected.host().spec())?;
    let guarded = protected.run(&mut controller, ticks);

    println!("scenario: {} ({ticks} ticks)\n", scenario.name());
    println!(
        "without Stay-Away: {:>3} QoS violations (satisfaction {:>5.1}%)",
        baseline.qos.violations,
        100.0 * baseline.qos.satisfaction()
    );
    println!(
        "with    Stay-Away: {:>3} QoS violations (satisfaction {:>5.1}%)",
        guarded.qos.violations,
        100.0 * guarded.qos.satisfaction()
    );

    let stats = controller.stats();
    println!(
        "\ncontroller: {} states mapped ({} violation-states), \
         {} proactive predictions, {} throttles, {} resumes, β = {:.3}",
        stats.states,
        stats.violation_states,
        stats.violations_predicted,
        stats.throttles,
        stats.resumes,
        controller.beta()
    );
    Ok(())
}
