//! The paper's headline scenario in full: VLC streaming under a diurnal
//! client workload, co-located in turn with each batch application, under
//! four policies — no prevention, always-throttle (isolated-run bound),
//! reactive throttling, and Stay-Away.
//!
//! ```sh
//! cargo run --example vlc_streaming
//! ```

use stay_away::baselines::{AlwaysThrottle, NoPrevention, ReactivePolicy};
use stay_away::core::{Controller, ControllerConfig};
use stay_away::sim::scenario::{BatchKind, Scenario, SensitiveKind};
use stay_away::sim::workload::{DiurnalParams, Trace};
use stay_away::sim::Policy;

fn scenario_for(batch: BatchKind, seed: u64) -> Scenario {
    Scenario::builder(format!("vlc+{batch}"))
        .seed(seed)
        .sensitive(SensitiveKind::VlcStreaming {
            trace: Trace::diurnal(DiurnalParams::default(), seed),
        })
        .batch(batch, 20)
        .build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ticks = 384; // four simulated days
    println!(
        "{:<18} {:<16} {:>10} {:>13} {:>12}",
        "batch app", "policy", "violations", "satisfaction", "gained util"
    );

    for batch in BatchKind::ALL {
        let scenario = scenario_for(batch, 7);
        let cap = scenario.host_spec().cpu_cores;

        // Policy line-up. Stay-Away is run separately because it needs the
        // host spec at construction time.
        let mut policies: Vec<Box<dyn Policy>> = vec![
            Box::new(NoPrevention::new()),
            Box::new(AlwaysThrottle::new()),
            Box::new(ReactivePolicy::new(10)),
        ];
        for policy in policies.iter_mut() {
            let mut harness = scenario.build_harness()?;
            let out = harness.run(policy.as_mut(), ticks);
            println!(
                "{:<18} {:<16} {:>10} {:>12.1}% {:>11.1}%",
                batch.to_string(),
                out.policy,
                out.qos.violations,
                100.0 * out.qos.satisfaction(),
                100.0 * out.mean_gained_utilization(cap)
            );
        }

        let mut harness = scenario.build_harness()?;
        let mut stayaway =
            Controller::for_host(ControllerConfig::default(), harness.host().spec())?;
        let out = harness.run(&mut stayaway, ticks);
        println!(
            "{:<18} {:<16} {:>10} {:>12.1}% {:>11.1}%",
            batch.to_string(),
            out.policy,
            out.qos.violations,
            100.0 * out.qos.satisfaction(),
            100.0 * out.mean_gained_utilization(cap)
        );
        println!();
    }

    println!(
        "reading: Stay-Away approaches always-throttle QoS while retaining \
         a useful share of no-prevention's utilisation gain; the reactive \
         baseline keeps paying violations on every probe."
    );
    Ok(())
}
