//! Render the learned state space to SVG — the paper's "visualise
//! co-located execution" contribution (§1, §6).
//!
//! ```sh
//! cargo run --release --example visualize_statespace
//! ```
//!
//! Produces `stayaway-map.svg` in the current directory: safe states in
//! blue, violation-states in red with their Rayleigh violation-ranges as
//! dashed circles, sized by visit count.

use stay_away::core::{Controller, ControllerConfig};
use stay_away::sim::scenario::Scenario;
use stay_away::statespace::viz::MapRenderer;
use stay_away::statespace::StateKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::vlc_with_twitter(42);
    let mut harness = scenario.build_harness()?;
    let mut controller = Controller::for_host(ControllerConfig::default(), harness.host().spec())?;
    let outcome = harness.run(&mut controller, 384);

    let map = controller.state_map();
    println!(
        "learned {} states ({} violation) over {} ticks — {} violations suffered",
        map.len(),
        map.violation_count(),
        outcome.timeline.len(),
        outcome.qos.violations
    );

    // Textual rendering of the same information.
    for (i, entry) in map.iter().enumerate() {
        let marker = match entry.kind() {
            StateKind::Violation => "✗",
            StateKind::Safe => "·",
        };
        println!(
            "  {marker} S{i:<3} {} visits {:>4} first seen {}",
            entry.point(),
            entry.visits(),
            entry.first_mode()
        );
    }

    let path = "stayaway-map.svg";
    MapRenderer::new(map, 800, 600)
        .title(format!("{} — learned state space", scenario.name()))
        .save(path)?;
    println!("\nwrote {path} — open it in any browser");
    Ok(())
}
