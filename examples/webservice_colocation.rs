//! The Webservice evaluation (§7.2): CPU-, memory- and mixed-intensity
//! workloads co-located with Twitter-Analysis, showing that Stay-Away
//! throttles the batch application only during the phases that actually
//! contend (Twitter's memory phase vs the memory-intensive workload, its
//! CPU phase vs the CPU-intensive workload).
//!
//! ```sh
//! cargo run --example webservice_colocation
//! ```

use stay_away::baselines::NoPrevention;
use stay_away::core::{Controller, ControllerConfig};
use stay_away::sim::apps::WebWorkload;
use stay_away::sim::scenario::{BatchKind, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ticks = 300;
    println!(
        "{:<10} {:>16} {:>14} {:>12} {:>14}",
        "workload", "violations none", "violations sa", "batch work", "throttled %"
    );

    for workload in [
        WebWorkload::CpuIntensive,
        WebWorkload::MemIntensive,
        WebWorkload::Mix,
    ] {
        let scenario = Scenario::webservice_with(workload, BatchKind::TwitterAnalysis, 11);

        let mut h0 = scenario.build_harness()?;
        let baseline = h0.run(&mut NoPrevention::new(), ticks);

        let mut h1 = scenario.build_harness()?;
        let mut controller = Controller::for_host(ControllerConfig::default(), h1.host().spec())?;
        let guarded = h1.run(&mut controller, ticks);

        let throttled = guarded
            .timeline
            .iter()
            .filter(|r| r.batch_paused > 0)
            .count();
        println!(
            "{:<10} {:>16} {:>14} {:>12.0} {:>13.0}%",
            workload.to_string(),
            baseline.qos.violations,
            guarded.qos.violations,
            guarded.batch_work,
            100.0 * throttled as f64 / ticks as f64
        );
    }

    println!(
        "\nreading: the memory workload forces throttling mainly during \
         Twitter-Analysis's memory-intensive phases (swap pressure), the \
         CPU workload during load peaks — Stay-Away discovers this from \
         the state map, with no prior profiling of either application."
    );
    Ok(())
}
