//! Template reuse (§6): capture the state map of a repeatable sensitive
//! application during one co-location, persist it, and seed a future run
//! with a *different* batch application so known violations are avoided
//! from the first control period.
//!
//! ```sh
//! cargo run --example template_reuse
//! ```

use stay_away::core::{Controller, ControllerConfig};
use stay_away::sim::scenario::Scenario;
use stay_away::statespace::Template;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ticks = 300;

    // 1. Learn: VLC streaming + CPUBomb, Stay-Away active.
    let capture = Scenario::vlc_with_cpubomb(5);
    let mut harness = capture.build_harness()?;
    let mut controller = Controller::for_host(ControllerConfig::default(), harness.host().spec())?;
    let outcome = harness.run(&mut controller, ticks);
    let template = controller.export_template("vlc-streaming")?;
    println!(
        "capture run ({}): {} violations, template of {} states \
         ({} violation-labelled)",
        capture.name(),
        outcome.qos.violations,
        template.len(),
        template.violation_count()
    );

    // 2. Persist and reload (any Read/Write works; a temp file here).
    let path = std::env::temp_dir().join("vlc-streaming-template.json");
    template.save_to_path(&path)?;
    let reloaded = Template::load_from_path(&path)?;
    println!("template persisted to {} and reloaded", path.display());

    // 3. Reuse against a different batch application, vs a cold start.
    // VLC transcoding exercises the same contention channel (CPU) as the
    // captured CPUBomb template, so the imported violation states are
    // revisited and pay off immediately; a co-runner with a different
    // contention channel may never map into them (§6's caveat).
    let reuse = Scenario::builder("vlc+vlc-transcode")
        .seed(5)
        .sensitive(stay_away::sim::scenario::SensitiveKind::VlcStreaming {
            trace: stay_away::sim::workload::Trace::diurnal(
                stay_away::sim::workload::DiurnalParams::default(),
                6,
            ),
        })
        .batch(stay_away::sim::scenario::BatchKind::VlcTranscode, 20)
        .build();

    let mut cold_h = reuse.build_harness()?;
    let mut cold = Controller::for_host(ControllerConfig::default(), cold_h.host().spec())?;
    let cold_out = cold_h.run(&mut cold, ticks);

    let mut warm_h = reuse.build_harness()?;
    let mut warm = Controller::for_host(ControllerConfig::default(), warm_h.host().spec())?;
    warm.import_template(&reloaded)?;
    let warm_out = warm_h.run(&mut warm, ticks);

    let early = |out: &stay_away::sim::RunOutcome| {
        out.timeline
            .iter()
            .filter(|r| r.violated && r.tick < 60)
            .count()
    };
    println!("\nreuse run ({}):", reuse.name());
    println!(
        "  cold start:    {:>2} violations ({} in the first 60 ticks)",
        cold_out.qos.violations,
        early(&cold_out)
    );
    println!(
        "  with template: {:>2} violations ({} in the first 60 ticks)",
        warm_out.qos.violations,
        early(&warm_out)
    );
    println!(
        "\nthe template removes the learning-phase violations: the warm \
         controller already knows the contended region when the batch \
         application first interferes."
    );

    std::fs::remove_file(&path).ok();
    Ok(())
}
